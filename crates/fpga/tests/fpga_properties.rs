//! Property-based validation of the resource model: geometric and
//! monotonicity laws the estimator must obey regardless of inputs.

use proptest::prelude::*;
use stencil_fpga::{bram18k_blocks, bram18k_blocks_pow2, clock_period_ns, TimingFeatures};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Capacity soundness: the chosen blocks really hold the memory.
    #[test]
    fn bram_blocks_cover_capacity(depth in 1u64..40_000, width in 1u32..72) {
        let blocks = bram18k_blocks(depth, width);
        prop_assert!(blocks >= 1);
        prop_assert!(
            u64::from(blocks) * 18 * 1024 >= depth * u64::from(width),
            "{blocks} blocks cannot hold {depth}x{width}"
        );
    }

    /// Monotonicity in depth and width.
    #[test]
    fn bram_blocks_monotone(depth in 1u64..20_000, width in 1u32..64) {
        prop_assert!(bram18k_blocks(depth + 1, width) >= bram18k_blocks(depth, width));
        prop_assert!(bram18k_blocks(depth, width + 1) >= bram18k_blocks(depth, width));
    }

    /// Power-of-two rounding never helps.
    #[test]
    fn pow2_rounding_never_cheaper(depth in 1u64..20_000, width in 1u32..64) {
        prop_assert!(bram18k_blocks_pow2(depth, width) >= bram18k_blocks(depth, width));
    }

    /// The block count is never absurdly wasteful: at most one extra
    /// block per width slice beyond the information-theoretic minimum.
    #[test]
    fn bram_blocks_not_wasteful(depth in 1u64..40_000, width in 1u32..72) {
        let blocks = u64::from(bram18k_blocks(depth, width));
        let min_bits = depth * u64::from(width);
        let lower = min_bits.div_ceil(18 * 1024);
        prop_assert!(blocks <= 2 * lower + 36, "{blocks} vs lower bound {lower}");
    }

    /// Timing: monotone in every feature, clamped to [3.6, 5.0].
    #[test]
    fn clock_period_monotone_and_bounded(
        banks in 0u32..100,
        bram in 0u32..500,
        mux in 1u32..64,
    ) {
        let base = TimingFeatures {
            banks,
            bram18k: bram,
            has_divider: false,
            centralized: false,
            widest_mux: mux,
        };
        let cp = clock_period_ns(&base);
        prop_assert!((3.6..=5.0).contains(&cp));
        let with_div = TimingFeatures { has_divider: true, ..base };
        prop_assert!(clock_period_ns(&with_div) >= cp);
        let central = TimingFeatures { centralized: true, ..base };
        prop_assert!(clock_period_ns(&central) >= cp);
        let more_banks = TimingFeatures { banks: banks + 10, ..base };
        prop_assert!(clock_period_ns(&more_banks) >= cp);
    }
}
