//! Clock-period estimation.
//!
//! The paper's observation (§5.2): both designs meet the 5 ns target —
//! the back-end stops optimizing once timing closes — but the
//! non-uniform design "generally has larger slacks from the target
//! 5.0 ns ... mainly due to the distributed structure". The model below
//! reproduces exactly that: a base logic delay plus penalties for the
//! structures that stretch critical paths (reciprocal dividers, the
//! centralized controller's control fan-out, wide bank multiplexers,
//! routing congestion with utilization).

use serde::{Deserialize, Serialize};

/// Timing-relevant features of a design.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingFeatures {
    /// Number of memory banks/FIFOs control must reach.
    pub banks: u32,
    /// Block RAMs (placement spread).
    pub bram18k: u32,
    /// True if address transformation uses a multiply-by-reciprocal
    /// divider (long DSP cascade).
    pub has_divider: bool,
    /// True if a centralized controller sequences all banks (high
    /// fan-out control signals); false for the distributed design.
    pub centralized: bool,
    /// Widest data multiplexer (ways) in front of the kernel ports.
    pub widest_mux: u32,
}

/// Estimated post-route clock period in nanoseconds.
///
/// Deterministic in the features; clamped to the 5.0 ns target (the
/// tool stops optimizing beyond it) from above and a 3.6 ns logic floor
/// from below.
///
/// # Examples
///
/// ```
/// use stencil_fpga::{clock_period_ns, TimingFeatures};
///
/// let ours = clock_period_ns(&TimingFeatures {
///     banks: 4,
///     bram18k: 4,
///     has_divider: false,
///     centralized: false,
///     widest_mux: 1,
/// });
/// let baseline = clock_period_ns(&TimingFeatures {
///     banks: 5,
///     bram18k: 5,
///     has_divider: true,
///     centralized: true,
///     widest_mux: 5,
/// });
/// assert!(ours < baseline);
/// assert!(baseline <= 5.0);
/// ```
#[must_use]
pub fn clock_period_ns(f: &TimingFeatures) -> f64 {
    let mut cp = 3.6;
    if f.has_divider {
        cp += 0.45;
    }
    if f.centralized {
        cp += 0.30;
    }
    cp += 0.05 * f64::from(f.banks + 1).ln();
    cp += 0.04 * f64::from(f.bram18k + 1).ln();
    cp += 0.03 * f64::from(f.widest_mux.max(1)).ln();
    cp.clamp(3.6, 5.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_design_has_more_slack() {
        let ours = clock_period_ns(&TimingFeatures {
            banks: 18,
            bram18k: 44,
            has_divider: false,
            centralized: false,
            widest_mux: 1,
        });
        let baseline = clock_period_ns(&TimingFeatures {
            banks: 20,
            bram18k: 80,
            has_divider: true,
            centralized: true,
            widest_mux: 20,
        });
        assert!(ours < baseline, "{ours} !< {baseline}");
        assert!(ours >= 3.6);
        assert!(baseline <= 5.0);
    }

    #[test]
    fn both_meet_target() {
        let worst = clock_period_ns(&TimingFeatures {
            banks: 200,
            bram18k: 2000,
            has_divider: true,
            centralized: true,
            widest_mux: 200,
        });
        assert!(worst <= 5.0);
    }

    #[test]
    fn deterministic() {
        let f = TimingFeatures {
            banks: 4,
            bram18k: 4,
            has_divider: false,
            centralized: false,
            widest_mux: 1,
        };
        assert_eq!(clock_period_ns(&f), clock_period_ns(&f));
    }
}
