//! Table 5 generation: per-benchmark baseline-vs-ours resource
//! comparison with percentage deltas and averages.

use std::fmt;

use serde::{Deserialize, Serialize};
use stencil_core::{MemorySystemPlan, PlanError};
use stencil_kernels::Benchmark;
use stencil_uniform::multidim_cyclic;

use crate::estimate::{estimate_nonuniform, estimate_uniform, ResourceEstimate};

/// One benchmark's row of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Baseline (\[8\]) estimate.
    pub baseline: ResourceEstimate,
    /// Non-uniform (ours) estimate.
    pub ours: ResourceEstimate,
}

impl Table5Row {
    /// Ours as a percentage of the baseline for
    /// (BRAM, slices, DSP); `None` where the baseline is zero.
    #[must_use]
    pub fn comparison_pct(&self) -> (Option<f64>, Option<f64>, Option<f64>) {
        let pct =
            |ours: u32, base: u32| (base > 0).then(|| 100.0 * f64::from(ours) / f64::from(base));
        (
            pct(self.ours.bram18k, self.baseline.bram18k),
            pct(self.ours.slices(), self.baseline.slices()),
            pct(self.ours.dsps, self.baseline.dsps),
        )
    }
}

/// The whole Table 5: one row per benchmark plus averages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5 {
    /// Benchmark names, row order.
    pub names: Vec<String>,
    /// Per-benchmark comparisons.
    pub rows: Vec<Table5Row>,
}

impl Table5 {
    /// Builds the table for a benchmark suite: plans the non-uniform
    /// memory system and partitions with \[8\] for each benchmark, then
    /// estimates both.
    ///
    /// # Errors
    ///
    /// Propagates planning failures ([`PlanError`]).
    pub fn build(suite: &[Benchmark]) -> Result<Self, PlanError> {
        let mut names = Vec::with_capacity(suite.len());
        let mut rows = Vec::with_capacity(suite.len());
        for bench in suite {
            let spec = bench.spec()?;
            let plan = MemorySystemPlan::generate(&spec)?;
            let ours = estimate_nonuniform(&plan, bench.ops());
            let part = multidim_cyclic(bench.window(), bench.extents());
            let baseline = estimate_uniform(
                &part,
                bench.window().len(),
                spec.element_bits(),
                spec.iteration_domain(),
                bench.ops(),
            );
            names.push(bench.name().to_owned());
            rows.push(Table5Row { baseline, ours });
        }
        Ok(Self { names, rows })
    }

    /// Renders the table as CSV (one row per benchmark), for plotting.
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "benchmark,base_bram,base_slices,base_dsp,base_cp_ns,\
             our_bram,our_slices,our_dsp,our_cp_ns\n",
        );
        for (name, row) in self.names.iter().zip(&self.rows) {
            let _ = writeln!(
                out,
                "{name},{},{},{},{:.3},{},{},{},{:.3}",
                row.baseline.bram18k,
                row.baseline.slices(),
                row.baseline.dsps,
                row.baseline.cp_ns,
                row.ours.bram18k,
                row.ours.slices(),
                row.ours.dsps,
                row.ours.cp_ns,
            );
        }
        out
    }

    /// Average ours-vs-baseline percentages over all rows for
    /// (BRAM, slices, DSP), skipping undefined entries.
    #[must_use]
    pub fn average_pct(&self) -> (f64, f64, f64) {
        let mut acc = [(0.0, 0u32); 3];
        for row in &self.rows {
            let (b, s, d) = row.comparison_pct();
            for (slot, v) in acc.iter_mut().zip([b, s, d]) {
                if let Some(v) = v {
                    slot.0 += v;
                    slot.1 += 1;
                }
            }
        }
        let avg = |(sum, n): (f64, u32)| if n > 0 { sum / f64::from(n) } else { f64::NAN };
        (avg(acc[0]), avg(acc[1]), avg(acc[2]))
    }
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<18} {:>6} {:>8} {:>5} {:>7}   {:>6} {:>8} {:>5} {:>7}   {:>6} {:>6}",
            "benchmark",
            "BRAM",
            "Slice",
            "DSP",
            "CP(ns)",
            "BRAM",
            "Slice",
            "DSP",
            "CP(ns)",
            "BRAM%",
            "Slc%"
        )?;
        writeln!(f, "{:<18} {:-^29} {:-^30}", "", " baseline [8] ", " ours ")?;
        for (name, row) in self.names.iter().zip(&self.rows) {
            let (b_pct, s_pct, _) = row.comparison_pct();
            writeln!(
                f,
                "{:<18} {:>6} {:>8} {:>5} {:>7.2}   {:>6} {:>8} {:>5} {:>7.2}   {:>5.1} {:>5.1}",
                name,
                row.baseline.bram18k,
                row.baseline.slices(),
                row.baseline.dsps,
                row.baseline.cp_ns,
                row.ours.bram18k,
                row.ours.slices(),
                row.ours.dsps,
                row.ours.cp_ns,
                b_pct.unwrap_or(f64::NAN),
                s_pct.unwrap_or(f64::NAN),
            )?;
        }
        let (b, s, d) = self.average_pct();
        writeln!(
            f,
            "average ours/baseline: BRAM {b:.1}%  slices {s:.1}%  DSP {d:.1}%"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_kernels::paper_suite;

    #[test]
    fn paper_shape_holds() {
        let table = Table5::build(&paper_suite()).unwrap();
        assert_eq!(table.rows.len(), 6);
        for (name, row) in table.names.iter().zip(&table.rows) {
            assert!(
                row.ours.bram18k <= row.baseline.bram18k,
                "{name}: BRAM {} > {}",
                row.ours.bram18k,
                row.baseline.bram18k
            );
            assert!(row.ours.slices() < row.baseline.slices(), "{name}: slices");
            assert_eq!(row.ours.dsps, 0, "{name}: ours must use no DSPs");
            assert!(row.baseline.dsps > 0, "{name}: baseline uses DSPs");
            assert!(row.ours.cp_ns <= row.baseline.cp_ns, "{name}: CP");
        }
        let (bram_pct, slice_pct, dsp_pct) = table.average_pct();
        // Paper: 66% fewer BRAMs, 25% fewer slices, 100% fewer DSPs.
        // Our synthetic estimator must at least reproduce the direction
        // and rough magnitude.
        assert!(bram_pct < 85.0, "BRAM average {bram_pct:.1}%");
        assert!(slice_pct < 90.0, "slice average {slice_pct:.1}%");
        assert!((dsp_pct - 0.0).abs() < 1e-9, "DSP average {dsp_pct:.1}%");
    }

    #[test]
    fn csv_has_one_row_per_benchmark() {
        let table = Table5::build(&paper_suite()).unwrap();
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), 1 + table.rows.len());
        assert!(csv.starts_with("benchmark,base_bram"), "{csv}");
        assert!(csv.contains("SEGMENTATION_3D,"), "{csv}");
    }

    #[test]
    fn render_contains_all_benchmarks() {
        let table = Table5::build(&paper_suite()).unwrap();
        let s = table.to_string();
        for name in &table.names {
            assert!(s.contains(name.as_str()), "{s}");
        }
        assert!(s.contains("average"), "{s}");
    }
}
