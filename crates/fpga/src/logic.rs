//! LUT/FF cost formulas for the microarchitecture's building blocks.
//!
//! The formulas are first-order models of 7-series mapping results:
//! counters and adders map to one LUT + one FF per bit (carry chain),
//! comparators to about half a LUT per bit, SRL shift registers to one
//! LUT per bit per 32 stages. They are deliberately simple and
//! deterministic — the reproduction needs the *relative* shape of
//! Table 5, not ISE's exact numbers.

use serde::{Deserialize, Serialize};

use crate::bram::bram18k_blocks;
use stencil_kernels::KernelOps;

/// A LUT/FF/BRAM/DSP cost bundle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogicCost {
    /// Six-input LUTs.
    pub luts: u32,
    /// Flip-flops.
    pub ffs: u32,
    /// 18 Kb block RAMs.
    pub bram18k: u32,
    /// DSP48 blocks.
    pub dsps: u32,
}

impl LogicCost {
    /// Component-wise sum.
    #[must_use]
    pub fn plus(self, other: LogicCost) -> LogicCost {
        LogicCost {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            bram18k: self.bram18k + other.bram18k,
            dsps: self.dsps + other.dsps,
        }
    }
}

/// Bits needed to count to `extent` (at least 1).
#[must_use]
pub fn bits_for(extent: u64) -> u32 {
    (64 - extent.max(1).leading_zeros() as u64) as u32
}

/// One multi-dimensional domain counter (Fig. 10): per dimension an
/// incrementer, a bound comparator, and wrap logic.
#[must_use]
pub fn domain_counter(extent_bits: &[u32]) -> LogicCost {
    let total_bits: u32 = extent_bits.iter().sum();
    LogicCost {
        luts: 2 * total_bits + 4 * extent_bits.len() as u32,
        ffs: total_bits,
        bram18k: 0,
        dsps: 0,
    }
}

/// A data filter: two domain counters, an equality comparator across all
/// dimensions, and the 2:1 data switch (§3.5.2).
#[must_use]
pub fn data_filter(extent_bits: &[u32], width_bits: u32) -> LogicCost {
    let counters = domain_counter(extent_bits).plus(domain_counter(extent_bits));
    let compare_bits: u32 = extent_bits.iter().sum();
    LogicCost {
        luts: counters.luts + compare_bits / 2 + 4,
        ffs: counters.ffs + width_bits, // forwarded-element register
        bram18k: 0,
        dsps: 0,
    }
}

/// A data path splitter: a valid/ready fork.
#[must_use]
pub fn splitter() -> LogicCost {
    LogicCost {
        luts: 3,
        ffs: 2,
        bram18k: 0,
        dsps: 0,
    }
}

/// A FIFO implemented in slice registers.
#[must_use]
pub fn register_fifo(depth: u64, width_bits: u32) -> LogicCost {
    LogicCost {
        luts: 4,
        ffs: depth as u32 * width_bits + 4,
        bram18k: 0,
        dsps: 0,
    }
}

/// A FIFO implemented in SRL32 shift registers.
#[must_use]
pub fn srl_fifo(depth: u64, width_bits: u32) -> LogicCost {
    LogicCost {
        luts: width_bits * depth.div_ceil(32) as u32 + 2 * bits_for(depth) + 4,
        ffs: width_bits + bits_for(depth),
        bram18k: 0,
        dsps: 0,
    }
}

/// A FIFO implemented in block RAM (read/write pointers + status).
#[must_use]
pub fn bram_fifo(depth: u64, width_bits: u32) -> LogicCost {
    let ptr_bits = bits_for(depth);
    LogicCost {
        luts: 3 * ptr_bits + 8,
        ffs: 2 * ptr_bits + width_bits + 4,
        bram18k: bram18k_blocks(depth, width_bits),
        dsps: 0,
    }
}

/// A `ways`-to-1 multiplexer of `width_bits` (one LUT6 switches 4:1 of
/// one bit).
#[must_use]
pub fn mux(ways: u32, width_bits: u32) -> LogicCost {
    if ways <= 1 {
        return LogicCost::default();
    }
    LogicCost {
        luts: width_bits * ways.div_ceil(4).max(1),
        ffs: width_bits,
        bram18k: 0,
        dsps: 0,
    }
}

/// A modulo-`m` address transformer for one access port: the
/// multiply-by-reciprocal divider uniform partitioning needs when the
/// bank count is not a power of two (§5.2 — the source of \[8\]'s DSP
/// usage, eliminated entirely by the non-uniform design).
#[must_use]
pub fn modulo_unit(addr_bits: u32, modulus: usize) -> LogicCost {
    if modulus.is_power_of_two() {
        // Bit selection only.
        LogicCost {
            luts: 2,
            ffs: addr_bits,
            bram18k: 0,
            dsps: 0,
        }
    } else {
        LogicCost {
            luts: 3 * addr_bits,
            ffs: 2 * addr_bits,
            bram18k: 0,
            dsps: 3,
        }
    }
}

/// The fixed-point datapath of the computation kernel (identical for
/// both memory systems; the paper's medical-imaging kernels are
/// fixed-point, so constant multiplies map to shift-add LUT logic, not
/// DSPs).
#[must_use]
pub fn kernel_datapath(ops: KernelOps, width_bits: u32) -> LogicCost {
    let w = width_bits;
    LogicCost {
        luts: ops.adds * w
            + ops.muls * 3 * w / 2
            + ops.divs * 4 * w
            + ops.sqrts * 8 * w
            + ops.cmps * w / 2,
        ffs: (ops.adds + ops.muls + ops.divs * 4 + ops.sqrts * 4 + ops.cmps) * w,
        bram18k: 0,
        dsps: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_extents() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(1023), 10);
        assert_eq!(bits_for(1024), 11);
    }

    #[test]
    fn fifo_costs_scale_with_depth() {
        let small = register_fifo(1, 32);
        assert_eq!(small.ffs, 36);
        let srl = srl_fifo(64, 32);
        assert_eq!(srl.luts, 32 * 2 + 2 * 7 + 4);
        let big = bram_fifo(1023, 32);
        assert_eq!(big.bram18k, 2);
        assert!(big.luts < srl.luts);
    }

    #[test]
    fn modulo_unit_power_of_two_is_free_of_dsps() {
        assert_eq!(modulo_unit(12, 4).dsps, 0);
        assert_eq!(modulo_unit(12, 5).dsps, 3);
    }

    #[test]
    fn mux_grows_with_ways() {
        assert_eq!(mux(1, 32).luts, 0);
        assert!(mux(5, 32).luts > mux(2, 32).luts / 2);
        assert!(mux(20, 32).luts > mux(5, 32).luts);
    }

    #[test]
    fn kernel_datapath_counts() {
        let ops = KernelOps {
            adds: 5,
            muls: 2,
            ..KernelOps::default()
        };
        let c = kernel_datapath(ops, 32);
        assert_eq!(c.luts, 5 * 32 + 2 * 48);
        assert_eq!(c.dsps, 0);
    }

    #[test]
    fn plus_adds_componentwise() {
        let a = LogicCost {
            luts: 1,
            ffs: 2,
            bram18k: 3,
            dsps: 4,
        };
        let b = a.plus(a);
        assert_eq!(
            b,
            LogicCost {
                luts: 2,
                ffs: 4,
                bram18k: 6,
                dsps: 8
            }
        );
    }
}
