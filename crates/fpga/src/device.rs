//! FPGA device models.

use serde::{Deserialize, Serialize};

/// Capacity model of a target FPGA device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Device name.
    pub name: &'static str,
    /// 18 Kb block RAM count (each 36 Kb tile counts as two).
    pub bram18k: u32,
    /// Logic slices (each: 4 six-input LUTs + 8 flip-flops).
    pub slices: u32,
    /// Six-input LUTs.
    pub luts: u32,
    /// Flip-flops.
    pub ffs: u32,
    /// DSP48E1 blocks.
    pub dsps: u32,
    /// Target clock period used by the experiments, in nanoseconds.
    pub target_clock_ns: f64,
}

impl Device {
    /// The Xilinx Virtex-7 XC7VX485T used in the paper's experiments
    /// (§5.1), at the paper's 200 MHz target.
    #[must_use]
    pub fn virtex7_485t() -> Self {
        Self {
            name: "XC7VX485T",
            bram18k: 2060,
            slices: 75_900,
            luts: 303_600,
            ffs: 607_200,
            dsps: 2_800,
            target_clock_ns: 5.0,
        }
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::virtex7_485t()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtex7_numbers() {
        let d = Device::virtex7_485t();
        assert_eq!(d.name, "XC7VX485T");
        assert_eq!(d.bram18k, 2060);
        assert_eq!(d.target_clock_ns, 5.0);
        assert_eq!(Device::default(), d);
    }
}
