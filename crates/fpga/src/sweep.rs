//! Design-space exploration sweeps: how resources scale with element
//! width and problem size for both the non-uniform design and the \[8\]
//! baseline — the exploration a designer runs before committing to a
//! configuration.

use serde::{Deserialize, Serialize};
use stencil_core::{MemorySystemPlan, PlanError, StencilSpec};
use stencil_kernels::Benchmark;
use stencil_uniform::multidim_cyclic;

use crate::estimate::{estimate_nonuniform, estimate_uniform, ResourceEstimate};

/// One explored configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Data element width, bits.
    pub element_bits: u32,
    /// Grid extents of the configuration.
    pub extents: Vec<i64>,
    /// Non-uniform design estimate.
    pub ours: ResourceEstimate,
    /// \[8\] baseline estimate.
    pub baseline: ResourceEstimate,
}

impl SweepPoint {
    /// BRAM ratio ours/baseline (1.0 = parity).
    #[must_use]
    pub fn bram_ratio(&self) -> f64 {
        f64::from(self.ours.bram18k) / f64::from(self.baseline.bram18k.max(1))
    }
}

/// Sweeps element widths × grid scales for one benchmark. `scales` are
/// divisors applied to the benchmark's full extents (1 = full size).
///
/// # Errors
///
/// Propagates [`PlanError`] from specification building.
///
/// # Panics
///
/// Panics if a scale shrinks the grid below the window.
pub fn sweep(
    bench: &Benchmark,
    widths: &[u32],
    scales: &[i64],
) -> Result<Vec<SweepPoint>, PlanError> {
    let mut out = Vec::with_capacity(widths.len() * scales.len());
    for &scale in scales {
        assert!(scale >= 1, "scale must be at least 1");
        let extents: Vec<i64> = bench
            .extents()
            .iter()
            .map(|&e| (e / scale).max(8))
            .collect();
        for &bits in widths {
            let spec = StencilSpec::with_element_bits(
                bench.name().to_lowercase(),
                bench.iteration_domain_for(&extents),
                bench.window().to_vec(),
                bits,
            )?;
            let plan = MemorySystemPlan::generate(&spec)?;
            let ours = estimate_nonuniform(&plan, bench.ops());
            let part = multidim_cyclic(bench.window(), &extents);
            let baseline = estimate_uniform(
                &part,
                bench.window().len(),
                bits,
                spec.iteration_domain(),
                bench.ops(),
            );
            out.push(SweepPoint {
                element_bits: bits,
                extents: extents.clone(),
                ours,
                baseline,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_kernels::denoise;

    #[test]
    fn sweep_covers_the_grid_of_configurations() {
        let points = sweep(&denoise(), &[8, 16, 32], &[1, 2, 4]).unwrap();
        assert_eq!(points.len(), 9);
        for p in &points {
            assert!(p.ours.bram18k <= p.baseline.bram18k, "{p:?}");
            assert_eq!(p.ours.dsps, 0);
            assert!(p.bram_ratio() <= 1.0);
        }
    }

    #[test]
    fn wider_elements_cost_at_least_as_much() {
        let points = sweep(&denoise(), &[8, 32], &[1]).unwrap();
        let narrow = &points[0];
        let wide = &points[1];
        assert!(wide.ours.bram18k >= narrow.ours.bram18k);
        assert!(wide.ours.luts >= narrow.ours.luts);
    }

    #[test]
    fn smaller_grids_cost_at_most_as_much() {
        let points = sweep(&denoise(), &[16], &[1, 8]).unwrap();
        let full = &points[0];
        let eighth = &points[1];
        assert!(eighth.ours.bram18k <= full.ours.bram18k);
    }
}
