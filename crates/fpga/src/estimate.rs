//! End-to-end resource estimation of complete accelerators — the
//! reproduction's stand-in for Xilinx ISE synthesis (Table 5).

use std::fmt;

use serde::{Deserialize, Serialize};
use stencil_core::{Feed, MemorySystemPlan, ModuloSchedulePlan, StorageKind};
use stencil_kernels::KernelOps;
use stencil_polyhedral::Polyhedron;
use stencil_uniform::PartitionResult;

use crate::bram::bram18k_blocks_pow2;
use crate::logic::{
    bits_for, bram_fifo, data_filter, domain_counter, kernel_datapath, modulo_unit, mux,
    register_fifo, splitter, srl_fifo, LogicCost,
};
use crate::timing::{clock_period_ns, TimingFeatures};

/// Estimated physical resources of one accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// 18 Kb block RAMs.
    pub bram18k: u32,
    /// Six-input LUTs.
    pub luts: u32,
    /// Flip-flops.
    pub ffs: u32,
    /// DSP48 blocks.
    pub dsps: u32,
    /// Estimated post-route clock period, ns.
    pub cp_ns: f64,
}

impl ResourceEstimate {
    /// Occupied logic slices: 4 LUTs and 8 FFs per slice at a typical
    /// ~70 % packing efficiency.
    #[must_use]
    pub fn slices(&self) -> u32 {
        let by_lut = self.luts.div_ceil(4);
        let by_ff = self.ffs.div_ceil(8);
        (by_lut.max(by_ff) * 10).div_ceil(7)
    }

    /// True if the design fits the device and meets its clock target.
    #[must_use]
    pub fn fits(&self, device: &crate::device::Device) -> bool {
        self.bram18k <= device.bram18k
            && self.slices() <= device.slices
            && self.dsps <= device.dsps
            && self.cp_ns <= device.target_clock_ns
    }

    /// Per-resource utilization of the device, in percent:
    /// `(bram, slices, dsp)`.
    #[must_use]
    pub fn utilization_pct(&self, device: &crate::device::Device) -> (f64, f64, f64) {
        (
            100.0 * f64::from(self.bram18k) / f64::from(device.bram18k),
            100.0 * f64::from(self.slices()) / f64::from(device.slices),
            100.0 * f64::from(self.dsps) / f64::from(device.dsps),
        )
    }
}

impl fmt::Display for ResourceEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BRAM {:>4}  slices {:>6}  DSP {:>3}  CP {:.2} ns",
            self.bram18k,
            self.slices(),
            self.dsps,
            self.cp_ns
        )
    }
}

/// Per-dimension counter bit widths of a domain (from its bounding box).
fn extent_bits(domain: &Polyhedron) -> Vec<u32> {
    let idx = domain.index().expect("bounded domain");
    match idx.bounding_box() {
        Some(bb) => bb
            .iter()
            .map(|&(lo, hi)| bits_for((hi - lo + 1).max(1) as u64))
            .collect(),
        None => vec![1],
    }
}

/// Estimates the non-uniform (this paper's) memory system plus kernel.
///
/// # Panics
///
/// Panics if the plan's domains cannot be indexed (they were validated
/// at planning time).
#[must_use]
pub fn estimate_nonuniform(plan: &MemorySystemPlan, ops: KernelOps) -> ResourceEstimate {
    let w = plan.element_bits();
    let ebits = extent_bits(plan.input_domain());
    let mut cost = LogicCost::default();

    for feed in plan.feeds() {
        match feed {
            Feed::Offchip => {
                // Burst prefetcher interface: small skid buffer + counter.
                cost = cost.plus(LogicCost {
                    luts: 40,
                    ffs: 2 * w + 16,
                    bram18k: 0,
                    dsps: 0,
                });
            }
            Feed::Fifo { capacity, storage } => {
                let depth = (*capacity).max(1);
                cost = cost.plus(match storage {
                    StorageKind::Register => register_fifo(depth, w),
                    StorageKind::ShiftRegister => srl_fifo(depth, w),
                    StorageKind::BlockRam => bram_fifo(depth, w),
                });
            }
        }
    }
    for _ in plan.filters() {
        cost = cost.plus(data_filter(&ebits, w)).plus(splitter());
    }
    cost = cost.plus(kernel_datapath(ops, w));

    let cp = clock_period_ns(&TimingFeatures {
        banks: plan.bank_count() as u32,
        bram18k: cost.bram18k,
        has_divider: false,
        centralized: false,
        widest_mux: 1,
    });
    ResourceEstimate {
        bram18k: cost.bram18k,
        luts: cost.luts,
        ffs: cost.ffs,
        dsps: cost.dsps,
        cp_ns: cp,
    }
}

/// Estimates a uniform cyclic design (\[5\]/\[7\]/\[8\]) plus kernel.
///
/// Bank depths are rounded to powers of two, the sizing commodity HLS
/// flows apply so intra-bank addresses decode by bit selection — the
/// constraint the paper notes uniform partitioning inherits from
/// Vivado HLS \[10\].
#[must_use]
pub fn estimate_uniform(
    part: &PartitionResult,
    ports: usize,
    element_bits: u32,
    iteration_domain: &Polyhedron,
    ops: KernelOps,
) -> ResourceEstimate {
    let w = element_bits;
    let banks = part.banks as u32;
    let per_bank = part.total_size.div_ceil(u64::from(banks)).max(1);
    let addr_bits = bits_for(part.total_size.max(2));
    let ebits = extent_bits(iteration_domain);
    let mut cost = LogicCost::default();

    // Banks.
    cost.bram18k += banks * bram18k_blocks_pow2(per_bank, w);
    // Bank control: per-bank address registers and write-enable logic.
    cost.luts += banks * (bits_for(per_bank) + 6);
    cost.ffs += banks * bits_for(per_bank);

    // Address transformers: one modulo/divide unit per read port plus
    // one for the refill write port.
    for _ in 0..=ports {
        cost = cost.plus(modulo_unit(addr_bits, part.banks));
    }
    // Data crossbar: each kernel port selects among all banks.
    for _ in 0..ports {
        cost = cost.plus(mux(banks, w));
    }
    // Address crossbar: the bank assignment rotates as the window
    // slides, so every bank must accept an address from any port (plus
    // the refill write port).
    for _ in 0..banks {
        cost = cost.plus(mux(ports as u32 + 1, addr_bits));
    }
    // Per-port address offset adders (base + constant offset).
    cost.luts += ports as u32 * addr_bits;
    cost.ffs += ports as u32 * addr_bits;
    // Centralized controller: global iteration counter + bank scheduling.
    cost = cost.plus(domain_counter(&ebits));
    cost.luts += 150 + 10 * banks;
    cost.ffs += 80;
    // Prefetch interface (same as ours).
    cost.luts += 40;
    cost.ffs += 2 * w + 16;

    cost = cost.plus(kernel_datapath(ops, w));

    let cp = clock_period_ns(&TimingFeatures {
        banks,
        bram18k: cost.bram18k,
        has_divider: part.needs_divider,
        centralized: true,
        widest_mux: banks,
    });
    ResourceEstimate {
        bram18k: cost.bram18k,
        luts: cost.luts,
        ffs: cost.ffs,
        dsps: cost.dsps,
        cp_ns: cp,
    }
}

/// Estimates the §6 future-work alternative: non-uniform delay-line
/// banks under a centralized modulo schedule. Same minimal storage as
/// the streaming design and no dividers, but a central controller with
/// per-port schedule comparators replaces the distributed filters.
#[must_use]
pub fn estimate_modulo(
    plan: &ModuloSchedulePlan,
    iteration_domain: &Polyhedron,
    ops: KernelOps,
) -> ResourceEstimate {
    let w = plan.element_bits();
    let ebits = extent_bits(iteration_domain);
    let mut cost = LogicCost::default();

    for bank in plan.banks() {
        let depth = bank.length.max(1);
        cost = cost.plus(match bank.storage {
            StorageKind::Register => register_fifo(depth, w),
            StorageKind::ShiftRegister => srl_fifo(depth, w),
            StorageKind::BlockRam => bram_fifo(depth, w),
        });
    }
    // Central controller: global stream counter + iteration counter +
    // per-port schedule comparator (live rank vs earliest-needed rank)
    // + per-port valid registers + global stall tree.
    let addr_bits = bits_for(plan.total_buffer_size().max(2) * 4);
    cost = cost.plus(domain_counter(&ebits));
    cost.luts += addr_bits * 2; // stream counter + compare
    cost.ffs += addr_bits;
    let ports = plan.offsets().len() as u32;
    cost.luts += ports * (addr_bits + 8);
    cost.ffs += ports * (w + 2);
    cost.luts += 120 + 8 * plan.bank_count() as u32; // sequencing FSM
    cost.ffs += 60;
    // Prefetch interface (same as the others).
    cost.luts += 40;
    cost.ffs += 2 * w + 16;

    cost = cost.plus(kernel_datapath(ops, w));

    let cp = clock_period_ns(&TimingFeatures {
        banks: plan.bank_count() as u32,
        bram18k: cost.bram18k,
        has_divider: false,
        centralized: true,
        widest_mux: 1,
    });
    ResourceEstimate {
        bram18k: cost.bram18k,
        luts: cost.luts,
        ffs: cost.ffs,
        dsps: cost.dsps,
        cp_ns: cp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::StencilSpec;
    use stencil_kernels::denoise;
    use stencil_uniform::multidim_cyclic;

    fn denoise_pair() -> (ResourceEstimate, ResourceEstimate) {
        let bench = denoise();
        let spec: StencilSpec = bench.spec().unwrap();
        let plan = MemorySystemPlan::generate(&spec).unwrap();
        let ours = estimate_nonuniform(&plan, bench.ops());
        let part = multidim_cyclic(bench.window(), bench.extents());
        let base = estimate_uniform(
            &part,
            bench.window().len(),
            spec.element_bits(),
            spec.iteration_domain(),
            bench.ops(),
        );
        (base, ours)
    }

    #[test]
    fn ours_beats_baseline_on_denoise() {
        let (base, ours) = denoise_pair();
        assert!(
            ours.bram18k < base.bram18k,
            "{} !< {}",
            ours.bram18k,
            base.bram18k
        );
        assert!(ours.slices() < base.slices());
        assert_eq!(ours.dsps, 0);
        assert!(base.dsps > 0);
        assert!(ours.cp_ns < base.cp_ns);
        assert!(base.cp_ns <= 5.0);
    }

    #[test]
    fn estimates_are_deterministic() {
        let (b1, o1) = denoise_pair();
        let (b2, o2) = denoise_pair();
        assert_eq!(b1, b2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn slices_derive_from_luts_and_ffs() {
        let e = ResourceEstimate {
            bram18k: 0,
            luts: 400,
            ffs: 80,
            dsps: 0,
            cp_ns: 4.0,
        };
        // 400/4 = 100 slice-equivalents by LUT, /0.7 packing = 143.
        assert_eq!(e.slices(), 143);
    }

    #[test]
    fn modulo_design_lands_between() {
        use stencil_core::{MappingPolicy, ModuloSchedulePlan, ReuseAnalysis};
        let bench = denoise();
        let spec = bench.spec().unwrap();
        let analysis = ReuseAnalysis::of(&spec).unwrap();
        let mplan =
            ModuloSchedulePlan::try_from_analysis(&analysis, &MappingPolicy::default()).unwrap();
        let modulo = estimate_modulo(&mplan, spec.iteration_domain(), bench.ops());
        let (base, ours) = denoise_pair();
        // Same minimal storage as streaming; no DSPs; centralized
        // control costs timing slack relative to streaming.
        assert_eq!(modulo.bram18k, ours.bram18k);
        assert_eq!(modulo.dsps, 0);
        assert!(modulo.cp_ns > ours.cp_ns);
        assert!(modulo.cp_ns < base.cp_ns);
        assert!(modulo.slices() < base.slices());
    }

    #[test]
    fn device_fit_and_utilization() {
        use crate::device::Device;
        let (base, ours) = denoise_pair();
        let d = Device::virtex7_485t();
        assert!(ours.fits(&d));
        assert!(base.fits(&d));
        let (b, s, dsp) = ours.utilization_pct(&d);
        assert!(b > 0.0 && b < 1.0, "bram {b}%");
        assert!(s > 0.0 && s < 5.0, "slices {s}%");
        assert_eq!(dsp, 0.0);
        let over = ResourceEstimate {
            bram18k: 99_999,
            luts: 0,
            ffs: 0,
            dsps: 0,
            cp_ns: 4.0,
        };
        assert!(!over.fits(&d));
    }

    #[test]
    fn display_contains_fields() {
        let (_, ours) = denoise_pair();
        let s = ours.to_string();
        assert!(s.contains("BRAM"), "{s}");
        assert!(s.contains("CP"), "{s}");
    }
}
