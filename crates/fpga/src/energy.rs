//! Power/energy estimation (§5.2 of the paper).
//!
//! The paper found XPower's estimate "dominated by the static power,
//! and almost invariant with custom circuits", noting that with power
//! gating the FPGA power "will be proportional to resource usage, which
//! is covered by Table 5". This module makes both statements
//! quantitative: a static term proportional to the whole device and a
//! gated dynamic/leakage term proportional to the resources actually
//! occupied and their activity.

use serde::{Deserialize, Serialize};

use crate::device::Device;
use crate::estimate::ResourceEstimate;

/// Per-resource power coefficients, in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Device static power, mW (burned regardless of the design).
    pub static_mw: f64,
    /// Dynamic + gated leakage per occupied slice at full activity, mW.
    pub per_slice_mw: f64,
    /// Per active 18 Kb BRAM, mW.
    pub per_bram_mw: f64,
    /// Per active DSP48, mW.
    pub per_dsp_mw: f64,
}

impl PowerModel {
    /// Coefficients in the range reported for 28 nm 7-series devices at
    /// 200 MHz.
    #[must_use]
    pub fn virtex7() -> Self {
        Self {
            static_mw: 1_200.0,
            per_slice_mw: 0.012,
            per_bram_mw: 1.9,
            per_dsp_mw: 0.9,
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::virtex7()
    }
}

/// A power estimate for one design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerEstimate {
    /// Static device power, mW.
    pub static_mw: f64,
    /// Design-proportional power, mW (what power gating would expose).
    pub dynamic_mw: f64,
}

impl PowerEstimate {
    /// Total power, mW.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.static_mw + self.dynamic_mw
    }

    /// Energy per produced output at the given clock period and II=1,
    /// in nanojoules, counting only the gated (design-proportional)
    /// component — the paper's "power proportional to resource usage"
    /// regime.
    #[must_use]
    pub fn gated_energy_per_output_nj(&self, clock_ns: f64) -> f64 {
        self.dynamic_mw * 1e-3 * clock_ns
    }
}

/// Estimates power for a design's resource estimate, at the given
/// activity factor (0..=1; 1.0 = every resource toggles every cycle —
/// the II = 1 steady state is close to that for this architecture).
///
/// # Panics
///
/// Panics if `activity` is outside `[0, 1]`.
#[must_use]
pub fn estimate_power(
    est: &ResourceEstimate,
    device: &Device,
    model: &PowerModel,
    activity: f64,
) -> PowerEstimate {
    assert!(
        (0.0..=1.0).contains(&activity),
        "activity must be in [0, 1]"
    );
    let _ = device;
    let dynamic_mw = activity
        * (f64::from(est.slices()) * model.per_slice_mw
            + f64::from(est.bram18k) * model.per_bram_mw
            + f64::from(est.dsps) * model.per_dsp_mw);
    PowerEstimate {
        static_mw: model.static_mw,
        dynamic_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{estimate_nonuniform, estimate_uniform};
    use stencil_core::MemorySystemPlan;
    use stencil_kernels::denoise;
    use stencil_uniform::multidim_cyclic;

    fn denoise_estimates() -> (ResourceEstimate, ResourceEstimate) {
        let bench = denoise();
        let spec = bench.spec().unwrap();
        let plan = MemorySystemPlan::generate(&spec).unwrap();
        let ours = estimate_nonuniform(&plan, bench.ops());
        let part = multidim_cyclic(bench.window(), bench.extents());
        let base = estimate_uniform(
            &part,
            bench.window().len(),
            spec.element_bits(),
            spec.iteration_domain(),
            bench.ops(),
        );
        (base, ours)
    }

    #[test]
    fn static_power_dominates_as_the_paper_observed() {
        let (_, ours) = denoise_estimates();
        let p = estimate_power(&ours, &Device::default(), &PowerModel::default(), 1.0);
        assert!(
            p.static_mw > 10.0 * p.dynamic_mw,
            "static {} vs dynamic {}",
            p.static_mw,
            p.dynamic_mw
        );
    }

    #[test]
    fn gated_power_tracks_resources() {
        let (base, ours) = denoise_estimates();
        let model = PowerModel::default();
        let d = Device::default();
        let p_ours = estimate_power(&ours, &d, &model, 1.0);
        let p_base = estimate_power(&base, &d, &model, 1.0);
        assert!(p_ours.dynamic_mw < p_base.dynamic_mw);
        assert!(p_ours.gated_energy_per_output_nj(5.0) < p_base.gated_energy_per_output_nj(5.0));
    }

    #[test]
    fn activity_scales_dynamic_only() {
        let (_, ours) = denoise_estimates();
        let model = PowerModel::default();
        let d = Device::default();
        let idle = estimate_power(&ours, &d, &model, 0.0);
        let busy = estimate_power(&ours, &d, &model, 1.0);
        assert_eq!(idle.dynamic_mw, 0.0);
        assert_eq!(idle.static_mw, busy.static_mw);
        assert!(busy.total_mw() > idle.total_mw());
    }

    #[test]
    #[should_panic(expected = "activity must be in")]
    fn bad_activity_rejected() {
        let (_, ours) = denoise_estimates();
        let _ = estimate_power(&ours, &Device::default(), &PowerModel::default(), 1.5);
    }
}
