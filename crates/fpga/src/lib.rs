//! # stencil-fpga
//!
//! Synthetic FPGA resource and timing estimation for stencil
//! accelerators — this reproduction's stand-in for the Xilinx ISE 14.2
//! synthesis flow the DAC'14 paper used for Table 5.
//!
//! The estimator is a deterministic first-order model of Virtex-7
//! mapping: real 18 Kb BRAM aspect-ratio geometry ([`bram18k_blocks`]),
//! per-bit LUT/FF formulas for counters, FIFOs, muxes and fixed-point
//! datapaths ([`logic`] helpers), DSP-based reciprocal dividers for
//! non-power-of-two modulo addressing, and a clock-period heuristic
//! rewarding the distributed structure ([`clock_period_ns`]).
//!
//! Absolute numbers differ from ISE; the *comparison shape* of Table 5
//! is reproduced structurally: the non-uniform design needs fewer BRAMs
//! (right-sized heterogeneous buffers vs power-of-two-deep banks), fewer
//! slices (lexicographic counters vs modulo address transformers plus
//! crossbars and a central controller), zero DSPs, and closes timing
//! with more slack.
//!
//! # Example
//!
//! ```
//! use stencil_fpga::Table5;
//! use stencil_kernels::paper_suite;
//!
//! let table = Table5::build(&paper_suite())?;
//! let (bram_pct, slice_pct, dsp_pct) = table.average_pct();
//! assert!(bram_pct < 100.0);   // fewer BRAMs than [8]
//! assert_eq!(dsp_pct, 0.0);    // DSPs eliminated entirely
//! # let _ = slice_pct;
//! # Ok::<(), stencil_core::PlanError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod bram;
mod compare;
mod device;
mod energy;
mod estimate;
pub mod logic;
mod sweep;
mod timing;

pub use bram::{bram18k_blocks, bram18k_blocks_pow2, BRAM18K_ASPECTS};
pub use compare::{Table5, Table5Row};
pub use device::Device;
pub use energy::{estimate_power, PowerEstimate, PowerModel};
pub use estimate::{estimate_modulo, estimate_nonuniform, estimate_uniform, ResourceEstimate};
pub use sweep::{sweep, SweepPoint};
pub use timing::{clock_period_ns, TimingFeatures};
