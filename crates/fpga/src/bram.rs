//! 18 Kb block-RAM geometry of 7-series FPGAs.
//!
//! Each 18 Kb block supports a fixed set of depth×width aspect ratios;
//! a memory of arbitrary depth `d` and width `w` is built from
//! `ceil(w / W) × ceil(d / D)` blocks for the best-fitting ratio.

/// The depth×width configurations of one 18 Kb block (7-series, true
/// dual port).
pub const BRAM18K_ASPECTS: [(u64, u32); 6] = [
    (16_384, 1),
    (8_192, 2),
    (4_096, 4),
    (2_048, 9),
    (1_024, 18),
    (512, 36),
];

/// Minimum number of 18 Kb blocks implementing a `depth × width_bits`
/// memory.
///
/// # Panics
///
/// Panics if `depth` or `width_bits` is zero.
///
/// # Examples
///
/// ```
/// use stencil_fpga::bram18k_blocks;
///
/// // A 1023-deep 32-bit line buffer needs two blocks (1K x 18 each).
/// assert_eq!(bram18k_blocks(1023, 32), 2);
/// // A 512 x 36 buffer fits exactly one block.
/// assert_eq!(bram18k_blocks(512, 36), 1);
/// ```
#[must_use]
pub fn bram18k_blocks(depth: u64, width_bits: u32) -> u32 {
    assert!(depth > 0 && width_bits > 0, "memory must be non-trivial");
    BRAM18K_ASPECTS
        .iter()
        .map(|&(d_max, w_max)| {
            let width_slices = width_bits.div_ceil(w_max);
            let depth_cascades = depth.div_ceil(d_max) as u32;
            width_slices * depth_cascades
        })
        .min()
        .expect("non-empty aspect table")
}

/// Blocks for a memory whose depth is first rounded up to a power of
/// two — the sizing commodity HLS flows apply to partitioned banks so
/// the intra-bank address decodes by bit selection (the constraint the
/// paper notes uniform partitioning inherits from \[10\]).
///
/// # Panics
///
/// Panics as [`bram18k_blocks`].
#[must_use]
pub fn bram18k_blocks_pow2(depth: u64, width_bits: u32) -> u32 {
    bram18k_blocks(depth.next_power_of_two(), width_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aspect_selection() {
        assert_eq!(bram18k_blocks(512, 36), 1);
        assert_eq!(bram18k_blocks(1024, 18), 1);
        assert_eq!(bram18k_blocks(1024, 32), 2);
        assert_eq!(bram18k_blocks(16_384, 1), 1);
        assert_eq!(bram18k_blocks(2048, 9), 1);
    }

    #[test]
    fn deep_wide_memory() {
        // 9312 x 32 (a 96x96 plane buffer): best is 512x36 -> 19 cascades.
        assert_eq!(bram18k_blocks(9312, 32), 19);
    }

    #[test]
    fn pow2_rounding_costs_more() {
        // 1011 rounds to 1024 (no extra cost), but 1030 deep x 32 bits
        // fits three 512x36 cascades exactly while its power-of-two
        // rounding (2048) forces four blocks.
        assert_eq!(bram18k_blocks(1011, 32), 2);
        assert_eq!(bram18k_blocks_pow2(1011, 32), 2);
        assert_eq!(bram18k_blocks(1030, 32), 3);
        assert_eq!(bram18k_blocks_pow2(1030, 32), 4);
    }

    #[test]
    fn small_memories_take_one_block() {
        assert_eq!(bram18k_blocks(1, 1), 1);
        assert_eq!(bram18k_blocks(100, 16), 1);
    }

    #[test]
    #[should_panic(expected = "non-trivial")]
    fn zero_depth_rejected() {
        let _ = bram18k_blocks(0, 8);
    }
}
