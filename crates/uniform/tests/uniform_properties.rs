//! Property-based validation of the uniform-partitioning baselines.

use proptest::prelude::*;
use stencil_polyhedral::Point;
use stencil_uniform::{
    achieved_ii_affine, achieved_ii_linear, best_uniform, block_cyclic, distinct_mod,
    flatten_window, linear_cyclic, multidim_cyclic, pitches, rescheduled_cyclic, unpartitioned,
    window_span, DEFAULT_LOOKAHEAD,
};

fn window_2d() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::btree_set(((-2i64..=2), (-2i64..=2)), 2..=7)
        .prop_map(|set| set.into_iter().map(|(a, b)| Point::new(&[a, b])).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Linear cyclic: the returned bank count really deconflicts the
    /// window, and no smaller count does.
    #[test]
    fn linear_cyclic_is_minimal_and_valid(
        window in window_2d(),
        rows in 8i64..64,
        cols in 8i64..64,
    ) {
        let r = linear_cyclic(&window, &[rows, cols]);
        let flat = flatten_window(&window, &pitches(&[rows, cols]));
        prop_assert!(distinct_mod(&flat, r.banks as i64));
        prop_assert_eq!(achieved_ii_linear(&window, &[rows, cols], r.banks), 1);
        for smaller in window.len()..r.banks {
            prop_assert!(!distinct_mod(&flat, smaller as i64),
                "{smaller} banks would already work");
        }
    }

    /// Multidim cyclic: the α witness deconflicts and the achieved II
    /// is 1; bank count is at least the reference count.
    #[test]
    fn multidim_witness_valid(
        window in window_2d(),
        rows in 8i64..64,
        cols in 8i64..64,
    ) {
        let r = multidim_cyclic(&window, &[rows, cols]);
        prop_assert!(r.banks >= window.len());
        prop_assert_eq!(achieved_ii_affine(&window, &r.mapping, r.banks), 1);
    }

    /// Rescheduling can only help: never more banks than plain cyclic.
    #[test]
    fn rescheduling_never_hurts(
        window in window_2d(),
        rows in 8i64..64,
        cols in 8i64..64,
    ) {
        let plain = linear_cyclic(&window, &[rows, cols]);
        let resched = rescheduled_cyclic(&window, &[rows, cols], DEFAULT_LOOKAHEAD);
        prop_assert!(resched.banks <= plain.banks);
        prop_assert!(resched.banks >= window.len());
    }

    /// block-cyclic subsumes cyclic: searching sub-blocks never yields
    /// more banks than pure cyclic, and never fewer than n.
    #[test]
    fn block_cyclic_bounds(
        window in window_2d(),
        rows in 8i64..40,
        cols in 8i64..40,
    ) {
        let bc = block_cyclic(&window, &[rows, cols], 3);
        let c = linear_cyclic(&window, &[rows, cols]);
        prop_assert!(bc.banks <= c.banks);
        prop_assert!(bc.banks >= window.len());
    }

    /// The composite best is bounded below by n and above by each
    /// member; total size always covers the window span.
    #[test]
    fn best_uniform_bounds(
        window in window_2d(),
        rows in 8i64..40,
        cols in 8i64..40,
    ) {
        let best = best_uniform(&window, &[rows, cols]);
        prop_assert!(best.banks >= window.len());
        prop_assert!(best.banks <= linear_cyclic(&window, &[rows, cols]).banks);
        let flat = flatten_window(&window, &pitches(&[rows, cols]));
        prop_assert!(best.total_size >= window_span(&flat));
    }

    /// The unpartitioned design's II equals the window size.
    #[test]
    fn unpartitioned_ii(window in window_2d(), rows in 8i64..40, cols in 8i64..40) {
        let r = unpartitioned(&window, &[rows, cols]);
        prop_assert_eq!(r.ii, window.len());
        prop_assert_eq!(r.banks, 1);
    }
}
