//! Best-of-breed uniform partitioning: the minimum bank count over
//! *every* uniform scheme implemented in this crate. Even this
//! composite optimum cannot beat `n` banks (one port of each dual-port
//! bank is spent on refill, §2.3), while the paper's non-uniform design
//! always uses `n - 1` — making the gap a structural property of
//! uniformity rather than an artifact of any one scheme.

use stencil_polyhedral::Point;

use crate::block::block_cyclic;
use crate::linear::linear_cyclic;
use crate::multidim::multidim_cyclic;
use crate::report::PartitionResult;
use crate::reschedule::{rescheduled_cyclic, DEFAULT_LOOKAHEAD};

/// The pure uniform-partitioning scheme with the fewest banks for this
/// window (ties break toward smaller total buffer size).
///
/// "Pure" excludes access *rescheduling* (\[7\]'s co-optimization), which
/// spends extra prefetch registers and scheduling freedom rather than a
/// different bank mapping; compare against
/// [`crate::rescheduled_cyclic`] separately.
///
/// # Panics
///
/// Panics if the window is empty.
#[must_use]
pub fn best_uniform(window: &[Point], extents: &[i64]) -> PartitionResult {
    assert!(!window.is_empty(), "window must be non-empty");
    let candidates = [
        linear_cyclic(window, extents),
        multidim_cyclic(window, extents),
        block_cyclic(window, extents, 4),
    ];
    candidates
        .into_iter()
        .min_by(|a, b| a.banks.cmp(&b.banks).then(a.total_size.cmp(&b.total_size)))
        .expect("non-empty candidate list")
}

/// Every implemented partitioning of one window, for side-by-side
/// comparison (the CLI's `compare`/`report` backing data): \[5\] linear,
/// \[7\] rescheduled, block-cyclic, and \[8\] multidimensional.
///
/// # Panics
///
/// Panics if the window is empty.
#[must_use]
pub fn survey(window: &[Point], extents: &[i64]) -> Vec<PartitionResult> {
    assert!(!window.is_empty(), "window must be non-empty");
    vec![
        linear_cyclic(window, extents),
        rescheduled_cyclic(window, extents, DEFAULT_LOOKAHEAD),
        block_cyclic(window, extents, 4),
        multidim_cyclic(window, extents),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross() -> Vec<Point> {
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ]
    }

    #[test]
    fn best_uniform_never_below_n() {
        // The structural lower bound for uniform schemes.
        for extents in [[768i64, 1024], [768, 1022], [512, 513]] {
            let r = best_uniform(&cross(), &extents);
            assert!(r.banks >= cross().len(), "{extents:?}: {}", r.banks);
        }
    }

    #[test]
    fn best_uniform_reaches_n_for_denoise() {
        // [7]/[8]-class methods find 5 banks for the 5-point window.
        let r = best_uniform(&cross(), &[768, 1024]);
        assert_eq!(r.banks, 5);
        assert_eq!(r.ii, 1);
    }

    #[test]
    fn survey_lists_all_methods() {
        use crate::report::Method;
        let results = survey(&cross(), &[768, 1024]);
        let methods: Vec<Method> = results.iter().map(|r| r.method).collect();
        assert_eq!(
            methods,
            vec![
                Method::LinearCyclic,
                Method::RescheduledCyclic,
                Method::BlockCyclic,
                Method::MultidimCyclic,
            ]
        );
        assert!(results.iter().all(|r| r.banks >= cross().len()));
    }

    #[test]
    fn hard_windows_stay_above_n() {
        // The RICIAN centerless cross defeats every affine/cyclic scheme
        // at 4 banks.
        let rician = [
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ];
        let r = best_uniform(&rician, &[768, 1024]);
        assert!(r.banks >= 5, "got {}", r.banks);
    }
}
