//! Multidimensional affine cyclic partitioning with grid padding — the
//! scheme of Wang et al. DAC'13 (reference \[8\], the paper's experimental
//! baseline).
//!
//! The bank of data index `h` is `(α·h) mod N` for an integer coefficient
//! vector `α`; the window is conflict-free iff the values `α·f_x` are
//! pairwise distinct mod `N` (the mapping difference is
//! position-independent for rigid windows). The flow searches the
//! smallest feasible `N` and a witness `α`.
//!
//! \[8\] additionally **pads** inner grid dimensions to multiples of `N` so
//! that intra-bank addresses decompose without per-access division; the
//! padding inflates the reuse-buffer footprint — increasingly so on
//! high-dimensional grids (the paper's §5.2 observation about
//! SEGMENTATION_3D).

use stencil_polyhedral::Point;

use crate::conflict::distinct_mod;
use crate::flatten::{flatten_window, pitches, window_span};
use crate::report::{Method, PartitionResult};

/// Upper bound on the bank-count search.
const MAX_BANKS: usize = 256;

/// Partitions a stencil window with multidimensional affine cyclic
/// banking and padding, as in \[8\].
///
/// # Panics
///
/// Panics if the window is empty, has more dimensions than supported, or
/// no feasible solution exists below an internal search bound (cannot
/// happen for real windows).
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::Point;
/// use stencil_uniform::{multidim_cyclic, Method};
///
/// // The BICUBIC 4-point window of Fig. 6(a) — a stride-2 square, as
/// // interpolation reads the coarse grid: every pairwise difference is
/// // even, so no 4-bank affine cyclic mapping exists and [8] needs 5
/// // banks where the non-uniform design needs only 3.
/// let window = [
///     Point::new(&[0, 0]),
///     Point::new(&[0, 2]),
///     Point::new(&[2, 0]),
///     Point::new(&[2, 2]),
/// ];
/// let r = multidim_cyclic(&window, &[1024, 1024]);
/// assert_eq!(r.method, Method::MultidimCyclic);
/// assert_eq!(r.banks, 5);
/// ```
#[must_use]
pub fn multidim_cyclic(window: &[Point], extents: &[i64]) -> PartitionResult {
    assert!(!window.is_empty(), "window must be non-empty");
    let n = window.len();
    let m = extents.len();
    for banks in n..=MAX_BANKS {
        if let Some(alpha) = find_alpha(window, banks as i64, m) {
            let padded = padded_extents(extents, banks as u64);
            let flat = flatten_window(window, &pitches(&padded));
            let span = window_span(&flat);
            let per_bank = span.div_ceil(banks as u64);
            return PartitionResult {
                method: Method::MultidimCyclic,
                banks,
                total_size: per_bank * banks as u64,
                ii: 1,
                needs_divider: !banks.is_power_of_two(),
                mapping: alpha,
            };
        }
    }
    unreachable!("a feasible bank count always exists below MAX_BANKS");
}

/// The grid after \[8\]'s padding: every dimension except the outermost is
/// rounded up to a multiple of the bank count, so bank-local addresses
/// need no general division.
#[must_use]
pub fn padded_extents(extents: &[i64], banks: u64) -> Vec<i64> {
    let b = banks as i64;
    extents
        .iter()
        .enumerate()
        .map(|(d, &e)| if d == 0 { e } else { (e + b - 1) / b * b })
        .collect()
}

/// Exhaustively searches coefficient vectors `α ∈ [0, banks)^m` for one
/// that separates the window's offsets modulo `banks`.
fn find_alpha(window: &[Point], banks: i64, dims: usize) -> Option<Vec<i64>> {
    let mut alpha = vec![0i64; dims];
    loop {
        if alpha.iter().any(|&a| a != 0) {
            let dots: Vec<i64> = window
                .iter()
                .map(|f| f.as_slice().iter().zip(&alpha).map(|(&c, &a)| c * a).sum())
                .collect();
            if distinct_mod(&dots, banks) {
                return Some(alpha);
            }
        }
        // Odometer over [0, banks)^dims.
        let mut d = dims;
        loop {
            if d == 0 {
                return None;
            }
            d -= 1;
            alpha[d] += 1;
            if alpha[d] < banks {
                break;
            }
            alpha[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross() -> Vec<Point> {
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ]
    }

    /// The 19-point SEGMENTATION_3D window of Fig. 6(c): the full 3³
    /// neighbourhood minus the 8 corners.
    fn nineteen_point() -> Vec<Point> {
        let mut out = Vec::new();
        for a in -1..=1i64 {
            for b in -1..=1i64 {
                for c in -1..=1i64 {
                    if a != 0 && b != 0 && c != 0 {
                        continue; // corner
                    }
                    out.push(Point::new(&[a, b, c]));
                }
            }
        }
        assert_eq!(out.len(), 19);
        out
    }

    #[test]
    fn denoise_needs_exactly_five() {
        // §2.3: [8] keeps the DENOISE window at 5 banks for any row size.
        for w in [1018i64, 1024, 1025, 1030] {
            let r = multidim_cyclic(&cross(), &[768, w]);
            assert_eq!(r.banks, 5, "row size {w}");
        }
    }

    #[test]
    fn rician_window_needs_five() {
        // Fig. 6(b): the 4-point RICIAN window — the centerless cross of
        // the Rician-denoising PDE — needs 5 banks under [8]: any α with
        // both components odd collides ±f, any even component collides a
        // pair outright.
        let window = [
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ];
        let r = multidim_cyclic(&window, &[768, 1024]);
        assert_eq!(r.banks, 5);
    }

    #[test]
    fn bicubic_window_needs_five() {
        // Fig. 6(a): the stride-2 BICUBIC window has all-even pairwise
        // differences, so 4 affine-cyclic banks are impossible.
        let window = [
            Point::new(&[0, 0]),
            Point::new(&[0, 2]),
            Point::new(&[2, 0]),
            Point::new(&[2, 2]),
        ];
        let r = multidim_cyclic(&window, &[1024, 1024]);
        assert_eq!(r.banks, 5);
    }

    #[test]
    fn segmentation_3d_window_needs_twenty() {
        // Fig. 6(c): the 19-point window needs 20 banks under [8].
        let r = multidim_cyclic(&nineteen_point(), &[96, 96, 96]);
        assert_eq!(r.banks, 20);
    }

    #[test]
    fn alpha_witness_really_separates() {
        let r = multidim_cyclic(&cross(), &[768, 1024]);
        let dots: Vec<i64> = cross()
            .iter()
            .map(|f| {
                f.as_slice()
                    .iter()
                    .zip(&r.mapping)
                    .map(|(&c, &a)| c * a)
                    .sum()
            })
            .collect();
        assert!(distinct_mod(&dots, r.banks as i64));
    }

    #[test]
    fn padding_inflates_inner_dims_only() {
        assert_eq!(padded_extents(&[768, 1024], 5), vec![768, 1025]);
        assert_eq!(padded_extents(&[96, 96, 96], 20), vec![96, 100, 100]);
        assert_eq!(padded_extents(&[64], 4), vec![64]);
    }

    #[test]
    fn padded_size_exceeds_unpadded_span() {
        let r = multidim_cyclic(&cross(), &[768, 1024]);
        // Unpadded span is 2049; [8]'s padded, bank-rounded total must
        // be at least that.
        assert!(r.total_size >= 2049, "total {}", r.total_size);
    }

    #[test]
    fn three_d_padding_overhead_is_large() {
        // §5.2: padding overhead grows on high-dimensional grids.
        let r = multidim_cyclic(&nineteen_point(), &[96, 96, 96]);
        let unpadded_span =
            window_span(&flatten_window(&nineteen_point(), &pitches(&[96, 96, 96])));
        assert!(r.total_size > unpadded_span);
        let overhead = r.total_size as f64 / unpadded_span as f64;
        assert!(overhead > 1.05, "3-D padding overhead only {overhead:.3}");
    }
}
