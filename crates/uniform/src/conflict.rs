//! Bank-conflict predicates shared by the cyclic partitioners.

/// True if all values are pairwise distinct modulo `m`.
///
/// For rigid sliding windows this is exactly the conflict-freedom
/// condition: bank(h + f_x) − bank(h + f_y) depends only on f_x − f_y.
///
/// # Panics
///
/// Panics if `m <= 0`.
#[must_use]
pub fn distinct_mod(values: &[i64], m: i64) -> bool {
    assert!(m > 0, "modulus must be positive");
    let mut seen = vec![false; m as usize];
    for &v in values {
        let r = v.rem_euclid(m) as usize;
        if seen[r] {
            return false;
        }
        seen[r] = true;
    }
    true
}

/// The worst-case number of same-bank accesses in one cycle — the
/// initiation interval a bank mapping sustains with single read ports
/// (the "Original II" of Table 4 corresponds to the 1-bank mapping).
///
/// # Panics
///
/// Panics if `m <= 0`.
#[must_use]
pub fn max_bank_multiplicity(values: &[i64], m: i64) -> usize {
    assert!(m > 0, "modulus must be positive");
    let mut counts = vec![0usize; m as usize];
    let mut worst = 0;
    for &v in values {
        let r = v.rem_euclid(m) as usize;
        counts[r] += 1;
        worst = worst.max(counts[r]);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinctness() {
        assert!(distinct_mod(&[0, 1, 2], 3));
        assert!(!distinct_mod(&[0, 3], 3));
        assert!(distinct_mod(&[-1, 0, 1], 3));
        assert!(!distinct_mod(&[-1, 2], 3));
        assert!(distinct_mod(&[], 5));
    }

    #[test]
    fn multiplicity() {
        assert_eq!(max_bank_multiplicity(&[0, 1, 2, 3, 4], 1), 5);
        assert_eq!(max_bank_multiplicity(&[0, 1, 2, 3, 4], 5), 1);
        assert_eq!(max_bank_multiplicity(&[-1024, -1, 0, 1, 1024], 5), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_modulus_rejected() {
        let _ = distinct_mod(&[1], 0);
    }
}
