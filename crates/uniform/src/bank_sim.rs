//! Cycle-level microsimulation of banked reuse buffers — verifies the
//! analytic II predictions ([`crate::achieved_ii_linear`] etc.) by
//! actually issuing the window's reads against single-read-port banks
//! as the window slides.

use stencil_polyhedral::Point;

use crate::flatten::{flatten_window, pitches};

/// The bank mapping a simulation exercises.
#[derive(Debug, Clone)]
pub enum BankMap {
    /// Linear cyclic on the flattened address.
    Linear {
        /// Number of banks.
        banks: usize,
    },
    /// Affine cyclic `(α·h) mod banks` on grid coordinates.
    Affine {
        /// Number of banks.
        banks: usize,
        /// Coefficient vector.
        alpha: Vec<i64>,
    },
}

/// Simulates `positions` consecutive window positions, issuing all `n`
/// reads of each position against single-read-port banks; reads to the
/// same bank in one position serialize. Returns the measured average
/// cycles per position (the achieved II).
///
/// # Panics
///
/// Panics if the window is empty or `positions == 0`.
#[must_use]
pub fn simulate_ii(window: &[Point], extents: &[i64], map: &BankMap, positions: u64) -> f64 {
    assert!(!window.is_empty() && positions > 0, "invalid arguments");
    let p = pitches(extents);
    let flat = flatten_window(window, &p);
    let mut cycles = 0u64;
    // Slide the window base along the flattened address space; the bank
    // pattern of an affine map depends on the multi-dimensional base, so
    // walk real coordinates.
    let dims = extents.len();
    let mut base = vec![0i64; dims];
    for _ in 0..positions {
        let mut per_bank = std::collections::HashMap::new();
        for (k, f) in window.iter().enumerate() {
            let bank = match map {
                BankMap::Linear { banks } => {
                    let base_flat: i64 = base.iter().zip(&p).map(|(&c, &pi)| c * pi).sum();
                    (base_flat + flat[k]).rem_euclid(*banks as i64)
                }
                BankMap::Affine { banks, alpha } => {
                    let dot: i64 = base
                        .iter()
                        .zip(f.as_slice())
                        .zip(alpha)
                        .map(|((&b, &o), &a)| (b + o) * a)
                        .sum();
                    dot.rem_euclid(*banks as i64)
                }
            };
            *per_bank.entry(bank).or_insert(0u64) += 1;
        }
        cycles += per_bank.values().max().copied().unwrap_or(1);
        // Advance the base point in row-major order.
        for d in (0..dims).rev() {
            base[d] += 1;
            if base[d] < extents[d] {
                break;
            }
            base[d] = 0;
        }
    }
    cycles as f64 / positions as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ii_sim::{achieved_ii_affine, achieved_ii_linear};
    use crate::linear::linear_cyclic;
    use crate::multidim::multidim_cyclic;

    fn cross() -> Vec<Point> {
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ]
    }

    #[test]
    fn microsim_confirms_linear_analytic_ii() {
        let extents = [48i64, 64];
        for banks in [1usize, 5, 6, 8] {
            let analytic = achieved_ii_linear(&cross(), &extents, banks) as f64;
            let measured = simulate_ii(&cross(), &extents, &BankMap::Linear { banks }, 2_000);
            assert!(
                (measured - analytic).abs() < 1e-9,
                "banks {banks}: measured {measured} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn microsim_confirms_affine_witness() {
        let extents = [48i64, 64];
        let r = multidim_cyclic(&cross(), &extents);
        let measured = simulate_ii(
            &cross(),
            &extents,
            &BankMap::Affine {
                banks: r.banks,
                alpha: r.mapping.clone(),
            },
            2_000,
        );
        assert_eq!(measured, 1.0);
        assert_eq!(achieved_ii_affine(&cross(), &r.mapping, r.banks), 1);
    }

    #[test]
    fn microsim_detects_undersized_linear_banks() {
        let extents = [48i64, 64];
        let feasible = linear_cyclic(&cross(), &extents).banks;
        let measured = simulate_ii(
            &cross(),
            &extents,
            &BankMap::Linear {
                banks: feasible - 1,
            },
            2_000,
        );
        assert!(measured > 1.0, "measured {measured}");
    }
}
