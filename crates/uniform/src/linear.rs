//! Linear cyclic memory partitioning — the scheme of Cong et al.
//! ICCAD'09 (reference \[5\] of the paper).
//!
//! The array is flattened row-major; bank of address `a` is `a mod N`.
//! Full pipelining requires the `n` simultaneously accessed addresses to
//! fall in distinct banks, which (because the window slides rigidly)
//! reduces to the *offsets* being pairwise distinct modulo `N`. The
//! scheme's weakness — the paper's Fig. 5 — is that feasible `N` depends
//! on the grid's row size, ranging well above the `n` lower bound.

use stencil_polyhedral::Point;

use crate::conflict::distinct_mod;
use crate::flatten::{flatten_window, pitches, window_span};
use crate::report::{Method, PartitionResult};

/// Upper bound on the bank-count search; no real window needs more.
const MAX_BANKS: usize = 4096;

/// Partitions a stencil window with linear cyclic banking.
///
/// `extents` are the data grid's per-dimension extents (the row size the
/// flattening depends on).
///
/// # Panics
///
/// Panics if the window is empty or no feasible bank count exists below
/// an internal search bound (cannot happen for real windows).
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::Point;
/// use stencil_uniform::{linear_cyclic, Method};
///
/// let window = [
///     Point::new(&[-1, 0]),
///     Point::new(&[0, -1]),
///     Point::new(&[0, 0]),
///     Point::new(&[0, 1]),
///     Point::new(&[1, 0]),
/// ];
/// let r = linear_cyclic(&window, &[768, 1024]);
/// assert_eq!(r.method, Method::LinearCyclic);
/// // W = 1024 ≡ 4 (mod 5) collides, so 5 banks are infeasible: Fig. 5.
/// assert_eq!(r.banks, 6);
/// ```
#[must_use]
pub fn linear_cyclic(window: &[Point], extents: &[i64]) -> PartitionResult {
    assert!(!window.is_empty(), "window must be non-empty");
    let flat = flatten_window(window, &pitches(extents));
    let span = window_span(&flat);
    let n = window.len();
    for banks in n..=MAX_BANKS {
        if distinct_mod(&flat, banks as i64) {
            let per_bank = span.div_ceil(banks as u64);
            return PartitionResult {
                method: Method::LinearCyclic,
                banks,
                total_size: per_bank * banks as u64,
                ii: 1,
                needs_divider: !banks.is_power_of_two(),
                mapping: vec![banks as i64],
            };
        }
    }
    unreachable!("a feasible bank count always exists below MAX_BANKS");
}

/// Linear cyclic partitioning with **row padding**: \[8\] pads inner grid
/// dimensions to relax partitioning complexity; applied to the linear
/// scheme, padding the row size by up to `max_pad` columns can restore
/// the `n`-bank solution that the natural row size denies (Fig. 5's
/// dips), at the cost of a proportionally larger buffer.
///
/// Returns the best result over pads `0..=max_pad` (fewest banks, then
/// smallest buffer) along with the pad used (recorded as the second
/// mapping entry).
///
/// # Panics
///
/// Panics as [`linear_cyclic`].
#[must_use]
pub fn linear_cyclic_padded(window: &[Point], extents: &[i64], max_pad: i64) -> PartitionResult {
    assert!(max_pad >= 0, "pad must be non-negative");
    let mut best: Option<PartitionResult> = None;
    for pad in 0..=max_pad {
        let mut padded = extents.to_vec();
        let last = padded.len() - 1;
        padded[last] += pad;
        let mut r = linear_cyclic(window, &padded);
        r.mapping.push(pad);
        let better = match &best {
            None => true,
            Some(b) => (r.banks, r.total_size) < (b.banks, b.total_size),
        };
        if better {
            best = Some(r);
        }
    }
    best.expect("at least pad 0 evaluated")
}

/// Sweeps the grid row size and reports the bank count of linear cyclic
/// partitioning for each — the experiment of the paper's Fig. 5 (bank
/// count varies 5–8 for the constant 5-point DENOISE window).
///
/// Returns `(row_size, banks)` pairs.
#[must_use]
pub fn bank_count_vs_row_size(
    window: &[Point],
    rows: i64,
    row_sizes: impl IntoIterator<Item = i64>,
) -> Vec<(i64, usize)> {
    row_sizes
        .into_iter()
        .map(|w| (w, linear_cyclic(window, &[rows, w]).banks))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross() -> Vec<Point> {
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ]
    }

    #[test]
    fn feasible_row_sizes_use_five_banks() {
        // W ≡ 2 or 3 (mod 5) makes {−W,−1,0,1,W} distinct mod 5.
        let r = linear_cyclic(&cross(), &[768, 1022]);
        assert_eq!(r.banks, 5); // 1022 ≡ 2 (mod 5)
        assert_eq!(r.ii, 1);
        assert!(r.needs_divider);
    }

    #[test]
    fn fig5_bank_count_varies_with_row_size() {
        let sweep = bank_count_vs_row_size(&cross(), 768, 1018..=1030);
        let counts: Vec<usize> = sweep.iter().map(|&(_, b)| b).collect();
        // The window never changes, yet the bank count does (Fig. 5).
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert_eq!(*min, 5);
        assert!(*max > 5, "bank count never varied: {counts:?}");
        assert!(*max <= 8, "bank count exceeded Fig. 5 range: {counts:?}");
    }

    #[test]
    fn total_size_covers_window_span() {
        let r = linear_cyclic(&cross(), &[768, 1024]);
        assert!(r.total_size > 2 * 1024);
        assert_eq!(r.total_size % r.banks as u64, 0);
    }

    #[test]
    fn padding_restores_the_five_bank_solution() {
        // W = 1024 denies 5 banks (Fig. 5); padding to W = 1027
        // (1027 ≡ 2 mod 5) restores it — at a slightly larger buffer.
        let plain = linear_cyclic(&cross(), &[768, 1024]);
        assert!(plain.banks > 5);
        let padded = linear_cyclic_padded(&cross(), &[768, 1024], 4);
        assert_eq!(padded.banks, 5);
        assert_eq!(*padded.mapping.last().unwrap(), 3); // pad = +3
        assert!(padded.total_size > 2 * 1024);
    }

    #[test]
    fn zero_pad_budget_matches_plain() {
        let plain = linear_cyclic(&cross(), &[768, 1024]);
        let padded = linear_cyclic_padded(&cross(), &[768, 1024], 0);
        assert_eq!(padded.banks, plain.banks);
    }

    #[test]
    fn power_of_two_banks_need_no_divider() {
        // A 1-D 4-point window with offsets 0..3: distinct mod 4.
        let window = [
            Point::new(&[0]),
            Point::new(&[1]),
            Point::new(&[2]),
            Point::new(&[3]),
        ];
        let r = linear_cyclic(&window, &[64]);
        assert_eq!(r.banks, 4);
        assert!(!r.needs_divider);
    }
}
