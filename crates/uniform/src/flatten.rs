//! Row-major flattening of multi-dimensional grids — the address view
//! used by linear cyclic partitioning (\[5\] in the paper).

use stencil_polyhedral::Point;

/// Row-major pitches of a grid with the given per-dimension extents:
/// `pitch[d]` is the address distance between neighbours along
/// dimension `d`.
///
/// # Panics
///
/// Panics if `extents` is empty or contains a non-positive extent.
///
/// # Examples
///
/// ```
/// use stencil_uniform::pitches;
///
/// assert_eq!(pitches(&[768, 1024]), vec![1024, 1]);
/// assert_eq!(pitches(&[4, 5, 6]), vec![30, 6, 1]);
/// ```
#[must_use]
pub fn pitches(extents: &[i64]) -> Vec<i64> {
    assert!(!extents.is_empty(), "grid needs at least one dimension");
    assert!(
        extents.iter().all(|&e| e > 0),
        "grid extents must be positive"
    );
    let mut out = vec![1i64; extents.len()];
    for d in (0..extents.len() - 1).rev() {
        out[d] = out[d + 1] * extents[d + 1];
    }
    out
}

/// Flattens a stencil offset to a linear address offset under the given
/// pitches.
///
/// # Panics
///
/// Panics if dimensionalities mismatch.
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::Point;
/// use stencil_uniform::{flatten_offset, pitches};
///
/// let p = pitches(&[768, 1024]);
/// assert_eq!(flatten_offset(&Point::new(&[1, 0]), &p), 1024);
/// assert_eq!(flatten_offset(&Point::new(&[0, -1]), &p), -1);
/// ```
#[must_use]
pub fn flatten_offset(offset: &Point, pitches: &[i64]) -> i64 {
    assert_eq!(offset.dims(), pitches.len(), "dimensionality mismatch");
    offset
        .as_slice()
        .iter()
        .zip(pitches)
        .map(|(&c, &p)| c * p)
        .sum()
}

/// Flattens every offset of a window.
#[must_use]
pub fn flatten_window(offsets: &[Point], pitches: &[i64]) -> Vec<i64> {
    offsets.iter().map(|f| flatten_offset(f, pitches)).collect()
}

/// The linear address span of a window: the size of the sliding data
/// window a uniform reuse buffer must cover
/// (`max offset - min offset + 1`).
///
/// # Panics
///
/// Panics if `flat` is empty.
#[must_use]
pub fn window_span(flat: &[i64]) -> u64 {
    let max = flat.iter().max().expect("non-empty window");
    let min = flat.iter().min().expect("non-empty window");
    (max - min + 1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pitches_1d() {
        assert_eq!(pitches(&[100]), vec![1]);
    }

    #[test]
    fn denoise_window_span() {
        let p = pitches(&[768, 1024]);
        let offsets = [
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ];
        let flat = flatten_window(&offsets, &p);
        assert_eq!(flat, vec![-1024, -1, 0, 1, 1024]);
        assert_eq!(window_span(&flat), 2049);
    }

    #[test]
    fn three_d_flatten() {
        let p = pitches(&[96, 96, 96]);
        assert_eq!(flatten_offset(&Point::new(&[1, 0, 0]), &p), 96 * 96);
        assert_eq!(flatten_offset(&Point::new(&[0, 1, -1]), &p), 95);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        let _ = pitches(&[0, 5]);
    }
}
