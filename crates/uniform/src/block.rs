//! Block and block-cyclic partitioning — the other classic uniform
//! schemes considered by the memory-partitioning literature the paper
//! builds on (\[5\] evaluates cyclic *because* block partitioning fails
//! for sliding windows; block-cyclic generalizes both).
//!
//! * **Block**: bank = ⌊a / B⌋ for block size `B = ceil(span/N)`.
//!   Neighbouring addresses land in the same bank, so a stencil window
//!   almost always collides — the measured II degrades toward `n`.
//! * **Block-cyclic**: bank = ⌊a / b⌋ mod N for a sub-block size `b`.
//!   Unlike pure cyclic, conflict freedom depends on the window's
//!   *alignment* (`a mod b`), so the check must quantify over all
//!   alignments.

use stencil_polyhedral::Point;

use crate::conflict::max_bank_multiplicity;
use crate::flatten::{flatten_window, pitches, window_span};
use crate::report::{Method, PartitionResult};

/// Upper bound on the bank-count search.
const MAX_BANKS: usize = 4096;

/// The achieved II of pure block partitioning with `banks` banks: the
/// worst-case number of window elements in one block, over all window
/// alignments.
///
/// # Panics
///
/// Panics if the window is empty or `banks == 0`.
#[must_use]
pub fn block_partitioning_ii(window: &[Point], extents: &[i64], banks: usize) -> usize {
    assert!(!window.is_empty() && banks > 0, "invalid arguments");
    let flat = flatten_window(window, &pitches(extents));
    let span = window_span(&flat);
    let block = span.div_ceil(banks as u64).max(1) as i64;
    // Worst case over alignments of the window within a block. Same
    // block => same bank (regardless of the mod-N wrap), so count the
    // most populated block directly.
    let mut worst = 1;
    for s in 0..block {
        let mut blocks: Vec<i64> = flat.iter().map(|a| (a + s).div_euclid(block)).collect();
        blocks.sort_unstable();
        let mut run = 1;
        for w in blocks.windows(2) {
            run = if w[0] == w[1] { run + 1 } else { 1 };
            worst = worst.max(run);
        }
    }
    worst
}

/// True if block-cyclic banking `(⌊a/b⌋ mod N)` is conflict-free for
/// the window at **every** alignment.
#[must_use]
pub fn block_cyclic_feasible(flat: &[i64], banks: usize, sub_block: u64) -> bool {
    let b = sub_block as i64;
    for s in 0..b {
        let mapped: Vec<i64> = flat.iter().map(|a| (a + s).div_euclid(b)).collect();
        if max_bank_multiplicity(&mapped, banks as i64) > 1 {
            return false;
        }
    }
    true
}

/// Partitions with block-cyclic banking: the smallest `N` (searching
/// sub-block sizes `1..=max_sub_block`) that deconflicts the window at
/// every alignment.
///
/// # Panics
///
/// Panics if the window is empty or `max_sub_block == 0`.
#[must_use]
pub fn block_cyclic(window: &[Point], extents: &[i64], max_sub_block: u64) -> PartitionResult {
    assert!(!window.is_empty(), "window must be non-empty");
    assert!(max_sub_block > 0, "need at least sub-block size 1");
    let flat = flatten_window(window, &pitches(extents));
    let span = window_span(&flat);
    let n = window.len();
    for banks in n..=MAX_BANKS {
        for b in 1..=max_sub_block {
            if block_cyclic_feasible(&flat, banks, b) {
                let per_bank = span.div_ceil(banks as u64);
                return PartitionResult {
                    method: Method::BlockCyclic,
                    banks,
                    total_size: per_bank * banks as u64,
                    ii: 1,
                    needs_divider: !(banks.is_power_of_two() && b.is_power_of_two()),
                    mapping: vec![banks as i64, b as i64],
                };
            }
        }
    }
    unreachable!("cyclic (b = 1) always succeeds below MAX_BANKS");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross() -> Vec<Point> {
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ]
    }

    #[test]
    fn block_partitioning_collapses_for_stencils() {
        // With few banks, each block spans many columns, so the three
        // same-row accesses always share a bank: II >= 3, and usually
        // the whole row trio plus boundary effects push it higher.
        let ii = block_partitioning_ii(&cross(), &[768, 1024], 5);
        assert!(ii >= 3, "block partitioning II = {ii}");
    }

    #[test]
    fn block_cyclic_with_unit_blocks_matches_cyclic() {
        let bc = block_cyclic(&cross(), &[768, 1022], 1);
        let c = crate::linear::linear_cyclic(&cross(), &[768, 1022]);
        assert_eq!(bc.banks, c.banks);
    }

    #[test]
    fn alignment_quantification_matters() {
        // Window {0, 1}: with b = 2, N = 2, alignment 0 maps both to
        // block 0 — conflict. Cyclic (b = 1) is fine.
        let flat = [0i64, 1];
        assert!(!block_cyclic_feasible(&flat, 2, 2));
        assert!(block_cyclic_feasible(&flat, 2, 1));
    }

    #[test]
    fn block_cyclic_never_beats_the_lower_bound() {
        let r = block_cyclic(&cross(), &[768, 1024], 4);
        assert!(r.banks >= cross().len());
        assert_eq!(r.ii, 1);
    }
}
