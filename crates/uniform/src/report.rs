//! Common result type for all uniform-partitioning baselines.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The partitioning method that produced a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Linear cyclic partitioning of the flattened address space
    /// (Cong et al., ICCAD'09 — reference \[5\] of the paper).
    LinearCyclic,
    /// Linear cyclic plus memory-access rescheduling within a bounded
    /// lookahead window (Li et al., ICCAD'12 — reference \[7\]).
    RescheduledCyclic,
    /// Block-cyclic banking `⌊a/b⌋ mod N` on the flattened address.
    BlockCyclic,
    /// Multidimensional affine cyclic partitioning with grid padding
    /// (Wang et al., DAC'13 — reference \[8\], the paper's baseline).
    MultidimCyclic,
    /// This paper's non-uniform FIFO chain.
    NonUniform,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::LinearCyclic => "[5] linear cyclic",
            Method::RescheduledCyclic => "[7] cyclic + rescheduling",
            Method::BlockCyclic => "block-cyclic",
            Method::MultidimCyclic => "[8] multidim cyclic",
            Method::NonUniform => "ours (non-uniform)",
        };
        f.write_str(s)
    }
}

/// The outcome of partitioning one stencil window with one method —
/// a row of the paper's Table 4.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionResult {
    /// The method that produced this result.
    pub method: Method,
    /// Number of memory banks.
    pub banks: usize,
    /// Total reuse-buffer size across banks, in data elements.
    pub total_size: u64,
    /// The initiation interval the partitioned design sustains.
    pub ii: usize,
    /// True if bank addressing requires general modulo/division hardware
    /// (the DSP-hungry address transformer of §5.2; our method and
    /// power-of-two cases need none).
    pub needs_divider: bool,
    /// The bank-mapping coefficients, for reproducibility: the winning
    /// `α` vector for affine schemes, the per-access time shifts for
    /// rescheduling, empty otherwise.
    pub mapping: Vec<i64>,
}

impl fmt::Display for PartitionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} banks, total size {}, II {}{}",
            self.method,
            self.banks,
            self.total_size,
            self.ii,
            if self.needs_divider { ", divider" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Method::LinearCyclic.to_string(), "[5] linear cyclic");
        assert_eq!(Method::NonUniform.to_string(), "ours (non-uniform)");
        let r = PartitionResult {
            method: Method::MultidimCyclic,
            banks: 5,
            total_size: 2050,
            ii: 1,
            needs_divider: true,
            mapping: vec![2, 1],
        };
        let s = r.to_string();
        assert!(s.contains("5 banks"), "{s}");
        assert!(s.contains("divider"), "{s}");
    }
}
