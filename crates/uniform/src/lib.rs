//! # stencil-uniform
//!
//! Re-implementations of the **uniform** (cyclic) memory-partitioning
//! schemes the DAC'14 non-uniform-partitioning paper compares against:
//!
//! * [`linear_cyclic`] — Cong et al. ICCAD'09 (reference \[5\]): bank =
//!   flattened address mod `N`. Its bank count depends on the grid row
//!   size even for a fixed window (the paper's Fig. 5).
//! * [`rescheduled_cyclic`] — Li et al. ICCAD'12 (reference \[7\]): linear
//!   cyclic plus bounded memory-access rescheduling.
//! * [`multidim_cyclic`] — Wang et al. DAC'13 (reference \[8\], the
//!   paper's experimental baseline): affine bank mapping `(α·h) mod N`
//!   over grid coordinates, with inner-dimension padding.
//! * [`unpartitioned`] — the 1-bank original design whose port
//!   contention produces Table 4's "Original II".
//!
//! All schemes share the property the paper attacks: every bank has the
//! same size, so the bank count can exceed the `n - 1` lower bound and
//! the total buffer footprint carries padding/rounding overhead.
//!
//! # Example
//!
//! ```
//! use stencil_polyhedral::Point;
//! use stencil_uniform::{multidim_cyclic, unpartitioned};
//!
//! let window = [
//!     Point::new(&[-1, 0]),
//!     Point::new(&[0, -1]),
//!     Point::new(&[0, 0]),
//!     Point::new(&[0, 1]),
//!     Point::new(&[1, 0]),
//! ];
//! assert_eq!(unpartitioned(&window, &[768, 1024]).ii, 5);
//! let r = multidim_cyclic(&window, &[768, 1024]);
//! assert_eq!((r.banks, r.ii), (5, 1)); // vs 4 banks for the non-uniform design
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod bank_sim;
mod block;
mod conflict;
mod flatten;
mod ii_sim;
mod linear;
mod multidim;
mod report;
mod reschedule;
mod search;

pub use bank_sim::{simulate_ii, BankMap};
pub use block::{block_cyclic, block_cyclic_feasible, block_partitioning_ii};
pub use conflict::{distinct_mod, max_bank_multiplicity};
pub use flatten::{flatten_offset, flatten_window, pitches, window_span};
pub use ii_sim::{achieved_ii_affine, achieved_ii_linear, unpartitioned};
pub use linear::{bank_count_vs_row_size, linear_cyclic, linear_cyclic_padded};
pub use multidim::{multidim_cyclic, padded_extents};
pub use report::{Method, PartitionResult};
pub use reschedule::{rescheduled_cyclic, DEFAULT_LOOKAHEAD};
pub use search::{best_uniform, survey};
