//! Linear cyclic partitioning with memory-access rescheduling — the
//! co-optimization of Li et al. ICCAD'12 (reference \[7\] of the paper).
//!
//! The key idea of \[7\] is that the `n` accesses of one iteration need
//! not all issue in the same cycle: an access may be issued up to a few
//! cycles *early*, its value held in a prefetch register until the
//! iteration consumes it. An access shifted by `t` cycles reads, at any
//! given cycle, the address it would have read `t` cycles later — so its
//! effective flattened offset becomes `a_x + t·step`, where `step` is
//! the address stride per iteration (1 for a unit-stride innermost
//! loop). Conflict freedom then requires `a_x + t_x` distinct mod `N`
//! for some shift assignment `t_x ∈ {0..lookahead}`.
//!
//! With an unbounded lookahead, `N = n` is always achievable; real
//! designs bound the lookahead by the prefetch-register budget. We model
//! the scheme with a configurable lookahead (default 2 registers per
//! port, matching the modest latency budget of \[7\]'s experiments).

use stencil_polyhedral::Point;

use crate::flatten::{flatten_window, pitches, window_span};
use crate::report::{Method, PartitionResult};

/// Default per-access prefetch lookahead, in cycles.
pub const DEFAULT_LOOKAHEAD: i64 = 2;

/// Upper bound on the bank-count search.
const MAX_BANKS: usize = 4096;

/// Partitions with linear cyclic banking plus bounded access
/// rescheduling.
///
/// # Panics
///
/// Panics if the window is empty or `lookahead` is negative.
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::Point;
/// use stencil_uniform::{rescheduled_cyclic, DEFAULT_LOOKAHEAD};
///
/// let window = [
///     Point::new(&[-1, 0]),
///     Point::new(&[0, -1]),
///     Point::new(&[0, 0]),
///     Point::new(&[0, 1]),
///     Point::new(&[1, 0]),
/// ];
/// // Rescheduling rescues the 5-bank solution that plain cyclic loses
/// // on a 1024-wide grid (Fig. 5 vs. the [7] discussion in §2.3).
/// let r = rescheduled_cyclic(&window, &[768, 1024], DEFAULT_LOOKAHEAD);
/// assert_eq!(r.banks, 5);
/// ```
#[must_use]
pub fn rescheduled_cyclic(window: &[Point], extents: &[i64], lookahead: i64) -> PartitionResult {
    assert!(!window.is_empty(), "window must be non-empty");
    assert!(lookahead >= 0, "lookahead must be non-negative");
    let flat = flatten_window(window, &pitches(extents));
    let span = window_span(&flat);
    let n = window.len();
    for banks in n..=MAX_BANKS {
        if let Some(shifts) = find_shifts(&flat, banks as i64, lookahead) {
            let per_bank = span.div_ceil(banks as u64);
            return PartitionResult {
                method: Method::RescheduledCyclic,
                banks,
                total_size: per_bank * banks as u64,
                ii: 1,
                needs_divider: !banks.is_power_of_two(),
                mapping: shifts,
            };
        }
    }
    unreachable!("a feasible bank count always exists below MAX_BANKS");
}

/// Searches for per-access shifts making `a_x + t_x` distinct mod
/// `banks` via backtracking over residue assignments.
fn find_shifts(flat: &[i64], banks: i64, lookahead: i64) -> Option<Vec<i64>> {
    fn rec(
        flat: &[i64],
        banks: i64,
        lookahead: i64,
        k: usize,
        used: &mut Vec<bool>,
        shifts: &mut Vec<i64>,
    ) -> bool {
        if k == flat.len() {
            return true;
        }
        for t in 0..=lookahead {
            let r = (flat[k] + t).rem_euclid(banks) as usize;
            if !used[r] {
                used[r] = true;
                shifts.push(t);
                if rec(flat, banks, lookahead, k + 1, used, shifts) {
                    return true;
                }
                shifts.pop();
                used[r] = false;
            }
        }
        false
    }

    let mut used = vec![false; banks as usize];
    let mut shifts = Vec::with_capacity(flat.len());
    if rec(flat, banks, lookahead, 0, &mut used, &mut shifts) {
        Some(shifts)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::distinct_mod;

    fn cross() -> Vec<Point> {
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ]
    }

    #[test]
    fn zero_lookahead_matches_plain_cyclic() {
        let r = rescheduled_cyclic(&cross(), &[768, 1024], 0);
        let plain = crate::linear::linear_cyclic(&cross(), &[768, 1024]);
        assert_eq!(r.banks, plain.banks);
    }

    #[test]
    fn keeps_five_banks_across_row_sizes() {
        // §2.3: "[7, 8] can keep the number of banks consistently to be
        // five in the case of the stencil window shown in Fig. 2."
        for w in [1018i64, 1020, 1022, 1024, 1025, 1027, 1030] {
            let r = rescheduled_cyclic(&cross(), &[768, w], DEFAULT_LOOKAHEAD);
            assert_eq!(r.banks, 5, "row size {w}");
        }
    }

    #[test]
    fn shifts_really_deconflict() {
        let r = rescheduled_cyclic(&cross(), &[768, 1024], DEFAULT_LOOKAHEAD);
        let flat = flatten_window(&cross(), &pitches(&[768, 1024]));
        let shifted: Vec<i64> = flat.iter().zip(&r.mapping).map(|(a, t)| a + t).collect();
        assert!(distinct_mod(&shifted, r.banks as i64));
        assert!(r
            .mapping
            .iter()
            .all(|&t| (0..=DEFAULT_LOOKAHEAD).contains(&t)));
    }

    #[test]
    fn needs_more_banks_when_lookahead_too_small() {
        // With lookahead 0 on a hostile row size, more banks are needed.
        let r0 = rescheduled_cyclic(&cross(), &[768, 1025], 0);
        let r3 = rescheduled_cyclic(&cross(), &[768, 1025], DEFAULT_LOOKAHEAD);
        assert!(r0.banks >= r3.banks);
        assert_eq!(r3.banks, 5);
    }
}
