//! Initiation-interval evaluation of banked designs.
//!
//! With single-read-port banks (one port of each dual-port memory is
//! reserved for off-chip refill, §2.3 of the paper), the sustained II of
//! a banked design equals the worst-case number of same-bank reads per
//! iteration. The "Original II" column of Table 4 is the degenerate
//! 1-bank case: `n` loads serialize to `n` cycles.

use stencil_polyhedral::Point;

use crate::conflict::max_bank_multiplicity;
use crate::flatten::{flatten_window, pitches, window_span};
use crate::report::{Method, PartitionResult};

/// The II sustained by linear cyclic banking with `banks` banks.
///
/// # Panics
///
/// Panics if `banks == 0`.
#[must_use]
pub fn achieved_ii_linear(window: &[Point], extents: &[i64], banks: usize) -> usize {
    assert!(banks > 0, "need at least one bank");
    let flat = flatten_window(window, &pitches(extents));
    max_bank_multiplicity(&flat, banks as i64)
}

/// The II sustained by affine cyclic banking `(α·h) mod banks`.
///
/// # Panics
///
/// Panics if `banks == 0` or `alpha` has the wrong dimensionality.
#[must_use]
pub fn achieved_ii_affine(window: &[Point], alpha: &[i64], banks: usize) -> usize {
    assert!(banks > 0, "need at least one bank");
    let dots: Vec<i64> = window
        .iter()
        .map(|f| {
            assert_eq!(f.dims(), alpha.len(), "alpha dimensionality mismatch");
            f.as_slice().iter().zip(alpha).map(|(&c, &a)| c * a).sum()
        })
        .collect();
    max_bank_multiplicity(&dots, banks as i64)
}

/// The original, unpartitioned design: one reuse buffer bank, so the
/// `n` loads of each iteration serialize — Table 4's "Original II".
///
/// # Panics
///
/// Panics if the window is empty.
#[must_use]
pub fn unpartitioned(window: &[Point], extents: &[i64]) -> PartitionResult {
    assert!(!window.is_empty(), "window must be non-empty");
    let flat = flatten_window(window, &pitches(extents));
    PartitionResult {
        method: Method::LinearCyclic,
        banks: 1,
        total_size: window_span(&flat),
        ii: window.len(),
        needs_divider: false,
        mapping: vec![1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross() -> Vec<Point> {
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ]
    }

    #[test]
    fn original_ii_equals_window_size() {
        let r = unpartitioned(&cross(), &[768, 1024]);
        assert_eq!(r.ii, 5);
        assert_eq!(r.banks, 1);
        assert_eq!(r.total_size, 2049);
    }

    #[test]
    fn linear_ii_matches_conflicts() {
        // 5 banks on a 1024-wide grid: ±1024 ≡ ±4 collide with ∓1 → II 2.
        assert_eq!(achieved_ii_linear(&cross(), &[768, 1024], 5), 2);
        // 6 banks deconflict (Fig. 5).
        assert_eq!(achieved_ii_linear(&cross(), &[768, 1024], 6), 1);
        // 1 bank: everything collides.
        assert_eq!(achieved_ii_linear(&cross(), &[768, 1024], 1), 5);
    }

    #[test]
    fn affine_ii_with_winning_alpha() {
        // α = (2, 1): {−2, −1, 0, 1, 2} distinct mod 5.
        assert_eq!(achieved_ii_affine(&cross(), &[2, 1], 5), 1);
        // α = (1, 1) collides: (−1,0)·α = −1 = (0,−1)·α.
        assert_eq!(achieved_ii_affine(&cross(), &[1, 1], 5), 2);
    }
}
