//! Property-based validation of the planner's guarantees over random
//! windows, including 1-D and 3-D grids.

use proptest::prelude::*;
use stencil_core::{
    verify_plan, MappingPolicy, MemorySystemPlan, ModuloSchedulePlan, ReuseAnalysis, StencilSpec,
};
use stencil_polyhedral::{Point, Polyhedron};

/// A random 3-D window of 2..=9 distinct offsets within radius 1.
fn window_3d() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::btree_set(((-1i64..=1), (-1i64..=1), (-1i64..=1)), 2..=9).prop_map(|set| {
        set.into_iter()
            .map(|(a, b, c)| Point::new(&[a, b, c]))
            .collect()
    })
}

fn spec_3d(window: &[Point], e: [i64; 3]) -> StencilSpec {
    let mut bounds = Vec::new();
    for d in 0..3 {
        let lo = window.iter().map(|f| f[d]).min().unwrap().min(0).abs();
        let hi = window.iter().map(|f| f[d]).max().unwrap().max(0);
        bounds.push((lo, e[d] - 1 - hi));
    }
    StencilSpec::new("random3d", Polyhedron::rect(&bounds), window.to_vec()).expect("valid spec")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn three_d_plans_are_optimal(
        window in window_3d(),
        e0 in 5i64..10, e1 in 5i64..10, e2 in 5i64..10,
    ) {
        let spec = spec_3d(&window, [e0, e1, e2]);
        let analysis = ReuseAnalysis::of(&spec).expect("analysis");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let report = verify_plan(&plan, &analysis);
        prop_assert!(report.is_optimal(), "{report}");
        prop_assert_eq!(plan.bank_count(), window.len() - 1);
        // Rectangular grids: linearity always binds.
        prop_assert!(analysis.linearity_holds());
    }

    #[test]
    fn fifo_sizes_shrink_with_the_grid(
        window in window_3d(),
        e in 6i64..10,
    ) {
        // Monotonicity: a strictly smaller grid cannot need bigger FIFOs.
        let big = MemorySystemPlan::generate(&spec_3d(&window, [e, e, e]))
            .expect("plan");
        let small = MemorySystemPlan::generate(&spec_3d(&window, [e - 1, e - 1, e - 1]))
            .expect("plan");
        for (b, s) in big.fifo_capacities().iter().zip(small.fifo_capacities()) {
            prop_assert!(s <= *b, "small {s} > big {b}");
        }
    }

    #[test]
    fn tradeoff_total_strictly_decreases_until_zero(
        window in window_3d(),
        e in 6i64..10,
    ) {
        let plan = MemorySystemPlan::generate(&spec_3d(&window, [e, e, e]))
            .expect("plan");
        let curve = plan.tradeoff_curve(window.len()).expect("curve");
        prop_assert_eq!(curve.last().expect("non-empty").total_buffer_size, 0);
        for w in curve.windows(2) {
            prop_assert!(w[1].total_buffer_size <= w[0].total_buffer_size);
            prop_assert_eq!(w[1].bank_count + 1, w[0].bank_count);
        }
    }

    #[test]
    fn modulo_schedule_always_feasible_on_boxes(
        window in window_3d(),
        e in 6i64..10,
    ) {
        let spec = spec_3d(&window, [e, e, e]);
        let analysis = ReuseAnalysis::of(&spec).expect("analysis");
        let m = ModuloSchedulePlan::try_from_analysis(&analysis, &MappingPolicy::default())
            .expect("boxes are rectangular");
        prop_assert_eq!(m.bank_count(), window.len() - 1);
        prop_assert_eq!(m.total_buffer_size(), analysis.total_distance());
        // Delays are the prefix sums of the bank lengths.
        let mut acc = 0;
        for (k, b) in m.banks().iter().enumerate() {
            acc += b.length;
            prop_assert_eq!(m.delays()[k + 1], acc);
        }
    }

    #[test]
    fn one_dimensional_windows(
        offs in prop::collection::btree_set(-4i64..=4, 2..=6),
        extent in 20i64..200,
    ) {
        let window: Vec<Point> = offs.iter().map(|&o| Point::new(&[o])).collect();
        let lo = offs.iter().min().unwrap().min(&0).abs();
        let hi = *offs.iter().max().unwrap().max(&0);
        let spec = StencilSpec::new(
            "random1d",
            Polyhedron::rect(&[(lo, extent - 1 - hi)]),
            window.clone(),
        ).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        // 1-D: each FIFO's capacity is the plain offset gap.
        let sorted: Vec<i64> = {
            let mut v: Vec<i64> = offs.iter().copied().collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v
        };
        let expected: Vec<u64> = sorted
            .windows(2)
            .map(|w| (w[0] - w[1]) as u64)
            .collect();
        prop_assert_eq!(plan.fifo_capacities(), expected);
        // Total = span between extreme offsets.
        let span = (sorted[0] - sorted[sorted.len() - 1]) as u64;
        prop_assert_eq!(plan.total_buffer_size(), span);
    }
}
