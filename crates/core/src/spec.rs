//! Stencil computation specifications — the planner's input, equivalent
//! to the source code + polyhedral extraction step of the paper's
//! automation flow (Fig. 11, left branch).

use serde::{Deserialize, Serialize};
use stencil_polyhedral::{input_domain, Point, Polyhedron};

use crate::error::PlanError;

/// A stencil computation over **one** data array: an iteration domain and
/// the set of constant access offsets (the stencil window).
///
/// This captures everything the paper's Definition 4 permits: accesses of
/// the form `A[i + f_x]` for constant offsets `f_x`, over an arbitrary
/// convex (possibly skewed) iteration domain. A kernel reading several
/// arrays is a collection of `StencilSpec`s sharing an iteration domain
/// (see [`crate::flow::StencilProgram`]); the paper builds one
/// independent memory system per array (§2.2).
///
/// # Examples
///
/// ```
/// use stencil_core::StencilSpec;
/// use stencil_polyhedral::{Point, Polyhedron};
///
/// // The DENOISE kernel of Fig. 1.
/// let spec = StencilSpec::new(
///     "denoise",
///     Polyhedron::rect(&[(1, 766), (1, 1022)]),
///     vec![
///         Point::new(&[-1, 0]),
///         Point::new(&[0, -1]),
///         Point::new(&[0, 0]),
///         Point::new(&[0, 1]),
///         Point::new(&[1, 0]),
///     ],
/// )?;
/// assert_eq!(spec.window_size(), 5);
/// # Ok::<(), stencil_core::PlanError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StencilSpec {
    name: String,
    array: String,
    iteration_domain: Polyhedron,
    offsets: Vec<Point>,
    element_bits: u32,
}

impl StencilSpec {
    /// Default data element width, in bits (single-precision float).
    pub const DEFAULT_ELEMENT_BITS: u32 = 32;

    /// Creates a specification for array `"A"` with 32-bit elements.
    ///
    /// # Errors
    ///
    /// See [`StencilSpec::with_element_bits`].
    pub fn new(
        name: impl Into<String>,
        iteration_domain: Polyhedron,
        offsets: Vec<Point>,
    ) -> Result<Self, PlanError> {
        Self::with_element_bits(name, iteration_domain, offsets, Self::DEFAULT_ELEMENT_BITS)
    }

    /// Creates a specification with an explicit element width.
    ///
    /// # Errors
    ///
    /// * [`PlanError::NoReferences`] if `offsets` is empty.
    /// * [`PlanError::DimensionMismatch`] if an offset's dimensionality
    ///   differs from the iteration domain's.
    /// * [`PlanError::DuplicateOffset`] if the window lists a point twice.
    ///
    /// # Panics
    ///
    /// Panics if `element_bits` is 0 or exceeds 64.
    pub fn with_element_bits(
        name: impl Into<String>,
        iteration_domain: Polyhedron,
        offsets: Vec<Point>,
        element_bits: u32,
    ) -> Result<Self, PlanError> {
        assert!(
            (1..=64).contains(&element_bits),
            "element width {element_bits} outside 1..=64 bits"
        );
        if offsets.is_empty() {
            return Err(PlanError::NoReferences);
        }
        for f in &offsets {
            if f.dims() != iteration_domain.dims() {
                return Err(PlanError::DimensionMismatch {
                    domain: iteration_domain.dims(),
                    offset: f.dims(),
                });
            }
        }
        for (i, a) in offsets.iter().enumerate() {
            if offsets[i + 1..].contains(a) {
                return Err(PlanError::DuplicateOffset {
                    offset: a.to_string(),
                });
            }
        }
        Ok(Self {
            name: name.into(),
            array: "A".to_owned(),
            iteration_domain,
            offsets,
            element_bits,
        })
    }

    /// Renames the accessed data array (cosmetic; used in reports).
    #[must_use]
    pub fn with_array_name(mut self, array: impl Into<String>) -> Self {
        self.array = array.into();
        self
    }

    /// The kernel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The accessed array's name.
    #[must_use]
    pub fn array(&self) -> &str {
        &self.array
    }

    /// The iteration domain `D` (Definition 1).
    #[must_use]
    pub fn iteration_domain(&self) -> &Polyhedron {
        &self.iteration_domain
    }

    /// The access offsets in user (declaration) order.
    #[must_use]
    pub fn offsets(&self) -> &[Point] {
        &self.offsets
    }

    /// Number of points in the stencil window (`n`, the number of array
    /// references).
    #[must_use]
    pub fn window_size(&self) -> usize {
        self.offsets.len()
    }

    /// Grid dimensionality.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.iteration_domain.dims()
    }

    /// Element width in bits.
    #[must_use]
    pub fn element_bits(&self) -> u32 {
        self.element_bits
    }

    /// The data domain `D_Ax` of the reference with user index `x`
    /// (Definition 5).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    #[must_use]
    pub fn data_domain(&self, x: usize) -> Polyhedron {
        self.iteration_domain.translated(&self.offsets[x])
    }

    /// The input data domain `D_A` (Definition 6): the convex cover of
    /// all per-reference data domains, streamed once per execution.
    #[must_use]
    pub fn input_domain(&self) -> Polyhedron {
        input_domain(&self.iteration_domain, &self.offsets)
    }

    /// The pipeline initiation interval of the *original* (unpartitioned)
    /// code, limited by memory port contention: with dual-port buffers
    /// one port is consumed by off-chip refill, so `n` loads on one
    /// remaining port serialize to `n` cycles (Table 4's "Original II").
    #[must_use]
    pub fn original_ii(&self) -> usize {
        self.window_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn denoise() -> StencilSpec {
        StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, 766), (1, 1022)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let s = denoise();
        assert_eq!(s.name(), "denoise");
        assert_eq!(s.array(), "A");
        assert_eq!(s.window_size(), 5);
        assert_eq!(s.dims(), 2);
        assert_eq!(s.element_bits(), 32);
        assert_eq!(s.original_ii(), 5);
    }

    #[test]
    fn rejects_empty_window() {
        let err = StencilSpec::new("x", Polyhedron::rect(&[(0, 1)]), vec![]).unwrap_err();
        assert_eq!(err, PlanError::NoReferences);
    }

    #[test]
    fn rejects_duplicate_offsets() {
        let err = StencilSpec::new(
            "x",
            Polyhedron::rect(&[(0, 9)]),
            vec![Point::new(&[0]), Point::new(&[1]), Point::new(&[0])],
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::DuplicateOffset { .. }));
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let err = StencilSpec::new(
            "x",
            Polyhedron::rect(&[(0, 9), (0, 9)]),
            vec![Point::new(&[0])],
        )
        .unwrap_err();
        assert_eq!(
            err,
            PlanError::DimensionMismatch {
                domain: 2,
                offset: 1
            }
        );
    }

    #[test]
    fn data_domain_matches_paper_example() {
        let s = denoise();
        // Reference A[i][j+1] (index 3): 1 <= i <= 766, 2 <= j <= 1023.
        let d = s.data_domain(3);
        assert!(d.contains(&Point::new(&[1, 2])));
        assert!(!d.contains(&Point::new(&[1, 1])));
    }

    #[test]
    fn input_domain_size() {
        assert_eq!(denoise().input_domain().count().unwrap(), 768 * 1024);
    }

    #[test]
    #[should_panic(expected = "outside 1..=64")]
    fn zero_element_bits_rejected() {
        let _ = StencilSpec::with_element_bits(
            "x",
            Polyhedron::rect(&[(0, 3)]),
            vec![Point::new(&[0])],
            0,
        );
    }

    #[test]
    fn array_rename() {
        let s = denoise().with_array_name("u");
        assert_eq!(s.array(), "u");
    }
}
