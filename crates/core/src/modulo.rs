//! The paper's §6 future-work alternative, implemented: **non-uniform
//! banks under modulo scheduling**.
//!
//! "Our data streaming method may not be the only solution for utilizing
//! the non-uniform reuse buffers. A modified modulo scheduling extended
//! from conventional uniform memory partitioning is also a good
//! candidate."
//!
//! Here each reuse buffer keeps its minimal non-uniform size, but
//! instead of autonomous splitters/filters a **centralized controller**
//! drives every bank as a delay line: bank `k` delays the input stream
//! by the accumulated reuse distance `D_k = Σ_{j<k} L_j`, and the
//! controller computes each port's validity from a global iteration
//! counter.
//!
//! The catch — and the reason the paper chose streaming — is that fixed
//! delays require **constant** reuse distances: on a skewed grid
//! (Fig. 9) the distances change at run time and the static schedule is
//! wrong. [`ModuloSchedulePlan::try_from_analysis`] therefore rejects
//! non-rectangular iteration domains, which this module detects exactly.

use serde::{Deserialize, Serialize};
use stencil_polyhedral::Point;

use crate::analysis::ReuseAnalysis;
use crate::error::PlanError;
use crate::mapping::{MappingPolicy, StorageKind};

/// One delay-line bank of the modulo-scheduled design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayBank {
    /// Delay-line length (the adjacent maximum reuse distance).
    pub length: u64,
    /// Physical storage.
    pub storage: StorageKind,
}

/// A centralized, modulo-scheduled design over non-uniform banks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuloSchedulePlan {
    name: String,
    element_bits: u32,
    banks: Vec<DelayBank>,
    /// Port `k` reads the stream delayed by `delays[k]` elements
    /// (filter order; delay 0 is the live stream).
    delays: Vec<u64>,
    offsets: Vec<Point>,
}

impl ModuloSchedulePlan {
    /// Builds the modulo-scheduled design, or explains why the schedule
    /// cannot be static.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Poly`]-free but domain-shaped failure:
    /// [`PlanError::EmptyIterationDomain`] is impossible here (the
    /// analysis validated it); the interesting failure is
    /// `NonRectangular`, reported as [`PlanError::DuplicateOffset`]-free
    /// custom variant — see [`PlanError::NonConstantReuse`].
    pub fn try_from_analysis(
        analysis: &ReuseAnalysis,
        policy: &MappingPolicy,
    ) -> Result<Self, PlanError> {
        // Static delays require constant reuse distances: the adjacent
        // max distances must sum exactly to the end-to-end distance
        // (linearity binding) AND the per-pair minimum must equal the
        // maximum. On rectangular grids both hold; on skewed grids the
        // distances vary and a static delay line misaligns.
        if !is_rectangular(analysis) {
            return Err(PlanError::NonConstantReuse {
                kernel: analysis.spec().name().to_owned(),
            });
        }
        let mut banks = Vec::new();
        let mut delays = vec![0u64];
        let mut acc = 0u64;
        for &len in analysis.adjacent_distances() {
            banks.push(DelayBank {
                length: len,
                storage: policy.assign(len),
            });
            acc += len;
            delays.push(acc);
        }
        Ok(Self {
            name: analysis.spec().name().to_owned(),
            element_bits: analysis.spec().element_bits(),
            banks,
            delays,
            offsets: analysis.sorted_refs().offsets().to_vec(),
        })
    }

    /// Assembles a plan from explicit parts (for tests and tooling that
    /// need to build hypothetical schedules; normal flow uses
    /// [`ModuloSchedulePlan::try_from_analysis`]).
    #[must_use]
    pub fn from_parts(
        name: impl Into<String>,
        element_bits: u32,
        banks: Vec<DelayBank>,
        offsets: Vec<Point>,
    ) -> Self {
        let mut delays = vec![0u64];
        let mut acc = 0;
        for b in &banks {
            acc += b.length;
            delays.push(acc);
        }
        Self {
            name: name.into(),
            element_bits,
            banks,
            delays,
            offsets,
        }
    }

    /// The kernel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element width in bits.
    #[must_use]
    pub fn element_bits(&self) -> u32 {
        self.element_bits
    }

    /// The delay-line banks in chain order.
    #[must_use]
    pub fn banks(&self) -> &[DelayBank] {
        &self.banks
    }

    /// Per-port stream delays, filter order.
    #[must_use]
    pub fn delays(&self) -> &[u64] {
        &self.delays
    }

    /// Access offsets in filter order.
    #[must_use]
    pub fn offsets(&self) -> &[Point] {
        &self.offsets
    }

    /// Number of banks (equals the streaming design's `n - 1`).
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Total buffer size — identical to the streaming design's.
    #[must_use]
    pub fn total_buffer_size(&self) -> u64 {
        self.banks.iter().map(|b| b.length).sum()
    }
}

/// True if the iteration domain is an axis-aligned box (constant reuse
/// distances everywhere).
fn is_rectangular(analysis: &ReuseAnalysis) -> bool {
    let idx = analysis.iteration_index();
    let Some(bb) = idx.bounding_box() else {
        return false;
    };
    let volume: u64 = bb.iter().map(|&(lo, hi)| (hi - lo + 1) as u64).product();
    volume == idx.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StencilSpec;
    use stencil_polyhedral::{Constraint, Polyhedron};

    fn cross() -> Vec<Point> {
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ]
    }

    #[test]
    fn rectangular_grid_schedules_statically() {
        let spec =
            StencilSpec::new("denoise", Polyhedron::rect(&[(1, 766), (1, 1022)]), cross()).unwrap();
        let analysis = ReuseAnalysis::of(&spec).unwrap();
        let plan =
            ModuloSchedulePlan::try_from_analysis(&analysis, &MappingPolicy::default()).unwrap();
        assert_eq!(plan.bank_count(), 4);
        assert_eq!(plan.total_buffer_size(), 2048);
        assert_eq!(plan.delays(), &[0, 1023, 1024, 1025, 2048]);
        assert_eq!(plan.banks()[0].length, 1023);
        assert_eq!(plan.banks()[0].storage, StorageKind::BlockRam);
        assert_eq!(plan.banks()[1].storage, StorageKind::Register);
    }

    #[test]
    fn skewed_grid_rejected() {
        // Fig. 9's antidiagonal domain: reuse distances change at run
        // time, so the static schedule is impossible.
        let iter = Polyhedron::new(
            2,
            vec![
                Constraint::lower_bound(2, 1, 1),
                Constraint::upper_bound(2, 1, 12),
                Constraint::new(&[1, -1], -1),
                Constraint::new(&[-1, 1], 20),
            ],
        );
        let spec = StencilSpec::new("skew", iter, cross()).unwrap();
        let analysis = ReuseAnalysis::of(&spec).unwrap();
        let err = ModuloSchedulePlan::try_from_analysis(&analysis, &MappingPolicy::default())
            .unwrap_err();
        assert!(matches!(err, PlanError::NonConstantReuse { .. }));
        assert!(err.to_string().contains("skew"));
    }

    #[test]
    fn delays_accumulate_bank_lengths() {
        let spec = StencilSpec::new(
            "heat1d",
            Polyhedron::rect(&[(1, 100)]),
            vec![Point::new(&[-1]), Point::new(&[0]), Point::new(&[1])],
        )
        .unwrap();
        let analysis = ReuseAnalysis::of(&spec).unwrap();
        let plan =
            ModuloSchedulePlan::try_from_analysis(&analysis, &MappingPolicy::default()).unwrap();
        assert_eq!(plan.delays(), &[0, 1, 2]);
        assert_eq!(plan.offsets().len(), 3);
        assert_eq!(plan.element_bits(), 32);
        assert_eq!(plan.name(), "heat1d");
    }
}
