//! Design automation flow (§4, Fig. 11 of the paper): from a multi-array
//! stencil program to a complete accelerator design.
//!
//! The flow's left branch (polyhedral analysis → microarchitecture
//! generation) is fully implemented; the right branch (kernel extraction
//! → HLS) is represented by a [`KernelSignature`] that downstream crates
//! (the simulator's pipelined-kernel model and the FPGA estimator)
//! consume in place of Vivado-HLS-generated RTL.

use std::fmt;

use serde::{Deserialize, Serialize};
use stencil_polyhedral::{Point, Polyhedron};

use crate::error::PlanError;
use crate::mapping::MappingPolicy;
use crate::plan::MemorySystemPlan;
use crate::spec::StencilSpec;
use crate::ReuseAnalysis;

/// The accesses of one data array within a stencil program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayAccesses {
    /// Array name (e.g. `"A"`).
    pub array: String,
    /// Stencil window offsets for this array.
    pub offsets: Vec<Point>,
    /// Element width in bits.
    pub element_bits: u32,
}

impl ArrayAccesses {
    /// Creates the access description with 32-bit elements.
    #[must_use]
    pub fn new(array: impl Into<String>, offsets: Vec<Point>) -> Self {
        Self {
            array: array.into(),
            offsets,
            element_bits: StencilSpec::DEFAULT_ELEMENT_BITS,
        }
    }
}

/// A stencil program: one loop nest reading any number of data arrays
/// with stencil accesses (Fig. 1 reads only `A`; RICIAN-style kernels
/// read two).
///
/// Since there are no reuse opportunities *between* different arrays,
/// each array receives an independent memory system (§2.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StencilProgram {
    /// Kernel name.
    pub name: String,
    /// The shared iteration domain of the loop nest.
    pub iteration_domain: Polyhedron,
    /// Per-array stencil accesses.
    pub arrays: Vec<ArrayAccesses>,
}

impl StencilProgram {
    /// Creates a single-array program — the common case.
    #[must_use]
    pub fn single(spec: &StencilSpec) -> Self {
        Self {
            name: spec.name().to_owned(),
            iteration_domain: spec.iteration_domain().clone(),
            arrays: vec![ArrayAccesses {
                array: spec.array().to_owned(),
                offsets: spec.offsets().to_vec(),
                element_bits: spec.element_bits(),
            }],
        }
    }
}

/// The computation kernel's interface after all memory accesses are
/// offloaded to the memory systems (the transformed code of Fig. 4): a
/// fully pipelined datapath that consumes one element per port per cycle
/// and emits one output per cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelSignature {
    /// Kernel name.
    pub name: String,
    /// One entry per data port: `(array, offset display form)`.
    pub ports: Vec<(String, String)>,
    /// The initiation interval the kernel is compiled for (always 1).
    pub target_ii: usize,
}

/// A complete accelerator: one memory system per array plus the
/// pipelined computation kernel they feed (Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    /// Kernel name.
    pub name: String,
    /// One memory system per data array.
    pub memory_systems: Vec<MemorySystemPlan>,
    /// The kernel interface.
    pub kernel: KernelSignature,
}

impl Accelerator {
    /// Total number of kernel data ports across all arrays.
    #[must_use]
    pub fn port_count(&self) -> usize {
        self.memory_systems
            .iter()
            .map(MemorySystemPlan::port_count)
            .sum()
    }

    /// Total reuse-buffer banks across all memory systems.
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.memory_systems
            .iter()
            .map(MemorySystemPlan::bank_count)
            .sum()
    }

    /// Total reuse-buffer size across all memory systems.
    #[must_use]
    pub fn total_buffer_size(&self) -> u64 {
        self.memory_systems
            .iter()
            .map(MemorySystemPlan::total_buffer_size)
            .sum()
    }
}

impl fmt::Display for Accelerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "accelerator `{}`: {} ports, {} banks, buffer {} elements",
            self.name,
            self.port_count(),
            self.bank_count(),
            self.total_buffer_size()
        )?;
        for ms in &self.memory_systems {
            write!(f, "{ms}")?;
        }
        Ok(())
    }
}

/// Runs the automation flow on a program: polyhedral analysis, reference
/// sorting, FIFO sizing, and storage mapping for every array, plus kernel
/// interface extraction.
///
/// # Errors
///
/// Propagates specification and analysis errors ([`PlanError`]).
///
/// # Examples
///
/// ```
/// use stencil_core::{compile, StencilProgram, StencilSpec};
/// use stencil_polyhedral::{Point, Polyhedron};
///
/// let spec = StencilSpec::new(
///     "denoise",
///     Polyhedron::rect(&[(1, 766), (1, 1022)]),
///     vec![
///         Point::new(&[-1, 0]),
///         Point::new(&[0, -1]),
///         Point::new(&[0, 0]),
///         Point::new(&[0, 1]),
///         Point::new(&[1, 0]),
///     ],
/// )?;
/// let acc = compile(&StencilProgram::single(&spec))?;
/// assert_eq!(acc.bank_count(), 4);
/// assert_eq!(acc.kernel.target_ii, 1);
/// # Ok::<(), stencil_core::PlanError>(())
/// ```
pub fn compile(program: &StencilProgram) -> Result<Accelerator, PlanError> {
    compile_with_policy(program, &MappingPolicy::default())
}

/// [`compile`] with an explicit storage-mapping policy.
///
/// # Errors
///
/// Propagates specification and analysis errors ([`PlanError`]).
pub fn compile_with_policy(
    program: &StencilProgram,
    policy: &MappingPolicy,
) -> Result<Accelerator, PlanError> {
    let mut memory_systems = Vec::with_capacity(program.arrays.len());
    let mut ports = Vec::new();
    for acc in &program.arrays {
        let spec = StencilSpec::with_element_bits(
            program.name.clone(),
            program.iteration_domain.clone(),
            acc.offsets.clone(),
            acc.element_bits,
        )?
        .with_array_name(acc.array.clone());
        let analysis = ReuseAnalysis::of(&spec)?;
        let plan = MemorySystemPlan::from_analysis(&analysis, policy);
        for flt in plan.filters() {
            ports.push((acc.array.clone(), flt.offset.to_string()));
        }
        memory_systems.push(plan);
    }
    Ok(Accelerator {
        name: program.name.clone(),
        memory_systems,
        kernel: KernelSignature {
            name: program.name.clone(),
            ports,
            target_ii: 1,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross() -> Vec<Point> {
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ]
    }

    #[test]
    fn single_array_flow() {
        let spec =
            StencilSpec::new("denoise", Polyhedron::rect(&[(1, 766), (1, 1022)]), cross()).unwrap();
        let acc = compile(&StencilProgram::single(&spec)).unwrap();
        assert_eq!(acc.memory_systems.len(), 1);
        assert_eq!(acc.port_count(), 5);
        assert_eq!(acc.bank_count(), 4);
        assert_eq!(acc.total_buffer_size(), 2048);
        assert_eq!(acc.kernel.ports.len(), 5);
        assert_eq!(acc.kernel.ports[0].0, "A");
    }

    #[test]
    fn multi_array_flow_builds_independent_systems() {
        // RICIAN-style: array `g` with a 4-point window and array `f` with
        // a single central reference.
        let program = StencilProgram {
            name: "rician".to_owned(),
            iteration_domain: Polyhedron::rect(&[(1, 98), (1, 98)]),
            arrays: vec![
                ArrayAccesses::new(
                    "g",
                    vec![
                        Point::new(&[-1, 0]),
                        Point::new(&[0, -1]),
                        Point::new(&[0, 0]),
                        Point::new(&[1, 0]),
                    ],
                ),
                ArrayAccesses::new("f", vec![Point::new(&[0, 0])]),
            ],
        };
        let acc = compile(&program).unwrap();
        assert_eq!(acc.memory_systems.len(), 2);
        assert_eq!(acc.memory_systems[0].bank_count(), 3);
        assert_eq!(acc.memory_systems[1].bank_count(), 0);
        assert_eq!(acc.port_count(), 5);
        let s = acc.to_string();
        assert!(s.contains("accelerator `rician`"), "{s}");
    }

    #[test]
    fn errors_propagate() {
        let program = StencilProgram {
            name: "bad".to_owned(),
            iteration_domain: Polyhedron::rect(&[(0, 9)]),
            arrays: vec![ArrayAccesses::new("A", vec![])],
        };
        assert_eq!(compile(&program).unwrap_err(), PlanError::NoReferences);
    }
}
