//! Bandwidth/memory tradeoff (Appendix 9.4, Figs. 14–15 of the paper).
//!
//! When more off-chip bandwidth is available, the chain can be *broken at
//! the largest reuse buffer*: the FIFO is deleted and its consumer is fed
//! by an additional off-chip stream, trading one stream of bandwidth for
//! the largest remaining buffer. Repeating this yields a gracefully
//! degrading design curve — and unlike uniform partitioning, the design
//! structure (and its per-pair optimality) is preserved at every point.

use serde::{Deserialize, Serialize};

use crate::error::PlanError;
use crate::plan::{Feed, MemorySystemPlan};

/// One point on the bandwidth/memory design curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Off-chip accesses consumed per cycle.
    pub offchip_streams: usize,
    /// Total on-chip reuse-buffer size, in data elements.
    pub total_buffer_size: u64,
    /// Remaining reuse-buffer banks.
    pub bank_count: usize,
}

impl MemorySystemPlan {
    /// Returns a plan that consumes `streams` off-chip accesses per cycle
    /// by breaking the chain at the `streams - 1` largest reuse FIFOs
    /// (Fig. 14).
    ///
    /// `streams = 1` returns the plan unchanged; `streams = n` eliminates
    /// every reuse buffer (no on-chip memory, Appendix 9.4's extreme
    /// case).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::TooManyStreams`] if `streams` is 0 or exceeds
    /// the number of references.
    ///
    /// # Examples
    ///
    /// ```
    /// use stencil_core::{MemorySystemPlan, StencilSpec};
    /// use stencil_polyhedral::{Point, Polyhedron};
    ///
    /// let spec = StencilSpec::new(
    ///     "denoise",
    ///     Polyhedron::rect(&[(1, 766), (1, 1022)]),
    ///     vec![
    ///         Point::new(&[-1, 0]),
    ///         Point::new(&[0, -1]),
    ///         Point::new(&[0, 0]),
    ///         Point::new(&[0, 1]),
    ///         Point::new(&[1, 0]),
    ///     ],
    /// )?;
    /// let plan = MemorySystemPlan::generate(&spec)?;
    /// // Spending one more stream removes one 1023-deep line buffer.
    /// let traded = plan.with_offchip_streams(2)?;
    /// assert_eq!(traded.total_buffer_size(), 1025);
    /// assert_eq!(traded.bank_count(), 3);
    /// # Ok::<(), stencil_core::PlanError>(())
    /// ```
    pub fn with_offchip_streams(&self, streams: usize) -> Result<Self, PlanError> {
        let n = self.port_count();
        if streams == 0 || streams > n {
            return Err(PlanError::TooManyStreams {
                requested: streams,
                max: n,
            });
        }
        let mut out = self.clone();
        let current = out.offchip_streams();
        if streams <= current {
            return Ok(out);
        }
        for _ in current..streams {
            // Break at the largest remaining FIFO; ties break toward the
            // head of the chain (deterministic).
            let victim = out
                .feeds()
                .iter()
                .enumerate()
                .filter_map(|(k, f)| f.capacity().map(|c| (k, c)))
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(k, _)| k)
                .expect("streams <= n guarantees a FIFO remains");
            out.feeds_mut()[victim] = Feed::Offchip;
        }
        Ok(out)
    }

    /// Sweeps the full bandwidth/memory design curve from 1 stream up to
    /// `max_streams` (clamped to `n`), reproducing Fig. 15.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::TooManyStreams`] only if `max_streams` is 0.
    pub fn tradeoff_curve(&self, max_streams: usize) -> Result<Vec<TradeoffPoint>, PlanError> {
        if max_streams == 0 {
            return Err(PlanError::TooManyStreams {
                requested: 0,
                max: self.port_count(),
            });
        }
        let top = max_streams.min(self.port_count());
        (1..=top)
            .map(|s| {
                let p = self.with_offchip_streams(s)?;
                Ok(TradeoffPoint {
                    offchip_streams: s,
                    total_buffer_size: p.total_buffer_size(),
                    bank_count: p.bank_count(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StencilSpec;
    use stencil_polyhedral::{Point, Polyhedron};

    fn denoise_plan() -> MemorySystemPlan {
        let spec = StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, 766), (1, 1022)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap();
        MemorySystemPlan::generate(&spec).unwrap()
    }

    #[test]
    fn breaking_removes_largest_first() {
        let p = denoise_plan();
        assert_eq!(p.with_offchip_streams(1).unwrap(), p);
        let p2 = p.with_offchip_streams(2).unwrap();
        assert_eq!(p2.fifo_capacities(), vec![1, 1, 1023]);
        let p3 = p.with_offchip_streams(3).unwrap();
        assert_eq!(p3.fifo_capacities(), vec![1, 1]);
        let p5 = p.with_offchip_streams(5).unwrap();
        assert!(p5.fifo_capacities().is_empty());
        assert_eq!(p5.total_buffer_size(), 0);
        assert_eq!(p5.offchip_streams(), 5);
    }

    #[test]
    fn curve_is_monotone_decreasing() {
        let curve = denoise_plan().tradeoff_curve(5).unwrap();
        assert_eq!(curve.len(), 5);
        assert_eq!(curve[0].total_buffer_size, 2048);
        assert_eq!(curve[4].total_buffer_size, 0);
        for w in curve.windows(2) {
            assert!(w[1].total_buffer_size <= w[0].total_buffer_size);
            assert_eq!(w[1].offchip_streams, w[0].offchip_streams + 1);
        }
    }

    #[test]
    fn curve_clamps_to_window_size() {
        let curve = denoise_plan().tradeoff_curve(99).unwrap();
        assert_eq!(curve.len(), 5);
    }

    #[test]
    fn invalid_stream_counts_rejected() {
        let p = denoise_plan();
        assert!(matches!(
            p.with_offchip_streams(0),
            Err(PlanError::TooManyStreams { requested: 0, .. })
        ));
        assert!(matches!(
            p.with_offchip_streams(6),
            Err(PlanError::TooManyStreams {
                requested: 6,
                max: 5
            })
        ));
        assert!(p.tradeoff_curve(0).is_err());
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Two equal largest buffers: the one earlier in the chain goes
        // first.
        let p = denoise_plan();
        let p2 = p.with_offchip_streams(2).unwrap();
        // FIFO_0 (position 1 in feeds) was removed, not FIFO_3.
        assert!(p2.feeds()[1].is_offchip());
        assert!(!p2.feeds()[4].is_offchip());
    }
}
