//! Reference ordering: mapping array references to data filters.
//!
//! Deadlock-free condition 1 (Eq. (1) of the paper) requires that filters
//! are assigned in strictly **descending lexicographic order** of their
//! data access offsets, so a data element reaches references in the order
//! they need it (earliest access first).

use serde::{Deserialize, Serialize};
use stencil_polyhedral::{lex_cmp, Point};

/// The filter assignment of a stencil window: references sorted into
/// descending lexicographic offset order, remembering each one's index in
/// the user's source order.
///
/// # Examples
///
/// ```
/// use stencil_core::SortedRefs;
/// use stencil_polyhedral::Point;
///
/// let sorted = SortedRefs::from_offsets(&[
///     Point::new(&[-1, 0]), // user ref 0: A[i-1][j]
///     Point::new(&[0, 0]),  // user ref 1: A[i][j]
///     Point::new(&[1, 0]),  // user ref 2: A[i+1][j]
/// ]);
/// assert_eq!(sorted.offset(0), Point::new(&[1, 0])); // filter 0 = earliest
/// assert_eq!(sorted.user_index(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortedRefs {
    offsets: Vec<Point>,
    user_indices: Vec<usize>,
}

impl SortedRefs {
    /// Sorts the given offsets into filter order.
    ///
    /// # Panics
    ///
    /// Panics if offsets have inconsistent dimensionality.
    #[must_use]
    pub fn from_offsets(offsets: &[Point]) -> Self {
        let mut order: Vec<usize> = (0..offsets.len()).collect();
        order.sort_by(|&a, &b| lex_cmp(&offsets[b], &offsets[a]));
        Self {
            offsets: order.iter().map(|&k| offsets[k]).collect(),
            user_indices: order,
        }
    }

    /// Number of references (`n`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True if the window is empty (never the case for validated specs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The offset served by filter `k` (filter 0 is the earliest access).
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    #[must_use]
    pub fn offset(&self, k: usize) -> Point {
        self.offsets[k]
    }

    /// All offsets in filter order.
    #[must_use]
    pub fn offsets(&self) -> &[Point] {
        &self.offsets
    }

    /// The source-order index of the reference served by filter `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    #[must_use]
    pub fn user_index(&self, k: usize) -> usize {
        self.user_indices[k]
    }

    /// The filter serving the reference with source-order index `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not a valid source index.
    #[must_use]
    pub fn filter_of(&self, x: usize) -> usize {
        self.user_indices
            .iter()
            .position(|&u| u == x)
            .expect("source index out of range")
    }

    /// Verifies Eq. (1): offsets are strictly descending, which holds iff
    /// the original offsets were pairwise distinct.
    #[must_use]
    pub fn is_strictly_descending(&self) -> bool {
        self.offsets
            .windows(2)
            .all(|w| lex_cmp(&w[0], &w[1]) == std::cmp::Ordering::Greater)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denoise_filter_order_matches_fig7() {
        // Fig. 7 maps filters 0..4 to A[i+1][j], A[i][j+1], A[i][j],
        // A[i][j-1], A[i-1][j].
        let user = [
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ];
        let s = SortedRefs::from_offsets(&user);
        assert_eq!(
            s.offsets(),
            &[
                Point::new(&[1, 0]),
                Point::new(&[0, 1]),
                Point::new(&[0, 0]),
                Point::new(&[0, -1]),
                Point::new(&[-1, 0]),
            ]
        );
        assert_eq!(s.user_index(0), 4);
        assert_eq!(s.user_index(4), 0);
        assert!(s.is_strictly_descending());
    }

    #[test]
    fn filter_of_inverts_user_index() {
        let user = [
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
            Point::new(&[0, 0]),
        ];
        let s = SortedRefs::from_offsets(&user);
        for x in 0..user.len() {
            assert_eq!(s.user_index(s.filter_of(x)), x);
        }
    }

    #[test]
    fn duplicates_break_strictness() {
        let s = SortedRefs::from_offsets(&[Point::new(&[0, 0]), Point::new(&[0, 0])]);
        assert!(!s.is_strictly_descending());
    }

    #[test]
    fn singleton() {
        let s = SortedRefs::from_offsets(&[Point::new(&[2, -3])]);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(s.is_strictly_descending());
    }

    #[test]
    fn three_dimensional_order() {
        let s = SortedRefs::from_offsets(&[
            Point::new(&[0, 0, 1]),
            Point::new(&[0, 1, -1]),
            Point::new(&[1, -1, 0]),
        ]);
        assert_eq!(s.offset(0), Point::new(&[1, -1, 0]));
        assert_eq!(s.offset(1), Point::new(&[0, 1, -1]));
        assert_eq!(s.offset(2), Point::new(&[0, 0, 1]));
    }
}
