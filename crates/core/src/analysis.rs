//! Reuse analysis of a stencil specification: everything the
//! microarchitecture generator needs, computed once.
//!
//! This is the "polyhedral analysis" stage of the paper's automation flow
//! (Fig. 11): data domains of each reference and the maximum reuse
//! distances of each pair of adjacent references in filter order.

use stencil_polyhedral::{max_reuse_distance, reuse_vector, DomainIndex, Point, Polyhedron};

use crate::error::PlanError;
use crate::sort::SortedRefs;
use crate::spec::StencilSpec;

/// The complete reuse analysis of one stencil array.
///
/// Owns the lex-rank indices of the input data domain and every
/// per-reference data domain; these are shared by the planner, the
/// optimality verifier, and the cycle-accurate simulator.
///
/// # Examples
///
/// ```
/// use stencil_core::{ReuseAnalysis, StencilSpec};
/// use stencil_polyhedral::{Point, Polyhedron};
///
/// let spec = StencilSpec::new(
///     "denoise",
///     Polyhedron::rect(&[(1, 766), (1, 1022)]),
///     vec![
///         Point::new(&[-1, 0]),
///         Point::new(&[0, -1]),
///         Point::new(&[0, 0]),
///         Point::new(&[0, 1]),
///         Point::new(&[1, 0]),
///     ],
/// )?;
/// let analysis = ReuseAnalysis::of(&spec)?;
/// assert_eq!(analysis.adjacent_distances(), &[1023, 1, 1, 1023]);
/// assert_eq!(analysis.total_distance(), 2048);
/// # Ok::<(), stencil_core::PlanError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReuseAnalysis {
    spec: StencilSpec,
    sorted: SortedRefs,
    input_domain: Polyhedron,
    input_index: DomainIndex,
    iteration_index: DomainIndex,
    filter_domains: Vec<Polyhedron>,
    filter_indices: Vec<DomainIndex>,
    adjacent_distances: Vec<u64>,
    total_distance: u64,
}

impl ReuseAnalysis {
    /// Analyzes a specification.
    ///
    /// # Errors
    ///
    /// * [`PlanError::EmptyIterationDomain`] if the iteration domain has
    ///   no points.
    /// * [`PlanError::Poly`] if a domain is unbounded.
    pub fn of(spec: &StencilSpec) -> Result<Self, PlanError> {
        let sorted = SortedRefs::from_offsets(spec.offsets());
        let iteration_index = spec.iteration_domain().index()?;
        if iteration_index.is_empty() {
            return Err(PlanError::EmptyIterationDomain);
        }
        let input_domain = spec.input_domain();
        let input_index = input_domain.index()?;

        let n = sorted.len();
        let mut filter_domains = Vec::with_capacity(n);
        let mut filter_indices = Vec::with_capacity(n);
        for k in 0..n {
            let dom = spec.iteration_domain().translated(&sorted.offset(k));
            filter_indices.push(dom.index()?);
            filter_domains.push(dom);
        }

        // FIFO_k capacity: max reuse distance between adjacent references
        // A_k (earlier) and A_{k+1} (later), evaluated over the later
        // reference's data domain (see stencil_polyhedral::max_reuse_distance).
        let mut adjacent_distances = Vec::with_capacity(n.saturating_sub(1));
        for k in 0..n.saturating_sub(1) {
            let r = reuse_vector(&sorted.offset(k), &sorted.offset(k + 1));
            let d = max_reuse_distance(&input_index, &filter_indices[k + 1], &r)?;
            adjacent_distances.push(d);
        }

        let total_distance = if n >= 2 {
            let r = reuse_vector(&sorted.offset(0), &sorted.offset(n - 1));
            max_reuse_distance(&input_index, &filter_indices[n - 1], &r)?
        } else {
            0
        };

        Ok(Self {
            spec: spec.clone(),
            sorted,
            input_domain,
            input_index,
            iteration_index,
            filter_domains,
            filter_indices,
            adjacent_distances,
            total_distance,
        })
    }

    /// The analyzed specification.
    #[must_use]
    pub fn spec(&self) -> &StencilSpec {
        &self.spec
    }

    /// The filter-order reference assignment.
    #[must_use]
    pub fn sorted_refs(&self) -> &SortedRefs {
        &self.sorted
    }

    /// Number of array references (`n`).
    #[must_use]
    pub fn window_size(&self) -> usize {
        self.sorted.len()
    }

    /// The input data domain `D_A`.
    #[must_use]
    pub fn input_domain(&self) -> &Polyhedron {
        &self.input_domain
    }

    /// Lex-rank index over `D_A`.
    #[must_use]
    pub fn input_index(&self) -> &DomainIndex {
        &self.input_index
    }

    /// Lex-rank index over the iteration domain `D`.
    #[must_use]
    pub fn iteration_index(&self) -> &DomainIndex {
        &self.iteration_index
    }

    /// The data domain of the reference served by filter `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn filter_domain(&self, k: usize) -> &Polyhedron {
        &self.filter_domains[k]
    }

    /// Lex-rank index over [`Self::filter_domain`].
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn filter_index(&self, k: usize) -> &DomainIndex {
        &self.filter_indices[k]
    }

    /// The access offset served by filter `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn filter_offset(&self, k: usize) -> Point {
        self.sorted.offset(k)
    }

    /// Maximum reuse distances between adjacent filter pairs — the
    /// non-uniform FIFO capacities (`n - 1` entries).
    #[must_use]
    pub fn adjacent_distances(&self) -> &[u64] {
        &self.adjacent_distances
    }

    /// Maximum reuse distance between the earliest and latest reference —
    /// the theoretical minimum total reuse buffer size (§2.3).
    #[must_use]
    pub fn total_distance(&self) -> u64 {
        self.total_distance
    }

    /// Sum of the per-FIFO capacities. Equal to
    /// [`Self::total_distance`] whenever the linearity property
    /// (Property 3) holds — always on rectangular grids; on skewed grids
    /// individual worst cases may not align, making the sum a (still
    /// minimal per-FIFO) upper bound.
    #[must_use]
    pub fn sum_of_distances(&self) -> u64 {
        self.adjacent_distances.iter().sum()
    }

    /// True if Property 3 (linearity of maximum reuse distances) held
    /// exactly for this domain.
    #[must_use]
    pub fn linearity_holds(&self) -> bool {
        self.sum_of_distances() == self.total_distance
    }

    /// Number of loop iterations (outputs produced per execution).
    #[must_use]
    pub fn iteration_count(&self) -> u64 {
        self.iteration_index.len()
    }

    /// Number of input elements streamed from off-chip per execution.
    #[must_use]
    pub fn input_count(&self) -> u64 {
        self.input_index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_polyhedral::Constraint;

    fn denoise() -> StencilSpec {
        StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, 766), (1, 1022)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn denoise_matches_table2() {
        let a = ReuseAnalysis::of(&denoise()).unwrap();
        assert_eq!(a.adjacent_distances(), &[1023, 1, 1, 1023]);
        assert_eq!(a.total_distance(), 2048);
        assert!(a.linearity_holds());
        assert_eq!(a.window_size(), 5);
        assert_eq!(a.iteration_count(), 766 * 1022);
        assert_eq!(a.input_count(), 768 * 1024);
    }

    #[test]
    fn single_reference_has_no_fifos() {
        let spec = StencilSpec::new(
            "copy",
            Polyhedron::rect(&[(0, 9), (0, 9)]),
            vec![Point::new(&[0, 0])],
        )
        .unwrap();
        let a = ReuseAnalysis::of(&spec).unwrap();
        assert!(a.adjacent_distances().is_empty());
        assert_eq!(a.total_distance(), 0);
        assert!(a.linearity_holds());
    }

    #[test]
    fn empty_iteration_domain_rejected() {
        let spec =
            StencilSpec::new("empty", Polyhedron::rect(&[(5, 2)]), vec![Point::new(&[0])]).unwrap();
        assert_eq!(
            ReuseAnalysis::of(&spec).unwrap_err(),
            PlanError::EmptyIterationDomain
        );
    }

    #[test]
    fn filter_domains_are_translates() {
        let a = ReuseAnalysis::of(&denoise()).unwrap();
        // Filter 0 serves A[i+1][j]: rows 2..=767.
        assert!(a.filter_domain(0).contains(&Point::new(&[2, 1])));
        assert!(!a.filter_domain(0).contains(&Point::new(&[1, 1])));
        assert_eq!(a.filter_offset(0), Point::new(&[1, 0]));
        assert_eq!(a.filter_index(0).len(), 766 * 1022);
    }

    #[test]
    fn skewed_grid_distances_bound_occupancy() {
        // Fig. 9-style skewed grid.
        let iter = Polyhedron::new(
            2,
            vec![
                Constraint::lower_bound(2, 0, 1),
                Constraint::upper_bound(2, 0, 20),
                Constraint::new(&[-1, 1], -1), // j >= i + 1
                Constraint::new(&[1, -1], 12), // j <= i + 12
            ],
        );
        let spec = StencilSpec::new(
            "skew",
            iter,
            vec![
                Point::new(&[-1, -1]),
                Point::new(&[-1, 1]),
                Point::new(&[0, 0]),
                Point::new(&[1, -1]),
                Point::new(&[1, 1]),
            ],
        )
        .unwrap();
        let a = ReuseAnalysis::of(&spec).unwrap();
        assert_eq!(a.adjacent_distances().len(), 4);
        assert!(a.total_distance() > 0);
        // On a skewed grid the sum may exceed the end-to-end distance but
        // never undershoots it.
        assert!(a.sum_of_distances() >= a.total_distance());
    }

    #[test]
    fn small_grid_3d() {
        let spec = StencilSpec::new(
            "heat",
            Polyhedron::rect(&[(1, 8), (1, 8), (1, 8)]),
            vec![
                Point::new(&[-1, 0, 0]),
                Point::new(&[0, -1, 0]),
                Point::new(&[0, 0, -1]),
                Point::new(&[0, 0, 0]),
                Point::new(&[0, 0, 1]),
                Point::new(&[0, 1, 0]),
                Point::new(&[1, 0, 0]),
            ],
        )
        .unwrap();
        let a = ReuseAnalysis::of(&spec).unwrap();
        assert_eq!(a.window_size(), 7);
        assert_eq!(a.adjacent_distances().len(), 6);
        // End-to-end: from (1,0,0) to (-1,0,0) over a 10x10x10 input grid.
        assert_eq!(a.total_distance(), 200);
        assert!(a.linearity_holds());
    }
}
