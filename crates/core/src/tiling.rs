//! Row-band tiling of a plan's iteration domain for parallel software
//! execution.
//!
//! The execution engine (`stencil-engine`) shards a kernel across
//! worker threads by splitting the iteration domain `D` into bands
//! along the outermost loop dimension. Because lexicographic order
//! sorts on the outermost dimension first, each band is a *contiguous
//! range of output ranks*, so tiles write disjoint slices of one output
//! buffer with no synchronization.
//!
//! Each tile also records its **halo**: the sub-region of the input
//! data domain `D_A` its iterations read (the band dilated by the
//! stencil window, clipped to `D_A`). Adjacent tiles' halos overlap by
//! the window radius — the data each band re-reads instead of
//! exchanging with its neighbour.
//!
//! The default band count follows the paper's Appendix 9.4
//! bandwidth/memory tradeoff: a plan reconfigured for `k` off-chip
//! streams ([`MemorySystemPlan::with_offchip_streams`]) feeds `k`
//! independent stream heads, and the engine mirrors that by running
//! `k` bands ([`MemorySystemPlan::tile_plan_from_streams`]).

use serde::{Deserialize, Serialize};
use stencil_polyhedral::{Constraint, Point, Polyhedron, Row};

use crate::error::PlanError;
use crate::plan::MemorySystemPlan;

/// One row band of the iteration domain, with its input halo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tile {
    /// Tile position in outermost-dimension order.
    pub id: usize,
    /// Inclusive outermost-dimension range `[lo, hi]` of this band.
    pub band: (i64, i64),
    /// The band's iteration sub-domain (`D` ∩ band).
    pub iter_domain: Polyhedron,
    /// The input region this band reads: the band dilated by the
    /// stencil window, clipped to the input domain `D_A`.
    pub halo_domain: Polyhedron,
    /// Inclusive outermost-dimension range of the band's halo, *before*
    /// clipping to `D_A`: `(band.0 + min window offset, band.1 + max
    /// window offset)` along dimension 0. A streaming executor keeps
    /// exactly the input rows whose outermost coordinate falls in this
    /// range (intersected with the rows the input domain actually has)
    /// resident while the band runs — this is the Sec. 2.3 reuse-window
    /// bound expressed in rows.
    pub halo_band: (i64, i64),
    /// Lexicographic rank in `D` of the band's first iteration.
    pub start_rank: u64,
    /// Number of iterations (outputs) in the band.
    pub len: u64,
}

impl Tile {
    /// Exclusive end rank of this band's outputs.
    #[must_use]
    pub fn end_rank(&self) -> u64 {
        self.start_rank + self.len
    }

    /// True when a row spanning `span0` along the outermost dimension
    /// (see [`row_outer_span`]) lies entirely *below* this band's halo
    /// window — a streaming executor may evict it before running the
    /// band.
    #[must_use]
    pub fn row_below_halo(&self, span0: (i64, i64)) -> bool {
        span0.1 < self.halo_band.0
    }

    /// True when a row spanning `span0` lies entirely *above* this
    /// band's halo window — the band does not need it resident yet.
    #[must_use]
    pub fn row_above_halo(&self, span0: (i64, i64)) -> bool {
        span0.0 > self.halo_band.1
    }
}

/// The outermost-dimension coordinate range `[min, max]` an input index
/// row spans. Index rows fix all outer dimensions, so for `dims >= 2`
/// this is the single value `prefix[0]`; in 1D the band axis *is* the
/// row axis and the span is the row's own extent.
#[must_use]
pub fn row_outer_span(row: &Row, dims: usize) -> (i64, i64) {
    if dims == 1 {
        (row.lo, row.hi)
    } else {
        (row.prefix[0], row.prefix[0])
    }
}

/// A partition of a plan's iteration domain into row bands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TilePlan {
    tiles: Vec<Tile>,
    total_outputs: u64,
}

impl TilePlan {
    /// The bands, in outermost-dimension (= output rank) order.
    #[must_use]
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Number of bands (may be fewer than requested on small domains).
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Total outputs across all bands — the size of `D`.
    #[must_use]
    pub fn total_outputs(&self) -> u64 {
        self.total_outputs
    }

    /// Total input elements fetched across all halos, counting overlap
    /// regions once per tile that reads them. The excess over the input
    /// domain size is the redundant-fetch cost of sharding.
    ///
    /// # Errors
    ///
    /// Propagates halo counting failures as [`PlanError`].
    pub fn halo_elements(&self) -> Result<u64, PlanError> {
        let mut total = 0u64;
        for t in &self.tiles {
            total += t.halo_domain.count().map_err(PlanError::from)?;
        }
        Ok(total)
    }
}

impl MemorySystemPlan {
    /// Partitions the iteration domain into (at most) `tiles` row bands
    /// of near-equal output count along the outermost dimension.
    ///
    /// Bands are contiguous in lexicographic output order and jointly
    /// cover `D` exactly once. Fewer bands are produced when the
    /// outermost dimension has fewer distinct values than requested.
    ///
    /// # Errors
    ///
    /// * [`PlanError::EmptyIterationDomain`] if `D` has no points.
    /// * Polyhedral failures as [`PlanError::Poly`].
    ///
    /// # Panics
    ///
    /// Panics if `tiles == 0`.
    pub fn tile_plan(&self, tiles: usize) -> Result<TilePlan, PlanError> {
        assert!(tiles > 0, "tile count must be positive");
        let iter = self.iteration_domain();
        let dims = iter.dims();
        let idx = iter.index().map_err(PlanError::from)?;
        let total = idx.len();
        if total == 0 {
            return Err(PlanError::EmptyIterationDomain);
        }
        let bb = idx.bounding_box().expect("non-empty domain has a box");
        let (lo0, hi0) = bb[0];
        let counts = outer_counts(&idx, dims, lo0, hi0);

        // Greedy balanced cut: close a band once it reaches the ideal
        // cumulative share of outputs; the last band takes the rest.
        let window: Vec<Point> = self.filters().iter().map(|f| f.offset).collect();
        let mut out = Vec::with_capacity(tiles);
        let mut band_lo = lo0;
        let mut in_band = 0u64;
        let mut emitted = 0u64;
        for (j, &c) in counts.iter().enumerate() {
            in_band += c;
            let i0 = lo0 + i64::try_from(j).expect("in box");
            // Computed in u128: `total` can approach u64::MAX on huge
            // (sparsely indexed) domains, where `total * (k + 1)` would
            // wrap and silently misplace every remaining cut.
            let share_wide = (u128::from(total) * (out.len() as u128 + 1)).div_ceil(tiles as u128);
            let share = u64::try_from(share_wide).expect("share <= total outputs");
            let close_early = emitted + in_band >= share && out.len() + 1 < tiles;
            if in_band > 0 && (close_early || i0 == hi0) {
                let tile = self.build_tile(out.len(), band_lo, i0, &window, &idx)?;
                debug_assert_eq!(tile.len, in_band);
                emitted += in_band;
                out.push(tile);
                in_band = 0;
                band_lo = i0 + 1;
            }
        }
        debug_assert_eq!(emitted, total, "bands must cover the domain");
        Ok(TilePlan {
            tiles: out,
            total_outputs: total,
        })
    }

    /// Partitions the iteration domain into row bands of at most
    /// `chunk_rows` distinct outermost-dimension values each — the
    /// fixed-height chunking a streaming (out-of-core) executor uses,
    /// where band height directly sets the resident halo window.
    ///
    /// `chunk_rows` is clamped to at least 1. Outermost values holding
    /// no iterations produce no band of their own; bands are contiguous
    /// in lexicographic output order and jointly cover `D` exactly once,
    /// like [`MemorySystemPlan::tile_plan`].
    ///
    /// # Errors
    ///
    /// * [`PlanError::EmptyIterationDomain`] if `D` has no points.
    /// * Polyhedral failures as [`PlanError::Poly`].
    pub fn tile_plan_chunked(&self, chunk_rows: u64) -> Result<TilePlan, PlanError> {
        let chunk_rows = chunk_rows.max(1);
        let iter = self.iteration_domain();
        let idx = iter.index().map_err(PlanError::from)?;
        let total = idx.len();
        if total == 0 {
            return Err(PlanError::EmptyIterationDomain);
        }
        let bb = idx.bounding_box().expect("non-empty domain has a box");
        let (lo0, hi0) = bb[0];
        let counts = outer_counts(&idx, iter.dims(), lo0, hi0);

        let window: Vec<Point> = self.filters().iter().map(|f| f.offset).collect();
        let mut out = Vec::new();
        let mut band_lo = lo0;
        let mut in_band = 0u64;
        let mut span_used = 0u64;
        for (j, &c) in counts.iter().enumerate() {
            let i0 = lo0 + i64::try_from(j).expect("in box");
            in_band += c;
            span_used += 1;
            if span_used == chunk_rows || i0 == hi0 {
                if in_band > 0 {
                    out.push(self.build_tile(out.len(), band_lo, i0, &window, &idx)?);
                }
                in_band = 0;
                span_used = 0;
                band_lo = i0 + 1;
            }
        }
        debug_assert_eq!(
            out.iter().map(|t| t.len).sum::<u64>(),
            total,
            "chunked bands must cover the domain"
        );
        Ok(TilePlan {
            tiles: out,
            total_outputs: total,
        })
    }

    /// The Appendix 9.4 sharding rule: one band per off-chip stream.
    ///
    /// A plan reconfigured with
    /// [`MemorySystemPlan::with_offchip_streams`]`(k)` trades buffer
    /// memory for `k` stream heads; the software engine mirrors that
    /// bandwidth budget by running `k` parallel bands.
    ///
    /// # Errors
    ///
    /// Propagates [`MemorySystemPlan::tile_plan`] failures.
    pub fn tile_plan_from_streams(&self) -> Result<TilePlan, PlanError> {
        self.tile_plan(self.offchip_streams())
    }

    /// Plan-time upper bound on streaming residency under `tile_plan`:
    /// the largest band halo window, measured as resident input rows ×
    /// the widest such row. A streaming run that evicts before pulling
    /// keeps its observed `peak_resident` at or below this bound (the
    /// Sec. 2.3 reuse-window argument, band-granular); chained sessions
    /// sum the per-stage bounds to bound the whole pipeline.
    ///
    /// # Errors
    ///
    /// Propagates indexing failures as [`PlanError`].
    pub fn planned_residency_bound(&self, tile_plan: &TilePlan) -> Result<u64, PlanError> {
        let in_idx = self.input_domain().index().map_err(PlanError::from)?;
        let dims = in_idx.dims();
        let mut bound = 0u64;
        for tile in tile_plan.tiles() {
            let resident = in_idx.rows().iter().filter(|row| {
                let span = row_outer_span(row, dims);
                !tile.row_below_halo(span) && !tile.row_above_halo(span)
            });
            let (mut rows, mut widest) = (0u64, 0u64);
            for row in resident {
                rows += 1;
                widest = widest.max(row.len());
            }
            bound = bound.max(rows * widest);
        }
        Ok(bound)
    }

    fn build_tile(
        &self,
        id: usize,
        lo: i64,
        hi: i64,
        window: &[Point],
        full_index: &stencil_polyhedral::DomainIndex,
    ) -> Result<Tile, PlanError> {
        let dims = self.iteration_domain().dims();
        let iter_domain = self
            .iteration_domain()
            .with_constraint(Constraint::lower_bound(dims, 0, lo))
            .with_constraint(Constraint::upper_bound(dims, 0, hi));
        let halo_domain = iter_domain
            .dilated(window)
            .intersection(self.input_domain());
        let min0 = window.iter().map(|f| f[0]).min().unwrap_or(0);
        let max0 = window.iter().map(|f| f[0]).max().unwrap_or(0);
        let band_index = iter_domain.index().map_err(PlanError::from)?;
        let first = band_index.first().ok_or(PlanError::EmptyIterationDomain)?;
        Ok(Tile {
            id,
            band: (lo, hi),
            iter_domain,
            halo_domain,
            halo_band: (lo + min0, hi + max0),
            start_rank: full_index.rank_lt(&first),
            len: band_index.len(),
        })
    }
}

/// Output count per outermost-dimension value of `idx` over `[lo0, hi0]`.
/// Rows fix all outer dimensions, so in 1D the "band axis" is the row
/// axis itself and every point counts individually.
fn outer_counts(
    idx: &stencil_polyhedral::DomainIndex,
    dims: usize,
    lo0: i64,
    hi0: i64,
) -> Vec<u64> {
    let span = usize::try_from(hi0 - lo0 + 1).expect("bounded dimension");
    let mut counts = vec![0u64; span];
    for row in idx.rows() {
        if dims == 1 {
            for i0 in row.lo..=row.hi {
                counts[usize::try_from(i0 - lo0).expect("in box")] += 1;
            }
        } else {
            let i0 = row.prefix[0];
            counts[usize::try_from(i0 - lo0).expect("in box")] += row.len();
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StencilSpec;

    fn denoise_plan() -> MemorySystemPlan {
        let spec = StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, 30), (1, 22)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap();
        MemorySystemPlan::generate(&spec).unwrap()
    }

    #[test]
    fn tiles_partition_ranks_exactly() {
        let plan = denoise_plan();
        for tiles in [1usize, 2, 3, 4, 7, 30, 64] {
            let tp = plan.tile_plan(tiles).unwrap();
            assert!(tp.tile_count() >= 1 && tp.tile_count() <= tiles);
            assert_eq!(tp.total_outputs(), 30 * 22);
            let mut next = 0u64;
            for t in tp.tiles() {
                assert_eq!(t.start_rank, next, "tiles={tiles}");
                assert!(t.len > 0);
                next = t.end_rank();
            }
            assert_eq!(next, tp.total_outputs());
        }
    }

    #[test]
    fn planned_residency_bound_is_one_band_halo() {
        // 30x22 iteration grid, 32x24 input grid, 5-point window.
        let plan = denoise_plan();
        // 1-row bands: 3 input rows of width 24 resident at the peak.
        let tp = plan.tile_plan_chunked(1).unwrap();
        assert_eq!(plan.planned_residency_bound(&tp).unwrap(), 3 * 24);
        // 4-row bands: 6 resident input rows.
        let tp = plan.tile_plan_chunked(4).unwrap();
        assert_eq!(plan.planned_residency_bound(&tp).unwrap(), 6 * 24);
        // One band: the whole input grid.
        let tp = plan.tile_plan(1).unwrap();
        assert_eq!(plan.planned_residency_bound(&tp).unwrap(), 32 * 24);
    }

    #[test]
    fn requesting_more_tiles_than_rows_saturates() {
        let plan = denoise_plan();
        let tp = plan.tile_plan(64).unwrap();
        // Only 30 distinct outermost values exist.
        assert_eq!(tp.tile_count(), 30);
    }

    #[test]
    fn halo_covers_every_window_read() {
        let plan = denoise_plan();
        let window: Vec<Point> = plan.filters().iter().map(|f| f.offset).collect();
        let tp = plan.tile_plan(3).unwrap();
        for t in tp.tiles() {
            let idx = t.iter_domain.index().unwrap();
            let mut c = idx.cursor();
            while let Some(p) = c.point(&idx) {
                for f in &window {
                    let h = p + *f;
                    assert!(
                        t.halo_domain.contains(&h),
                        "tile {} halo misses {h} for iteration {p}",
                        t.id
                    );
                }
                c.advance(&idx);
            }
        }
    }

    #[test]
    fn halos_overlap_by_window_radius() {
        let plan = denoise_plan();
        let tp = plan.tile_plan(2).unwrap();
        let total: u64 = tp.halo_elements().unwrap();
        let input = plan.input_domain().count().unwrap();
        // Two bands of a 5-point window overlap by 2 rows of the input.
        assert_eq!(total, input + 2 * 24);
    }

    #[test]
    fn stream_sharding_follows_tradeoff() {
        let plan = denoise_plan().with_offchip_streams(3).unwrap();
        let tp = plan.tile_plan_from_streams().unwrap();
        assert_eq!(tp.tile_count(), 3);
        let single = denoise_plan().tile_plan_from_streams().unwrap();
        assert_eq!(single.tile_count(), 1);
    }

    #[test]
    fn one_dimensional_bands() {
        let spec = StencilSpec::new(
            "blur1d",
            Polyhedron::rect(&[(1, 40)]),
            vec![Point::new(&[-1]), Point::new(&[0]), Point::new(&[1])],
        )
        .unwrap();
        let plan = MemorySystemPlan::generate(&spec).unwrap();
        let tp = plan.tile_plan(4).unwrap();
        assert_eq!(tp.tile_count(), 4);
        assert_eq!(tp.total_outputs(), 40);
        for t in tp.tiles() {
            assert_eq!(t.len, 10);
        }
    }

    #[test]
    fn huge_domain_share_does_not_overflow() {
        // 3 rows of 2^62 iterations each: ~1.4e19 total outputs, so the
        // old `total * (k + 1)` share numerator wrapped u64 at k = 1
        // (panicking in debug builds, silently misplacing every cut in
        // release). The domain has only 3 index rows, so planning it is
        // cheap even though it is astronomically large.
        let spec = StencilSpec::new(
            "huge",
            Polyhedron::rect(&[(1, 3), (1, 1 << 62)]),
            vec![
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
            ],
        )
        .unwrap();
        let plan = MemorySystemPlan::generate(&spec).unwrap();
        let tp = plan.tile_plan(3).unwrap();
        assert_eq!(tp.tile_count(), 3);
        assert_eq!(tp.total_outputs(), 3 * (1u64 << 62));
        let mut next = 0u64;
        for t in tp.tiles() {
            assert_eq!(t.start_rank, next);
            assert_eq!(t.len, 1 << 62, "bands must stay balanced");
            next = t.end_rank();
        }
        assert_eq!(next, tp.total_outputs());
    }

    #[test]
    fn chunked_bands_have_fixed_height_and_cover_domain() {
        let plan = denoise_plan();
        for chunk in [1u64, 2, 4, 7, 30, 100] {
            let tp = plan.tile_plan_chunked(chunk).unwrap();
            assert_eq!(tp.total_outputs(), 30 * 22);
            let mut next = 0u64;
            for t in tp.tiles() {
                let (lo, hi) = t.band;
                assert!((hi - lo + 1) as u64 <= chunk, "chunk={chunk}");
                assert_eq!(t.start_rank, next, "chunk={chunk}");
                assert!(t.len > 0);
                next = t.end_rank();
            }
            assert_eq!(next, tp.total_outputs());
        }
        // Zero clamps to one row per band.
        let tp = plan.tile_plan_chunked(0).unwrap();
        assert_eq!(tp.tile_count(), 30);
    }

    #[test]
    fn halo_band_is_window_dilation_of_band() {
        let plan = denoise_plan();
        // DENOISE window spans -1..=1 along dim 0.
        for tp in [
            plan.tile_plan(3).unwrap(),
            plan.tile_plan_chunked(5).unwrap(),
        ] {
            for t in tp.tiles() {
                assert_eq!(t.halo_band, (t.band.0 - 1, t.band.1 + 1));
                // The clipped halo domain never extends past the
                // unclipped halo band.
                let idx = t.halo_domain.index().unwrap();
                let bb = idx.bounding_box().unwrap();
                assert!(bb[0].0 >= t.halo_band.0);
                assert!(bb[0].1 <= t.halo_band.1);
            }
        }
    }

    #[test]
    fn empty_domain_rejected() {
        // tile_plan(0) is a caller bug; empty D cannot happen via a
        // validated spec, so exercise the panic path only.
        let plan = denoise_plan();
        let r = std::panic::catch_unwind(|| plan.tile_plan(0));
        assert!(r.is_err());
    }
}
