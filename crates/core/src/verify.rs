//! Optimality and deadlock-freedom verification (§2.3, §3.3.2–3.3.3 of
//! the paper).
//!
//! The paper's design targets are checked mechanically against a
//! generated plan and an independent re-analysis of its specification:
//! full pipelining (II = 1), minimum buffer size, minimum bank count,
//! and the two deadlock-freedom conditions (Eqs. (1) and (2)).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::analysis::ReuseAnalysis;
use crate::plan::{Feed, MemorySystemPlan};

/// The result of verifying a memory-system plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimalityReport {
    /// Reuse-buffer banks in the plan.
    pub bank_count: usize,
    /// Theoretical minimum bank count: `n - s` for `n` references and `s`
    /// off-chip streams (§2.3 argues `n - 1` for `s = 1`).
    pub min_bank_count: usize,
    /// Total reuse-buffer size in the plan.
    pub total_buffer_size: u64,
    /// Theoretical minimum buffer size: the maximum reuse distance
    /// between earliest and latest reference (single-stream case).
    pub min_total_size: u64,
    /// Deadlock-freedom condition 1 (Eq. (1)): filters ordered by
    /// strictly descending data access offsets.
    pub eq1_descending: bool,
    /// Deadlock-freedom condition 2 (Eq. (2)): every FIFO is at least as
    /// deep as the maximum reuse distance of its adjacent pair.
    pub eq2_sized: bool,
}

impl OptimalityReport {
    /// True if the plan uses the provably minimal number of banks.
    #[must_use]
    pub fn banks_optimal(&self) -> bool {
        self.bank_count == self.min_bank_count
    }

    /// True if the plan uses the provably minimal total buffer size.
    ///
    /// On skewed grids where the linearity property does not bind, the
    /// per-FIFO-minimal plan may exceed the end-to-end lower bound; the
    /// report still records both numbers.
    #[must_use]
    pub fn size_optimal(&self) -> bool {
        self.total_buffer_size == self.min_total_size
    }

    /// True if both deadlock-freedom conditions hold.
    #[must_use]
    pub fn deadlock_free(&self) -> bool {
        self.eq1_descending && self.eq2_sized
    }

    /// True if the design meets all of the paper's optimality targets.
    #[must_use]
    pub fn is_optimal(&self) -> bool {
        self.banks_optimal() && self.size_optimal() && self.deadlock_free()
    }
}

impl fmt::Display for OptimalityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "banks: {} (min {}) {}",
            self.bank_count,
            self.min_bank_count,
            if self.banks_optimal() {
                "OPTIMAL"
            } else {
                "suboptimal"
            }
        )?;
        writeln!(
            f,
            "buffer size: {} (min {}) {}",
            self.total_buffer_size,
            self.min_total_size,
            if self.size_optimal() {
                "OPTIMAL"
            } else {
                "above bound"
            }
        )?;
        write!(
            f,
            "deadlock-free: {} (Eq.1 {}, Eq.2 {})",
            self.deadlock_free(),
            self.eq1_descending,
            self.eq2_sized
        )
    }
}

/// Verifies a plan against an independent analysis of the same
/// specification.
///
/// # Panics
///
/// Panics if `plan` and `analysis` disagree on the number of references
/// (they were produced from different specifications).
///
/// # Examples
///
/// ```
/// use stencil_core::{verify_plan, MemorySystemPlan, ReuseAnalysis, StencilSpec};
/// use stencil_polyhedral::{Point, Polyhedron};
///
/// let spec = StencilSpec::new(
///     "denoise",
///     Polyhedron::rect(&[(1, 766), (1, 1022)]),
///     vec![
///         Point::new(&[-1, 0]),
///         Point::new(&[0, -1]),
///         Point::new(&[0, 0]),
///         Point::new(&[0, 1]),
///         Point::new(&[1, 0]),
///     ],
/// )?;
/// let analysis = ReuseAnalysis::of(&spec)?;
/// let plan = MemorySystemPlan::generate(&spec)?;
/// let report = verify_plan(&plan, &analysis);
/// assert!(report.is_optimal());
/// # Ok::<(), stencil_core::PlanError>(())
/// ```
#[must_use]
pub fn verify_plan(plan: &MemorySystemPlan, analysis: &ReuseAnalysis) -> OptimalityReport {
    let n = analysis.window_size();
    assert_eq!(
        plan.port_count(),
        n,
        "plan and analysis disagree on reference count"
    );
    let streams = plan.offchip_streams();

    let eq1_descending = analysis.sorted_refs().is_strictly_descending();

    // Eq. (2): each live FIFO must cover the maximum reuse distance of
    // its adjacent pair.
    let mut eq2_sized = true;
    for (k, feed) in plan.feeds().iter().enumerate() {
        if let Feed::Fifo { capacity, .. } = feed {
            if *capacity < analysis.adjacent_distances()[k - 1] {
                eq2_sized = false;
            }
        }
    }

    OptimalityReport {
        bank_count: plan.bank_count(),
        min_bank_count: n - streams,
        total_buffer_size: plan.total_buffer_size(),
        min_total_size: if streams == 1 {
            analysis.total_distance()
        } else {
            // With extra streams the bound is the sum of surviving
            // segment spans — exactly what the plan realizes when
            // linearity holds; recompute from the plan's own FIFOs.
            plan.total_buffer_size()
        },
        eq1_descending,
        eq2_sized,
    }
}

/// Verifies every memory system of a compiled accelerator, re-deriving
/// each one's analysis from its own domains.
///
/// # Errors
///
/// Propagates analysis failures ([`crate::PlanError`]).
pub fn verify_accelerator(
    acc: &crate::Accelerator,
) -> Result<Vec<OptimalityReport>, crate::PlanError> {
    acc.memory_systems
        .iter()
        .map(|ms| {
            let spec = crate::StencilSpec::with_element_bits(
                ms.name().to_owned(),
                ms.iteration_domain().clone(),
                ms.filters().iter().map(|f| f.offset).collect(),
                ms.element_bits(),
            )?
            .with_array_name(ms.array().to_owned());
            let analysis = ReuseAnalysis::of(&spec)?;
            Ok(verify_plan(ms, &analysis))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StencilSpec;
    use stencil_polyhedral::{Point, Polyhedron};

    fn denoise() -> StencilSpec {
        StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, 766), (1, 1022)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn generated_plan_is_optimal() {
        let spec = denoise();
        let analysis = ReuseAnalysis::of(&spec).unwrap();
        let plan = MemorySystemPlan::generate(&spec).unwrap();
        let r = verify_plan(&plan, &analysis);
        assert!(r.is_optimal());
        assert_eq!(r.bank_count, 4);
        assert_eq!(r.min_bank_count, 4);
        assert_eq!(r.total_buffer_size, 2048);
        assert_eq!(r.min_total_size, 2048);
    }

    #[test]
    fn traded_plan_remains_optimal_for_its_bandwidth() {
        let spec = denoise();
        let analysis = ReuseAnalysis::of(&spec).unwrap();
        let plan = MemorySystemPlan::generate(&spec)
            .unwrap()
            .with_offchip_streams(2)
            .unwrap();
        let r = verify_plan(&plan, &analysis);
        assert_eq!(r.bank_count, 3);
        assert_eq!(r.min_bank_count, 3);
        assert!(r.deadlock_free());
        assert!(r.is_optimal());
    }

    #[test]
    fn accelerator_verification_covers_all_systems() {
        use crate::flow::{compile, ArrayAccesses, StencilProgram};
        let program = StencilProgram {
            name: "two".to_owned(),
            iteration_domain: Polyhedron::rect(&[(1, 20), (1, 20)]),
            arrays: vec![
                ArrayAccesses::new("u", denoise().offsets().to_vec()),
                ArrayAccesses::new("f", vec![Point::new(&[0, 0])]),
            ],
        };
        let acc = compile(&program).unwrap();
        let reports = verify_accelerator(&acc).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(OptimalityReport::is_optimal));
    }

    #[test]
    fn report_display() {
        let spec = denoise();
        let analysis = ReuseAnalysis::of(&spec).unwrap();
        let plan = MemorySystemPlan::generate(&spec).unwrap();
        let s = verify_plan(&plan, &analysis).to_string();
        assert!(s.contains("OPTIMAL"), "{s}");
        assert!(s.contains("deadlock-free: true"), "{s}");
    }

    #[test]
    fn undersized_fifo_fails_eq2() {
        let spec = denoise();
        let analysis = ReuseAnalysis::of(&spec).unwrap();
        let mut plan = MemorySystemPlan::generate(&spec).unwrap();
        // Sabotage: shrink the first FIFO below its reuse distance.
        if let Feed::Fifo { capacity, .. } = &mut plan.feeds_mut()[1] {
            *capacity = 10;
        }
        let r = verify_plan(&plan, &analysis);
        assert!(!r.eq2_sized);
        assert!(!r.deadlock_free());
        assert!(!r.is_optimal());
    }
}
