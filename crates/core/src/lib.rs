//! # stencil-core
//!
//! The core contribution of *"An Optimal Microarchitecture for Stencil
//! Computation Acceleration Based on Non-Uniform Partitioning of Data
//! Reuse Buffers"* (Cong, Li, Xiao, Zhang — DAC 2014): a memory-system
//! generator that, for any stencil window with `n` array references,
//! produces a chain of `n - 1` **non-uniformly sized** reuse FIFOs plus
//! data path splitters and data filters, achieving simultaneously
//!
//! 1. full pipelining (II = 1),
//! 2. the theoretical minimum total reuse-buffer size, and
//! 3. the theoretical minimum number of buffer banks
//!
//! — guarantees that uniform cyclic partitioning (prior work \[5–8\] in the
//! paper) cannot make.
//!
//! # Pipeline
//!
//! * [`StencilSpec`] — iteration domain + stencil window (one data array).
//! * [`ReuseAnalysis`] — reference sorting and maximum-reuse-distance
//!   computation (§3.2–3.3, backed by [`stencil_polyhedral`]).
//! * [`MemorySystemPlan`] — the generated microarchitecture (Fig. 7),
//!   with heterogeneous storage mapping (Table 2) via [`MappingPolicy`].
//! * [`MemorySystemPlan::with_offchip_streams`] — the bandwidth/memory
//!   tradeoff (Fig. 14–15).
//! * [`verify_plan`] — machine-checked optimality and deadlock-freedom
//!   (Eqs. (1)–(2)).
//! * [`compile`] — the end-to-end automation flow (Fig. 11) over
//!   multi-array [`StencilProgram`]s.
//!
//! # Example
//!
//! ```
//! use stencil_core::{MemorySystemPlan, StencilSpec};
//! use stencil_polyhedral::{Point, Polyhedron};
//!
//! // The DENOISE kernel of Fig. 1: 5-point window on a 768x1024 grid.
//! let spec = StencilSpec::new(
//!     "denoise",
//!     Polyhedron::rect(&[(1, 766), (1, 1022)]),
//!     vec![
//!         Point::new(&[-1, 0]),
//!         Point::new(&[0, -1]),
//!         Point::new(&[0, 0]),
//!         Point::new(&[0, 1]),
//!         Point::new(&[1, 0]),
//!     ],
//! )?;
//! let plan = MemorySystemPlan::generate(&spec)?;
//! // Table 2 of the paper: four FIFOs sized 1023, 1, 1, 1023.
//! assert_eq!(plan.fifo_capacities(), vec![1023, 1, 1, 1023]);
//! assert_eq!(plan.total_buffer_size(), plan.min_total_size());
//! # Ok::<(), stencil_core::PlanError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod analysis;
mod error;
pub mod flow;
mod mapping;
mod modulo;
mod plan;
mod sort;
mod spec;
mod tiling;
mod tradeoff;
mod verify;

pub use analysis::ReuseAnalysis;
pub use error::PlanError;
pub use flow::{compile, compile_with_policy, Accelerator, ArrayAccesses, StencilProgram};
pub use mapping::{MappingPolicy, StorageKind};
pub use modulo::{DelayBank, ModuloSchedulePlan};
pub use plan::{Feed, FilterPlan, MemorySystemPlan};
pub use sort::SortedRefs;
pub use spec::StencilSpec;
pub use tiling::{row_outer_span, Tile, TilePlan};
pub use tradeoff::TradeoffPoint;
pub use verify::{verify_accelerator, verify_plan, OptimalityReport};
