//! Error types for microarchitecture planning.

use std::error::Error;
use std::fmt;

use stencil_polyhedral::PolyError;

/// Errors produced while analyzing a stencil specification or planning a
/// memory system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanError {
    /// The underlying polyhedral analysis failed.
    Poly(PolyError),
    /// The specification declares no array references.
    NoReferences,
    /// Two array references have identical offsets; a well-formed stencil
    /// window lists each point once.
    DuplicateOffset {
        /// Display form of the duplicated offset.
        offset: String,
    },
    /// An offset's dimensionality does not match the iteration domain's.
    DimensionMismatch {
        /// Dimensions of the iteration domain.
        domain: usize,
        /// Dimensions of the offending offset.
        offset: usize,
    },
    /// The iteration domain contains no points, so there is nothing to
    /// accelerate.
    EmptyIterationDomain,
    /// A bandwidth/memory tradeoff requested more off-chip streams than
    /// the design supports (at most `n` for an `n`-reference window).
    TooManyStreams {
        /// Streams requested.
        requested: usize,
        /// Maximum supported (number of references).
        max: usize,
    },
    /// The kernel's reuse distances change at run time (skewed grid), so
    /// a statically modulo-scheduled design is impossible; only the
    /// streaming microarchitecture handles it (§3.4.2 of the paper).
    NonConstantReuse {
        /// The kernel whose schedule cannot be static.
        kernel: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Poly(e) => write!(f, "polyhedral analysis failed: {e}"),
            PlanError::NoReferences => write!(f, "stencil window has no array references"),
            PlanError::DuplicateOffset { offset } => {
                write!(f, "duplicate array reference offset {offset}")
            }
            PlanError::DimensionMismatch { domain, offset } => write!(
                f,
                "offset has {offset} dimensions but the iteration domain has {domain}"
            ),
            PlanError::EmptyIterationDomain => {
                write!(f, "iteration domain contains no points")
            }
            PlanError::TooManyStreams { requested, max } => write!(
                f,
                "requested {requested} off-chip streams but the window supports at most {max}"
            ),
            PlanError::NonConstantReuse { kernel } => write!(
                f,
                "kernel `{kernel}` has run-time-varying reuse distances; \
                 a static modulo schedule is impossible"
            ),
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::Poly(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PolyError> for PlanError {
    fn from(e: PolyError) -> Self {
        PlanError::Poly(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PlanError::from(PolyError::EmptyDomain);
        assert!(e.to_string().contains("polyhedral analysis failed"));
        assert!(e.source().is_some());
        assert!(PlanError::NoReferences.source().is_none());
        assert_eq!(
            PlanError::TooManyStreams {
                requested: 9,
                max: 5
            }
            .to_string(),
            "requested 9 off-chip streams but the window supports at most 5"
        );
        assert!(PlanError::DuplicateOffset {
            offset: "(0, 0)".into()
        }
        .to_string()
        .contains("(0, 0)"));
        assert_eq!(
            PlanError::DimensionMismatch {
                domain: 2,
                offset: 3
            }
            .to_string(),
            "offset has 3 dimensions but the iteration domain has 2"
        );
    }
}
