//! Heterogeneous mapping of reuse buffers to physical storage (§3.5.1 and
//! Table 2 of the paper).
//!
//! Non-uniform FIFO sizes open the door to matching each buffer with the
//! cheapest adequate FPGA storage primitive: slice registers for tiny
//! buffers, LUT-based shift registers (SRLs / distributed RAM) for medium
//! ones, and block RAM for large ones.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The physical storage primitive implementing one reuse FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageKind {
    /// Slice flip-flop registers; depth 1–2 buffers (Table 2's
    /// "register" rows).
    Register,
    /// LUT shift registers / distributed RAM; medium depths.
    ShiftRegister,
    /// 18 Kb block RAM; deep buffers (Table 2's "BRAM" rows).
    BlockRam,
}

impl fmt::Display for StorageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StorageKind::Register => "register",
            StorageKind::ShiftRegister => "SRL",
            StorageKind::BlockRam => "BRAM",
        };
        f.write_str(s)
    }
}

/// Depth thresholds steering the storage choice.
///
/// # Examples
///
/// ```
/// use stencil_core::{MappingPolicy, StorageKind};
///
/// let policy = MappingPolicy::default();
/// assert_eq!(policy.assign(1), StorageKind::Register);
/// assert_eq!(policy.assign(32), StorageKind::ShiftRegister);
/// assert_eq!(policy.assign(1023), StorageKind::BlockRam);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingPolicy {
    /// Maximum depth implemented in plain registers.
    pub register_max: u64,
    /// Maximum depth implemented in LUT shift registers; beyond this,
    /// block RAM is used.
    pub shift_register_max: u64,
}

impl MappingPolicy {
    /// The default policy: registers up to depth 2 (one SLICEL holds 8
    /// flip-flops), SRLs/LUTRAM up to depth 128 (the paper's
    /// "distributed memory" tier for medium buffers).
    #[must_use]
    pub fn new() -> Self {
        Self {
            register_max: 2,
            shift_register_max: 128,
        }
    }

    /// A policy that maps **every** buffer to block RAM, mimicking the
    /// homogeneous mapping of uniform-partitioning flows; used by the
    /// heterogeneous-mapping ablation.
    #[must_use]
    pub fn bram_only() -> Self {
        Self {
            register_max: 0,
            shift_register_max: 0,
        }
    }

    /// Chooses the storage primitive for a FIFO of the given depth.
    #[must_use]
    pub fn assign(&self, depth: u64) -> StorageKind {
        if depth <= self.register_max {
            StorageKind::Register
        } else if depth <= self.shift_register_max {
            StorageKind::ShiftRegister
        } else {
            StorageKind::BlockRam
        }
    }
}

impl Default for MappingPolicy {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds() {
        let p = MappingPolicy::default();
        assert_eq!(p.assign(0), StorageKind::Register);
        assert_eq!(p.assign(2), StorageKind::Register);
        assert_eq!(p.assign(3), StorageKind::ShiftRegister);
        assert_eq!(p.assign(128), StorageKind::ShiftRegister);
        assert_eq!(p.assign(129), StorageKind::BlockRam);
    }

    #[test]
    fn bram_only_maps_everything_to_bram() {
        let p = MappingPolicy::bram_only();
        assert_eq!(p.assign(1), StorageKind::BlockRam);
        assert_eq!(p.assign(1000), StorageKind::BlockRam);
    }

    #[test]
    fn display_names() {
        assert_eq!(StorageKind::Register.to_string(), "register");
        assert_eq!(StorageKind::ShiftRegister.to_string(), "SRL");
        assert_eq!(StorageKind::BlockRam.to_string(), "BRAM");
    }

    #[test]
    fn table2_mapping() {
        // Table 2: sizes 1023 -> BRAM, 1 -> register.
        let p = MappingPolicy::default();
        assert_eq!(p.assign(1023), StorageKind::BlockRam);
        assert_eq!(p.assign(1), StorageKind::Register);
    }
}
