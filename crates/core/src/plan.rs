//! The generated memory-system microarchitecture (Fig. 7 of the paper).
//!
//! A [`MemorySystemPlan`] is the structural netlist of one per-array
//! memory system: `n` data filters (one per array reference, in
//! descending lexicographic offset order), `n` data path splitters, and
//! `n - 1` non-uniformly sized reuse FIFOs chaining them together. The
//! plan is consumed by the cycle-accurate simulator and by the FPGA
//! resource estimator.

use std::fmt;

use serde::{Deserialize, Serialize};
use stencil_polyhedral::{Point, Polyhedron};

use crate::analysis::ReuseAnalysis;
use crate::mapping::{MappingPolicy, StorageKind};

/// One data filter: the per-reference stream customizer (Fig. 10).
///
/// The filter holds two counters — an input counter over `D_A` and an
/// output counter over this reference's data domain — and forwards the
/// input element to its kernel port exactly when the counters agree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterPlan {
    /// Filter position in the chain (0 = earliest reference).
    pub id: usize,
    /// The data access offset `f` served by this filter.
    pub offset: Point,
    /// Index of this reference in the user's source order.
    pub user_index: usize,
    /// The data domain `D_Ax` this filter selects out of `D_A`.
    pub data_domain: Polyhedron,
}

/// What feeds a splitter: the upstream side of each chain position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Feed {
    /// Fed directly by an off-chip data stream (always position 0; more
    /// positions under a bandwidth/memory tradeoff, Fig. 14).
    Offchip,
    /// Fed by the reuse FIFO from the previous splitter.
    Fifo {
        /// FIFO capacity in data elements — the maximum reuse distance
        /// between the adjacent references (Eq. (2)).
        capacity: u64,
        /// Physical storage primitive (heterogeneous mapping, §3.5.1).
        storage: StorageKind,
    },
}

impl Feed {
    /// The FIFO capacity, or `None` for an off-chip feed.
    #[must_use]
    pub fn capacity(&self) -> Option<u64> {
        match self {
            Feed::Offchip => None,
            Feed::Fifo { capacity, .. } => Some(*capacity),
        }
    }

    /// True for an off-chip feed.
    #[must_use]
    pub fn is_offchip(&self) -> bool {
        matches!(self, Feed::Offchip)
    }
}

/// The structural plan of a memory system for one data array.
///
/// # Examples
///
/// ```
/// use stencil_core::{MemorySystemPlan, StencilSpec};
/// use stencil_polyhedral::{Point, Polyhedron};
///
/// let spec = StencilSpec::new(
///     "denoise",
///     Polyhedron::rect(&[(1, 766), (1, 1022)]),
///     vec![
///         Point::new(&[-1, 0]),
///         Point::new(&[0, -1]),
///         Point::new(&[0, 0]),
///         Point::new(&[0, 1]),
///         Point::new(&[1, 0]),
///     ],
/// )?;
/// let plan = MemorySystemPlan::generate(&spec)?;
/// assert_eq!(plan.bank_count(), 4);                 // n - 1 banks
/// assert_eq!(plan.total_buffer_size(), 2048);       // theoretical minimum
/// assert_eq!(plan.fifo_capacities(), vec![1023, 1, 1, 1023]);
/// # Ok::<(), stencil_core::PlanError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySystemPlan {
    name: String,
    array: String,
    element_bits: u32,
    input_domain: Polyhedron,
    iteration_domain: Polyhedron,
    filters: Vec<FilterPlan>,
    feeds: Vec<Feed>,
    min_total_size: u64,
    linearity_holds: bool,
}

impl MemorySystemPlan {
    /// Generates the microarchitecture for a specification with the
    /// default storage-mapping policy.
    ///
    /// # Errors
    ///
    /// Propagates analysis failures ([`crate::PlanError`]).
    pub fn generate(spec: &crate::spec::StencilSpec) -> Result<Self, crate::PlanError> {
        let analysis = ReuseAnalysis::of(spec)?;
        Ok(Self::from_analysis(&analysis, &MappingPolicy::default()))
    }

    /// Builds the plan from a finished analysis with an explicit mapping
    /// policy.
    #[must_use]
    pub fn from_analysis(analysis: &ReuseAnalysis, policy: &MappingPolicy) -> Self {
        let n = analysis.window_size();
        let mut filters = Vec::with_capacity(n);
        let mut feeds = Vec::with_capacity(n);
        for k in 0..n {
            filters.push(FilterPlan {
                id: k,
                offset: analysis.filter_offset(k),
                user_index: analysis.sorted_refs().user_index(k),
                data_domain: analysis.filter_domain(k).clone(),
            });
            if k == 0 {
                feeds.push(Feed::Offchip);
            } else {
                let capacity = analysis.adjacent_distances()[k - 1];
                feeds.push(Feed::Fifo {
                    capacity,
                    storage: policy.assign(capacity),
                });
            }
        }
        Self {
            name: analysis.spec().name().to_owned(),
            array: analysis.spec().array().to_owned(),
            element_bits: analysis.spec().element_bits(),
            input_domain: analysis.input_domain().clone(),
            iteration_domain: analysis.spec().iteration_domain().clone(),
            filters,
            feeds,
            min_total_size: analysis.total_distance(),
            linearity_holds: analysis.linearity_holds(),
        }
    }

    /// The kernel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The served array's name.
    #[must_use]
    pub fn array(&self) -> &str {
        &self.array
    }

    /// Data element width in bits.
    #[must_use]
    pub fn element_bits(&self) -> u32 {
        self.element_bits
    }

    /// The input data domain `D_A` streamed from off-chip.
    #[must_use]
    pub fn input_domain(&self) -> &Polyhedron {
        &self.input_domain
    }

    /// The kernel's iteration domain `D`.
    #[must_use]
    pub fn iteration_domain(&self) -> &Polyhedron {
        &self.iteration_domain
    }

    /// The data filters in chain order.
    #[must_use]
    pub fn filters(&self) -> &[FilterPlan] {
        &self.filters
    }

    /// The feed (off-chip stream or reuse FIFO) into each chain position.
    #[must_use]
    pub fn feeds(&self) -> &[Feed] {
        &self.feeds
    }

    /// The stencil window's span per dimension (`max − min + 1` over
    /// the filter offsets): the halo reach this stage erodes its input
    /// domain by, and the window extent per-stage telemetry reports.
    /// In a heterogeneous chain each stage's reuse buffer is sized from
    /// *its own* spans (the paper's Sec. 2.3 bound applied stage-wise),
    /// so these differ stage to stage.
    #[must_use]
    pub fn window_extents(&self) -> Vec<i64> {
        (0..self.iteration_domain.dims())
            .map(|d| {
                let lo = self
                    .filters
                    .iter()
                    .map(|f| f.offset[d])
                    .min()
                    .expect("window is non-empty");
                let hi = self
                    .filters
                    .iter()
                    .map(|f| f.offset[d])
                    .max()
                    .expect("window is non-empty");
                hi - lo + 1
            })
            .collect()
    }

    /// Number of array references / kernel data ports (`n`).
    #[must_use]
    pub fn port_count(&self) -> usize {
        self.filters.len()
    }

    /// Number of reuse-buffer banks (live FIFOs). `n - 1` without a
    /// bandwidth tradeoff — the theoretical minimum (§2.3).
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.feeds.iter().filter(|f| !f.is_offchip()).count()
    }

    /// Number of off-chip streams consumed per cycle (1 without a
    /// bandwidth tradeoff).
    #[must_use]
    pub fn offchip_streams(&self) -> usize {
        self.feeds.iter().filter(|f| f.is_offchip()).count()
    }

    /// Total reuse-buffer size in data elements.
    #[must_use]
    pub fn total_buffer_size(&self) -> u64 {
        self.feeds.iter().filter_map(Feed::capacity).sum()
    }

    /// The FIFO capacities in chain order (skipping off-chip feeds).
    #[must_use]
    pub fn fifo_capacities(&self) -> Vec<u64> {
        self.feeds.iter().filter_map(Feed::capacity).collect()
    }

    /// The theoretical minimum total buffer size: the maximum reuse
    /// distance between the earliest and latest reference (§2.3).
    #[must_use]
    pub fn min_total_size(&self) -> u64 {
        self.min_total_size
    }

    /// Whether the linearity property (Property 3) held exactly, making
    /// [`Self::total_buffer_size`] equal [`Self::min_total_size`] in the
    /// single-stream configuration.
    #[must_use]
    pub fn linearity_holds(&self) -> bool {
        self.linearity_holds
    }

    /// The initiation interval this microarchitecture sustains: 1 (full
    /// pipelining, design target 1 of §2.3).
    #[must_use]
    pub fn target_ii(&self) -> usize {
        1
    }

    /// Plans the follow-on stage of a temporal chain: a stencil with
    /// window `offsets` whose input array is *this* plan's output grid.
    ///
    /// The chained stage can only fire where every tap lands on an
    /// upstream output, so its iteration domain is this plan's
    /// iteration domain eroded by the new window
    /// ([`Polyhedron::eroded`]). For the convex domains the analysis
    /// accepts, the generated stage's input domain (the dilation of the
    /// erosion) recovers exactly the upstream iteration domain — the
    /// invariant [`MemorySystemPlan::chains_from`] verifies and the
    /// band-by-band streaming handoff relies on. Element width is
    /// inherited.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] when the eroded domain is empty (the
    /// window consumes the whole upstream output) or analysis fails.
    pub fn chain_next(
        &self,
        name: impl Into<String>,
        offsets: &[Point],
    ) -> Result<Self, crate::PlanError> {
        let spec = crate::spec::StencilSpec::with_element_bits(
            name,
            self.iteration_domain().eroded(offsets),
            offsets.to_vec(),
            self.element_bits(),
        )?
        .with_array_name(self.array());
        Self::generate(&spec)
    }

    /// True if this plan's input domain covers exactly `upstream`'s
    /// iteration domain, row for row — i.e. `upstream`'s output stream
    /// can feed this plan's input stream directly, with no gaps and no
    /// unused rows. This is the structural precondition for temporal
    /// chaining: stage *i*'s produced rows are pulled verbatim as stage
    /// *i+1*'s input rows.
    ///
    /// # Errors
    ///
    /// Propagates indexing failures as [`PlanError`].
    pub fn chains_from(&self, upstream: &Self) -> Result<bool, crate::PlanError> {
        let need = self
            .input_domain()
            .index()
            .map_err(crate::PlanError::from)?;
        let have = upstream
            .iteration_domain()
            .index()
            .map_err(crate::PlanError::from)?;
        if need.dims() != have.dims() || need.len() != have.len() {
            return Ok(false);
        }
        Ok(need
            .rows()
            .iter()
            .zip(have.rows())
            .all(|(n, h)| n.prefix == h.prefix && n.lo == h.lo && n.hi == h.hi))
    }

    pub(crate) fn feeds_mut(&mut self) -> &mut Vec<Feed> {
        &mut self.feeds
    }
}

impl fmt::Display for MemorySystemPlan {
    /// Renders the plan in the style of the paper's Table 2.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "memory system `{}` for array {} ({} refs, {} banks, total size {}):",
            self.name,
            self.array,
            self.port_count(),
            self.bank_count(),
            self.total_buffer_size()
        )?;
        for (k, feed) in self.feeds.iter().enumerate() {
            match feed {
                Feed::Offchip => {
                    writeln!(
                        f,
                        "  stream  -> filter_{k} {}[i + {}]",
                        self.array, self.filters[k].offset
                    )?;
                }
                Feed::Fifo { capacity, storage } => {
                    writeln!(
                        f,
                        "  FIFO_{:<2} {}[i + {}] -> {}[i + {}]  size {:>8}  impl {}",
                        k - 1,
                        self.array,
                        self.filters[k - 1].offset,
                        self.array,
                        self.filters[k].offset,
                        capacity,
                        storage
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StencilSpec;

    fn denoise_plan() -> MemorySystemPlan {
        let spec = StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, 766), (1, 1022)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap();
        MemorySystemPlan::generate(&spec).unwrap()
    }

    #[test]
    fn matches_paper_table2() {
        let p = denoise_plan();
        assert_eq!(p.fifo_capacities(), vec![1023, 1, 1, 1023]);
        assert_eq!(p.bank_count(), 4);
        assert_eq!(p.offchip_streams(), 1);
        assert_eq!(p.total_buffer_size(), 2048);
        assert_eq!(p.min_total_size(), 2048);
        assert!(p.linearity_holds());
        assert_eq!(p.target_ii(), 1);
        // The 5-point cross spans 3 rows and 3 columns.
        assert_eq!(p.window_extents(), vec![3, 3]);
        let storages: Vec<StorageKind> = p
            .feeds()
            .iter()
            .filter_map(|f| match f {
                Feed::Fifo { storage, .. } => Some(*storage),
                Feed::Offchip => None,
            })
            .collect();
        assert_eq!(
            storages,
            vec![
                StorageKind::BlockRam,
                StorageKind::Register,
                StorageKind::Register,
                StorageKind::BlockRam,
            ]
        );
    }

    #[test]
    fn chain_next_erodes_and_chains_exactly() {
        let p = denoise_plan();
        let window: Vec<Point> = p.filters().iter().map(|f| f.offset).collect();
        let next = p.chain_next("denoise2", &window).unwrap();
        // Stage 2 fires one ring further in: [2, 765] x [2, 1021].
        assert!(next.iteration_domain().contains(&Point::new(&[2, 2])));
        assert!(!next.iteration_domain().contains(&Point::new(&[1, 500])));
        assert!(!next.iteration_domain().contains(&Point::new(&[766, 500])));
        // Its input domain recovers stage 1's iteration domain exactly,
        // so stage 1's output rows feed stage 2 verbatim.
        assert!(next.chains_from(&p).unwrap());
        assert!(!p.chains_from(&next).unwrap());
        assert_eq!(next.element_bits(), p.element_bits());
        assert_eq!(next.array(), p.array());
        // Depth 3 keeps composing.
        let third = next.chain_next("denoise3", &window).unwrap();
        assert!(third.chains_from(&next).unwrap());
        assert!(!third.chains_from(&p).unwrap());
    }

    #[test]
    fn chain_next_rejects_windows_that_consume_the_grid() {
        let spec = StencilSpec::new(
            "tiny",
            Polyhedron::rect(&[(0, 1), (0, 5)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, 0]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap();
        let p = MemorySystemPlan::generate(&spec).unwrap();
        let window: Vec<Point> = p.filters().iter().map(|f| f.offset).collect();
        // Eroding a 2-row domain by a 3-row window leaves nothing.
        assert!(p.chain_next("gone", &window).is_err());
    }

    #[test]
    fn filter_order_and_user_indices() {
        let p = denoise_plan();
        assert_eq!(p.filters()[0].offset, Point::new(&[1, 0]));
        assert_eq!(p.filters()[0].user_index, 4);
        assert_eq!(p.filters()[4].offset, Point::new(&[-1, 0]));
        assert_eq!(p.filters()[4].user_index, 0);
        for (k, flt) in p.filters().iter().enumerate() {
            assert_eq!(flt.id, k);
        }
    }

    #[test]
    fn display_renders_table() {
        let s = denoise_plan().to_string();
        assert!(s.contains("FIFO_0"), "{s}");
        assert!(s.contains("1023"), "{s}");
        assert!(s.contains("BRAM"), "{s}");
        assert!(s.contains("register"), "{s}");
    }

    #[test]
    fn single_reference_plan() {
        let spec =
            StencilSpec::new("copy", Polyhedron::rect(&[(0, 7)]), vec![Point::new(&[0])]).unwrap();
        let p = MemorySystemPlan::generate(&spec).unwrap();
        assert_eq!(p.bank_count(), 0);
        assert_eq!(p.total_buffer_size(), 0);
        assert_eq!(p.offchip_streams(), 1);
    }

    #[test]
    fn clone_preserves_structure() {
        let p = denoise_plan();
        let q = p.clone();
        assert_eq!(p, q);
    }
}
