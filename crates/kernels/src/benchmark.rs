//! The [`Benchmark`] type: a named stencil kernel with its grid, window,
//! datapath arithmetic, and operation counts.

use std::fmt;

use serde::{Deserialize, Serialize};
use stencil_core::{PlanError, StencilSpec};
use stencil_polyhedral::{Point, Polyhedron};

use crate::expr::KernelExpr;

/// Datapath operation counts of one kernel iteration, used by the FPGA
/// resource model to estimate the computation kernel's footprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelOps {
    /// Floating-point additions/subtractions.
    pub adds: u32,
    /// Floating-point multiplications.
    pub muls: u32,
    /// Floating-point divisions.
    pub divs: u32,
    /// Square roots.
    pub sqrts: u32,
    /// Comparisons / absolute values / select operations.
    pub cmps: u32,
}

/// The per-iteration arithmetic of a kernel: consumes the window values
/// in the benchmark's declared offset order, produces the output value.
pub type ComputeFn = fn(&[f64]) -> f64;

/// One benchmark stencil kernel.
///
/// # Examples
///
/// ```
/// use stencil_kernels::denoise;
///
/// let b = denoise();
/// assert_eq!(b.window().len(), 5);
/// let spec = b.spec()?;
/// assert_eq!(spec.original_ii(), 5);
/// # Ok::<(), stencil_core::PlanError>(())
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct Benchmark {
    name: String,
    /// Full data-grid extents (the paper's problem size).
    extents: Vec<i64>,
    offsets: Vec<Point>,
    ops: KernelOps,
    element_bits: u32,
    #[serde(default)]
    iteration_stable: bool,
    #[serde(default)]
    shard_stable: bool,
    #[serde(default = "default_f32_rtol")]
    f32_rtol: f64,
    #[serde(skip, default = "default_compute")]
    compute: ComputeFn,
    #[serde(skip)]
    expr: Option<KernelExpr>,
}

/// The fallback datapath (plain window sum) used when a benchmark is
/// deserialized without its function pointer, and by spec-file-driven
/// tools that have window geometry but no datapath definition.
#[must_use]
pub fn default_compute() -> ComputeFn {
    |vals| vals.iter().sum()
}

/// The default f32 verification tolerance (see [`Benchmark::f32_rtol`]):
/// a few ULPs of headroom past single precision's ~1.2e-7 for shallow
/// dataflow graphs. Division/sqrt-heavy kernels override it.
fn default_f32_rtol() -> f64 {
    1e-5
}

impl Benchmark {
    /// Creates a benchmark definition.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty or dimensionality is inconsistent.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        extents: Vec<i64>,
        offsets: Vec<Point>,
        ops: KernelOps,
        compute: ComputeFn,
    ) -> Self {
        assert!(!offsets.is_empty(), "window must be non-empty");
        assert!(
            offsets.iter().all(|f| f.dims() == extents.len()),
            "offset dimensionality mismatch"
        );
        Self {
            name: name.into(),
            extents,
            offsets,
            ops,
            element_bits: StencilSpec::DEFAULT_ELEMENT_BITS,
            iteration_stable: false,
            shard_stable: false,
            f32_rtol: default_f32_rtol(),
            compute,
            expr: None,
        }
    }

    /// Overrides the f32 verification tolerance (see
    /// [`Benchmark::f32_rtol`]).
    ///
    /// # Panics
    ///
    /// Panics if `rtol` is not finite and positive.
    #[must_use]
    pub fn with_f32_rtol(mut self, rtol: f64) -> Self {
        assert!(
            rtol.is_finite() && rtol > 0.0,
            "f32 tolerance must be finite and positive, got {rtol}"
        );
        self.f32_rtol = rtol;
        self
    }

    /// Maximum relative error allowed between this kernel's f32
    /// datapath and the f64 reference, per output element against the
    /// max-magnitude scale of the reference. Defaults to `1e-5`;
    /// kernels whose dataflow amplifies rounding (division chains,
    /// square roots of small differences) declare a looser bound.
    #[must_use]
    pub fn f32_rtol(&self) -> f64 {
        self.f32_rtol
    }

    /// Declares the kernel *iteration-stable*: applying it to its own
    /// output is the intended workload (Jacobi/heat-style relaxation on
    /// a like-typed grid), so execution layers may time-step it with
    /// `Session::iterate`. Kernels that change the value semantics
    /// (edge magnitudes, strided interpolation) stay unmarked.
    #[must_use]
    pub fn with_iteration_stable(mut self) -> Self {
        self.iteration_stable = true;
        self
    }

    /// Whether repeated self-application of this kernel is meaningful
    /// (see [`Benchmark::with_iteration_stable`]).
    #[must_use]
    pub fn iteration_stable(&self) -> bool {
        self.iteration_stable
    }

    /// Declares the kernel *shard-stable*: the datapath is a pure
    /// function of its window (no cross-row or cross-shard state), so
    /// splitting the grid into halo-overlapped row bands along the
    /// outermost dimension and merging the band outputs reproduces the
    /// unsharded run bit for bit. Serving layers only auto-shard marked
    /// kernels; unmarked ones always run whole.
    #[must_use]
    pub fn with_shard_stable(mut self) -> Self {
        self.shard_stable = true;
        self
    }

    /// Whether halo-overlapped row-band sharding of this kernel is
    /// exact (see [`Benchmark::with_shard_stable`]).
    #[must_use]
    pub fn shard_stable(&self) -> bool {
        self.shard_stable
    }

    /// Attaches the [`KernelExpr`] form of the datapath — the same
    /// formula as `compute`, in the compilable IR. Execution backends
    /// that lower the expression validate it against the closure on
    /// construction, so the two stay the reference/compiled pair of one
    /// kernel.
    ///
    /// # Panics
    ///
    /// Panics if the expression references a tap at or beyond the
    /// window size.
    #[must_use]
    pub fn with_expr(mut self, expr: KernelExpr) -> Self {
        if let Some(k) = expr.max_tap() {
            assert!(
                k < self.offsets.len(),
                "expression taps v[{k}] but the window has {} points",
                self.offsets.len()
            );
        }
        self.expr = Some(expr);
        self
    }

    /// The datapath as a compilable [`KernelExpr`], when the benchmark
    /// carries one (all suite benchmarks do; hand-built benchmarks may
    /// only have the closure).
    #[must_use]
    pub fn expr(&self) -> Option<&KernelExpr> {
        self.expr.as_ref()
    }

    /// Sets the data element width in bits (e.g. 16 for imaging pixels).
    #[must_use]
    pub fn with_element_bits(mut self, bits: u32) -> Self {
        self.element_bits = bits;
        self
    }

    /// The data element width in bits.
    #[must_use]
    pub fn element_bits(&self) -> u32 {
        self.element_bits
    }

    /// The kernel name (upper-case, as in the paper's tables).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full data-grid extents used in the paper's evaluation.
    #[must_use]
    pub fn extents(&self) -> &[i64] {
        &self.extents
    }

    /// The stencil window offsets, in declared (datapath) order.
    #[must_use]
    pub fn window(&self) -> &[Point] {
        &self.offsets
    }

    /// Grid dimensionality.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.extents.len()
    }

    /// Datapath operation counts.
    #[must_use]
    pub fn ops(&self) -> KernelOps {
        self.ops
    }

    /// Evaluates the kernel datapath on window values given in declared
    /// offset order.
    #[must_use]
    pub fn compute(&self, values: &[f64]) -> f64 {
        debug_assert_eq!(values.len(), self.offsets.len());
        (self.compute)(values)
    }

    /// The raw datapath function pointer, for execution backends (e.g.
    /// the parallel engine) that evaluate the kernel without borrowing
    /// the benchmark.
    #[must_use]
    pub fn compute_fn(&self) -> ComputeFn {
        self.compute
    }

    /// The iteration domain on the full grid: all iterations whose whole
    /// window stays inside `[0, extent)` per dimension.
    ///
    /// # Panics
    ///
    /// Panics if the window is wider than the grid.
    #[must_use]
    pub fn iteration_domain(&self) -> Polyhedron {
        self.iteration_domain_for(&self.extents)
    }

    /// The iteration domain for custom extents (e.g. scaled-down grids
    /// for fast tests).
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit in the grid.
    #[must_use]
    pub fn iteration_domain_for(&self, extents: &[i64]) -> Polyhedron {
        let m = extents.len();
        assert_eq!(m, self.dims(), "extent dimensionality mismatch");
        let mut bounds = Vec::with_capacity(m);
        for d in 0..m {
            let min_f = self.offsets.iter().map(|f| f[d]).min().expect("non-empty");
            let max_f = self.offsets.iter().map(|f| f[d]).max().expect("non-empty");
            let lo = -min_f.min(0);
            let hi = extents[d] - 1 - max_f.max(0);
            assert!(lo <= hi, "window does not fit grid in dimension {d}");
            bounds.push((lo, hi));
        }
        Polyhedron::rect(&bounds)
    }

    /// The stencil specification at the paper's full problem size.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from specification validation.
    pub fn spec(&self) -> Result<StencilSpec, PlanError> {
        self.spec_for(&self.extents)
    }

    /// The stencil specification on a custom grid.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from specification validation.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit the grid.
    pub fn spec_for(&self, extents: &[i64]) -> Result<StencilSpec, PlanError> {
        StencilSpec::with_element_bits(
            self.name.to_lowercase(),
            self.iteration_domain_for(extents),
            self.offsets.clone(),
            self.element_bits,
        )
    }

    /// The per-stage metadata of this kernel for temporal chaining —
    /// everything a pipeline stage needs (name, window, datapath,
    /// compilable expression), detached from the benchmark's grid
    /// extents: a chained stage runs on whatever domain the upstream
    /// stage produces, not on this benchmark's problem size.
    #[must_use]
    pub fn stage(&self) -> KernelStage {
        let mut stage = KernelStage::new(&self.name, self.offsets.clone(), self.compute);
        if let Some(expr) = &self.expr {
            stage = stage.with_expr(expr.clone());
        }
        stage
    }

    /// Reorders port values (delivered in some port-offset order, e.g.
    /// the memory system's filter order) into this benchmark's declared
    /// offset order, ready for [`Benchmark::compute`].
    ///
    /// # Panics
    ///
    /// Panics if `port_offsets` is not a permutation of the window.
    #[must_use]
    pub fn reorder_ports(&self, port_offsets: &[Point], values: &[f64]) -> Vec<f64> {
        assert_eq!(port_offsets.len(), values.len());
        self.offsets
            .iter()
            .map(|f| {
                let k = port_offsets
                    .iter()
                    .position(|p| p == f)
                    .expect("port offsets must be a permutation of the window");
                values[k]
            })
            .collect()
    }
}

/// One stage of a temporal kernel pipeline: a named window plus its
/// datapath (closure form, and optionally the compilable
/// [`KernelExpr`]), without any grid geometry. Stage metadata is what
/// execution sessions chain on — the iteration domain of stage *i+1*
/// is derived from stage *i*'s output domain and this window, so the
/// stage itself stays extent-free.
///
/// Obtain one from [`Benchmark::stage`] or build one directly for a
/// custom datapath.
#[derive(Debug, Clone)]
pub struct KernelStage {
    name: String,
    offsets: Vec<Point>,
    compute: ComputeFn,
    expr: Option<KernelExpr>,
}

impl KernelStage {
    /// Creates a stage from a window and its closure datapath.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty or dimensionality is inconsistent.
    #[must_use]
    pub fn new(name: impl Into<String>, offsets: Vec<Point>, compute: ComputeFn) -> Self {
        assert!(!offsets.is_empty(), "window must be non-empty");
        let dims = offsets[0].dims();
        assert!(
            offsets.iter().all(|f| f.dims() == dims),
            "offset dimensionality mismatch"
        );
        Self {
            name: name.into(),
            offsets,
            compute,
            expr: None,
        }
    }

    /// Attaches the compilable expression form of the datapath (same
    /// semantics as [`Benchmark::with_expr`]).
    ///
    /// # Panics
    ///
    /// Panics if the expression references a tap at or beyond the
    /// window size.
    #[must_use]
    pub fn with_expr(mut self, expr: KernelExpr) -> Self {
        if let Some(k) = expr.max_tap() {
            assert!(
                k < self.offsets.len(),
                "expression taps v[{k}] but the window has {} points",
                self.offsets.len()
            );
        }
        self.expr = Some(expr);
        self
    }

    /// The stage name (for per-stage reports and metrics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stage's window offsets, in declared (datapath) order.
    #[must_use]
    pub fn window(&self) -> &[Point] {
        &self.offsets
    }

    /// The window's dimensionality.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.offsets[0].dims()
    }

    /// The window's span per dimension (`max − min + 1` over the tap
    /// offsets): the halo extent a chained session erodes the upstream
    /// domain by, and the per-stage reuse-buffer reach the paper's
    /// Sec. 2.3 bound is computed from.
    #[must_use]
    pub fn window_extents(&self) -> Vec<i64> {
        (0..self.dims())
            .map(|d| {
                let lo = self.offsets.iter().map(|f| f[d]).min().expect("non-empty");
                let hi = self.offsets.iter().map(|f| f[d]).max().expect("non-empty");
                hi - lo + 1
            })
            .collect()
    }

    /// The closure datapath.
    #[must_use]
    pub fn compute_fn(&self) -> ComputeFn {
        self.compute
    }

    /// The compilable expression form, when the stage carries one.
    #[must_use]
    pub fn expr(&self) -> Option<&KernelExpr> {
        self.expr.as_ref()
    }
}

impl fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("extents", &self.extents)
            .field("window", &self.offsets.len())
            .finish()
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}D, {:?}, {}-point)",
            self.name,
            self.dims(),
            self.extents,
            self.offsets.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Benchmark {
        Benchmark::new(
            "TOY",
            vec![8, 8],
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, 0]),
                Point::new(&[1, 0]),
            ],
            KernelOps {
                adds: 2,
                ..KernelOps::default()
            },
            |v| v[0] + v[1] + v[2],
        )
    }

    #[test]
    fn iteration_domain_shrinks_by_window() {
        let d = toy().iteration_domain();
        assert!(d.contains(&Point::new(&[1, 0])));
        assert!(d.contains(&Point::new(&[6, 7])));
        assert!(!d.contains(&Point::new(&[0, 0])));
        assert!(!d.contains(&Point::new(&[7, 0])));
    }

    #[test]
    fn spec_roundtrip() {
        let s = toy().spec().unwrap();
        assert_eq!(s.window_size(), 3);
        assert_eq!(s.name(), "toy");
    }

    #[test]
    fn compute_applies_datapath() {
        assert_eq!(toy().compute(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn stage_metadata_mirrors_the_benchmark() {
        let b = crate::suite::denoise();
        let s = b.stage();
        assert_eq!(s.name(), b.name());
        assert_eq!(s.window(), b.window());
        assert_eq!(s.dims(), 2);
        // The 5-point cross spans 3 rows and 3 columns.
        assert_eq!(s.window_extents(), vec![3, 3]);
        assert!(s.expr().is_some());
        let w = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!((s.compute_fn())(&w), b.compute(&w));
    }

    #[test]
    #[should_panic(expected = "window has 2 points")]
    fn stage_rejects_out_of_window_expr_taps() {
        let [_, _, t2] = KernelExpr::taps::<3>();
        let _ = KernelStage::new("bad", vec![Point::new(&[0]), Point::new(&[1])], |w| w[0])
            .with_expr(t2);
    }

    #[test]
    fn reorder_ports_permutes() {
        let b = toy();
        // Ports delivered in descending filter order: (1,0), (0,0), (-1,0).
        let port_offsets = [
            Point::new(&[1, 0]),
            Point::new(&[0, 0]),
            Point::new(&[-1, 0]),
        ];
        let vals = b.reorder_ports(&port_offsets, &[30.0, 20.0, 10.0]);
        assert_eq!(vals, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "window does not fit")]
    fn oversized_window_panics() {
        let b = Benchmark::new(
            "BAD",
            vec![2],
            vec![Point::new(&[-3]), Point::new(&[3])],
            KernelOps::default(),
            |v| v[0],
        );
        let _ = b.iteration_domain();
    }

    #[test]
    fn with_expr_attaches_and_validates_taps() {
        let b = toy();
        assert!(b.expr().is_none());
        let b = b.with_expr(KernelExpr::window_sum(3));
        let e = b.expr().expect("expr attached");
        assert_eq!(e.eval(&[1.0, 2.0, 3.0]), b.compute(&[1.0, 2.0, 3.0]));
    }

    #[test]
    #[should_panic(expected = "expression taps v[3]")]
    fn with_expr_rejects_out_of_window_taps() {
        let _ = toy().with_expr(KernelExpr::tap(3));
    }

    #[test]
    fn f32_rtol_defaults_and_overrides() {
        let b = toy();
        assert_eq!(b.f32_rtol(), 1e-5);
        assert_eq!(b.with_f32_rtol(3e-4).f32_rtol(), 3e-4);
        // Pre-f32 serialized benchmarks carry no tolerance field; the
        // `#[serde(default = "default_f32_rtol")]` attribute makes
        // deserialization fall back to the same default `new` uses.
        assert_eq!(default_f32_rtol(), 1e-5);
        // Loosened suite kernels stay within an order of magnitude.
        assert_eq!(crate::suite::rician().f32_rtol(), 1e-4);
        assert_eq!(crate::suite::segmentation_3d().f32_rtol(), 1e-4);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn f32_rtol_rejects_non_positive() {
        let _ = toy().with_f32_rtol(0.0);
    }

    #[test]
    fn display_and_debug() {
        let b = toy();
        assert_eq!(b.to_string(), "TOY (2D, [8, 8], 3-point)");
        assert!(format!("{b:?}").contains("TOY"));
    }
}
