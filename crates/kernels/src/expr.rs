//! A small arithmetic IR for kernel datapaths.
//!
//! [`KernelExpr`] describes the per-iteration arithmetic of a stencil
//! kernel as an expression tree over window taps and constants. It is
//! the *compilable* twin of the closure datapath ([`crate::ComputeFn`]):
//! the closure defines reference semantics, the expression carries the
//! same formula in a form execution backends can lower (the engine
//! compiles it to a flat stack bytecode and sweeps it over whole rows).
//!
//! Expressions are built with ordinary Rust operators, so a kernel's
//! expression reads exactly like its closure — and, crucially, parses
//! to the *same association order*, which keeps compiled evaluation
//! bit-identical to the closure under IEEE-754 arithmetic:
//!
//! ```
//! use stencil_kernels::KernelExpr;
//!
//! let [n, w, c, e, s] = KernelExpr::taps::<5>();
//! let expr = c.clone() + 0.2 * (n + s + e + w - 4.0 * c);
//! let window = [1.0, 2.0, 3.0, 4.0, 5.0];
//! let closure = |v: &[f64]| v[2] + 0.2 * (v[0] + v[4] + v[3] + v[1] - 4.0 * v[2]);
//! assert_eq!(expr.eval(&window), closure(&window));
//! ```

use std::fmt;
use std::ops;

/// An arithmetic expression over stencil window taps.
///
/// `Tap(k)` reads the window value at declared offset position `k` —
/// the same position the closure datapath reads as `v[k]`. The fused
/// [`KernelExpr::MulAdd`] form evaluates as `a * b + c` with *two*
/// roundings (it is a dispatch fusion, not an FMA contraction), so
/// fusing never changes results.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelExpr {
    /// The window value at declared offset position `k`.
    Tap(usize),
    /// A literal constant.
    Const(f64),
    /// Sum of two subexpressions.
    Add(Box<KernelExpr>, Box<KernelExpr>),
    /// Difference of two subexpressions.
    Sub(Box<KernelExpr>, Box<KernelExpr>),
    /// Product of two subexpressions.
    Mul(Box<KernelExpr>, Box<KernelExpr>),
    /// Quotient of two subexpressions.
    Div(Box<KernelExpr>, Box<KernelExpr>),
    /// Square root of a subexpression.
    Sqrt(Box<KernelExpr>),
    /// Absolute value of a subexpression.
    Abs(Box<KernelExpr>),
    /// Fused special form `a * b + c`, evaluated with the same two
    /// roundings as the unfused pair.
    MulAdd(Box<KernelExpr>, Box<KernelExpr>, Box<KernelExpr>),
}

impl KernelExpr {
    /// The window tap at position `k`.
    #[must_use]
    pub fn tap(k: usize) -> Self {
        KernelExpr::Tap(k)
    }

    /// A literal constant.
    #[must_use]
    pub fn constant(c: f64) -> Self {
        KernelExpr::Const(c)
    }

    /// The first `N` taps as an array — destructure to name them:
    /// `let [n, w, c, e, s] = KernelExpr::taps::<5>();`.
    #[must_use]
    pub fn taps<const N: usize>() -> [Self; N] {
        std::array::from_fn(KernelExpr::Tap)
    }

    /// The plain window sum over `n` taps, folded from `0.0` exactly
    /// like `vals.iter().sum::<f64>()` — the expression form of
    /// [`crate::default_compute`].
    #[must_use]
    pub fn window_sum(n: usize) -> Self {
        (0..n)
            .map(KernelExpr::Tap)
            .fold(KernelExpr::Const(0.0), |acc, t| acc + t)
    }

    /// Square root of this expression.
    #[must_use]
    pub fn sqrt(self) -> Self {
        KernelExpr::Sqrt(Box::new(self))
    }

    /// Absolute value of this expression.
    #[must_use]
    pub fn abs(self) -> Self {
        KernelExpr::Abs(Box::new(self))
    }

    /// The fused form `self * b + c` (two roundings, see [`KernelExpr::MulAdd`]).
    #[must_use]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        KernelExpr::MulAdd(Box::new(self), Box::new(b), Box::new(c))
    }

    /// Evaluates the expression on window values in declared offset
    /// order — the IR's reference semantics. Backends that lower the
    /// expression must reproduce this bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if a tap position is out of `window`'s range.
    #[must_use]
    pub fn eval(&self, window: &[f64]) -> f64 {
        match self {
            KernelExpr::Tap(k) => window[*k],
            KernelExpr::Const(c) => *c,
            KernelExpr::Add(a, b) => a.eval(window) + b.eval(window),
            KernelExpr::Sub(a, b) => a.eval(window) - b.eval(window),
            KernelExpr::Mul(a, b) => a.eval(window) * b.eval(window),
            KernelExpr::Div(a, b) => a.eval(window) / b.eval(window),
            KernelExpr::Sqrt(a) => a.eval(window).sqrt(),
            KernelExpr::Abs(a) => a.eval(window).abs(),
            KernelExpr::MulAdd(a, b, c) => a.eval(window) * b.eval(window) + c.eval(window),
        }
    }

    /// The highest tap position referenced, or `None` for a constant
    /// expression.
    #[must_use]
    pub fn max_tap(&self) -> Option<usize> {
        match self {
            KernelExpr::Tap(k) => Some(*k),
            KernelExpr::Const(_) => None,
            KernelExpr::Sqrt(a) | KernelExpr::Abs(a) => a.max_tap(),
            KernelExpr::Add(a, b)
            | KernelExpr::Sub(a, b)
            | KernelExpr::Mul(a, b)
            | KernelExpr::Div(a, b) => a.max_tap().max(b.max_tap()),
            KernelExpr::MulAdd(a, b, c) => a.max_tap().max(b.max_tap()).max(c.max_tap()),
        }
    }

    /// Number of nodes in the expression tree.
    #[must_use]
    pub fn node_count(&self) -> usize {
        match self {
            KernelExpr::Tap(_) | KernelExpr::Const(_) => 1,
            KernelExpr::Sqrt(a) | KernelExpr::Abs(a) => 1 + a.node_count(),
            KernelExpr::Add(a, b)
            | KernelExpr::Sub(a, b)
            | KernelExpr::Mul(a, b)
            | KernelExpr::Div(a, b) => 1 + a.node_count() + b.node_count(),
            KernelExpr::MulAdd(a, b, c) => 1 + a.node_count() + b.node_count() + c.node_count(),
        }
    }
}

impl fmt::Display for KernelExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelExpr::Tap(k) => write!(f, "v[{k}]"),
            KernelExpr::Const(c) => write!(f, "{c}"),
            KernelExpr::Add(a, b) => write!(f, "({a} + {b})"),
            KernelExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            KernelExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            KernelExpr::Div(a, b) => write!(f, "({a} / {b})"),
            KernelExpr::Sqrt(a) => write!(f, "sqrt({a})"),
            KernelExpr::Abs(a) => write!(f, "abs({a})"),
            KernelExpr::MulAdd(a, b, c) => write!(f, "fma({a}, {b}, {c})"),
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $variant:ident) => {
        impl ops::$trait for KernelExpr {
            type Output = KernelExpr;
            fn $method(self, rhs: KernelExpr) -> KernelExpr {
                KernelExpr::$variant(Box::new(self), Box::new(rhs))
            }
        }
        impl ops::$trait<f64> for KernelExpr {
            type Output = KernelExpr;
            fn $method(self, rhs: f64) -> KernelExpr {
                KernelExpr::$variant(Box::new(self), Box::new(KernelExpr::Const(rhs)))
            }
        }
        impl ops::$trait<KernelExpr> for f64 {
            type Output = KernelExpr;
            fn $method(self, rhs: KernelExpr) -> KernelExpr {
                KernelExpr::$variant(Box::new(KernelExpr::Const(self)), Box::new(rhs))
            }
        }
    };
}

impl_binop!(Add, add, Add);
impl_binop!(Sub, sub, Sub);
impl_binop!(Mul, mul, Mul);
impl_binop!(Div, div, Div);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_build_the_expected_tree() {
        let e = 2.0 * KernelExpr::tap(0) + KernelExpr::tap(1) / 4.0;
        assert_eq!(
            e,
            KernelExpr::Add(
                Box::new(KernelExpr::Mul(
                    Box::new(KernelExpr::Const(2.0)),
                    Box::new(KernelExpr::Tap(0)),
                )),
                Box::new(KernelExpr::Div(
                    Box::new(KernelExpr::Tap(1)),
                    Box::new(KernelExpr::Const(4.0)),
                )),
            )
        );
        assert_eq!(e.eval(&[3.0, 8.0]), 8.0);
    }

    #[test]
    fn eval_matches_scalar_arithmetic() {
        let [a, b] = KernelExpr::taps::<2>();
        let e = (a.clone() * a - b.clone()).abs().sqrt() + b / 2.0;
        let f = |v: &[f64]| (v[0] * v[0] - v[1]).abs().sqrt() + v[1] / 2.0;
        for w in [[1.5, 2.0], [-3.0, 10.0], [0.0, 0.0], [2.0, 5.0]] {
            assert_eq!(e.eval(&w), f(&w));
        }
    }

    #[test]
    fn mul_add_has_unfused_rounding() {
        let e = KernelExpr::tap(0).mul_add(KernelExpr::tap(1), KernelExpr::tap(2));
        // A case where fused FMA differs from two roundings: the product
        // 0.1 * 10.0 is not exactly 1.0 in binary64.
        let w = [0.1, 10.0, -1.0];
        assert_eq!(e.eval(&w), 0.1f64 * 10.0 + -1.0);
        assert_eq!(e.to_string(), "fma(v[0], v[1], v[2])");
    }

    #[test]
    fn window_sum_matches_iter_sum() {
        let e = KernelExpr::window_sum(5);
        let w = [1.0, 2.5, -3.0, 4.0, 0.125];
        assert_eq!(e.eval(&w), w.iter().sum::<f64>());
        assert_eq!(e.max_tap(), Some(4));
    }

    #[test]
    fn max_tap_and_node_count() {
        assert_eq!(KernelExpr::constant(3.0).max_tap(), None);
        let e = KernelExpr::tap(7) + KernelExpr::constant(1.0);
        assert_eq!(e.max_tap(), Some(7));
        assert_eq!(e.node_count(), 3);
        let fma = KernelExpr::tap(0).mul_add(KernelExpr::tap(9), KernelExpr::constant(0.5));
        assert_eq!(fma.max_tap(), Some(9));
        assert_eq!(fma.node_count(), 4);
    }

    #[test]
    fn display_is_parenthesized_infix() {
        let [a, b] = KernelExpr::taps::<2>();
        let e = (a + 2.0 * b).sqrt();
        assert_eq!(e.to_string(), "sqrt((v[0] + (2 * v[1])))");
    }
}
