//! # stencil-kernels
//!
//! The benchmark kernels of the DAC'14 non-uniform reuse-buffer paper's
//! evaluation (§5.1) — DENOISE, RICIAN, SOBEL, BICUBIC, DENOISE_3D,
//! SEGMENTATION_3D — plus extra classic stencils for wider validation,
//! and a golden software executor that defines the reference semantics
//! the accelerator must reproduce.
//!
//! Each [`Benchmark`] bundles the data-grid extents, the stencil window,
//! per-iteration datapath arithmetic (for end-to-end value checking),
//! and operation counts (for FPGA resource estimation).
//!
//! # Example
//!
//! ```
//! use stencil_core::MemorySystemPlan;
//! use stencil_kernels::{paper_suite, segmentation_3d};
//!
//! // Plan memory systems for the whole paper suite.
//! for bench in paper_suite() {
//!     let plan = MemorySystemPlan::generate(&bench.spec()?)?;
//!     assert_eq!(plan.bank_count(), bench.window().len() - 1);
//! }
//! // Fig. 6(c): 19 references -> 18 banks (vs 20 for uniform cyclic).
//! let seg = segmentation_3d();
//! let plan = MemorySystemPlan::generate(&seg.spec()?)?;
//! assert_eq!(plan.bank_count(), 18);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod accel;
mod benchmark;
mod expr;
mod extras;
mod golden;
mod suite;

pub use accel::{accelerate, accelerate_steps, AcceleratedRun};
pub use benchmark::{default_compute, Benchmark, ComputeFn, KernelOps, KernelStage};
pub use expr::KernelExpr;
pub use extras::{
    asymmetric_2d, blur3x3, extra_suite, fused_denoise, gaussian_3x3, heat_1d, high_order_2d,
    jacobi_2d, relax_2d, skewed_denoise,
};
pub use golden::{run_golden, GridValues};
pub use suite::{
    bicubic, denoise, denoise_3d, find_benchmark, paper_suite, rician, segmentation_3d, sobel,
};
