//! Additional kernels beyond the paper's six benchmarks: classic
//! stencils used for wider validation, ablations, and the skewed-grid
//! experiment of Fig. 9.

use stencil_core::{PlanError, StencilSpec};
use stencil_polyhedral::{Constraint, Point, Polyhedron};

use crate::benchmark::{Benchmark, KernelOps};
use crate::expr::KernelExpr;

/// JACOBI_2D (2D, 512×512): the standard 5-point Jacobi relaxation —
/// same window as DENOISE with plain averaging.
#[must_use]
pub fn jacobi_2d() -> Benchmark {
    Benchmark::new(
        "JACOBI_2D",
        vec![512, 512],
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ],
        KernelOps {
            adds: 4,
            muls: 1,
            ..KernelOps::default()
        },
        |v| 0.2 * (v[0] + v[1] + v[2] + v[3] + v[4]),
    )
    .with_iteration_stable()
    .with_shard_stable()
    .with_expr({
        let [t0, t1, t2, t3, t4] = KernelExpr::taps::<5>();
        0.2 * (t0 + t1 + t2 + t3 + t4)
    })
}

/// RELAX_2D (2D, 512×512): damped Jacobi relaxation with ω = 0.8 —
/// the canonical convergent time-stepper. Each step moves the center
/// 80% of the way toward its neighbour average, so on any bounded
/// field the per-step max-abs update contracts geometrically: the
/// reference workload for `iterate_until`-style convergence detection.
#[must_use]
pub fn relax_2d() -> Benchmark {
    Benchmark::new(
        "RELAX_2D",
        vec![512, 512],
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ],
        KernelOps {
            adds: 5,
            muls: 2,
            ..KernelOps::default()
        },
        |v| 0.2 * v[2] + 0.2 * (v[0] + v[1] + v[3] + v[4]),
    )
    .with_iteration_stable()
    .with_shard_stable()
    .with_expr({
        let [t0, t1, t2, t3, t4] = KernelExpr::taps::<5>();
        0.2 * t2 + 0.2 * (t0 + t1 + t3 + t4)
    })
}

/// GAUSSIAN_3X3 (2D, 512×512): full 9-point Gaussian blur — a
/// rectangular window, the easy case for uniform partitioning; included
/// to show the non-uniform design matches it too.
#[must_use]
pub fn gaussian_3x3() -> Benchmark {
    let mut offsets = Vec::with_capacity(9);
    for a in -1..=1i64 {
        for b in -1..=1i64 {
            offsets.push(Point::new(&[a, b]));
        }
    }
    Benchmark::new(
        "GAUSSIAN_3X3",
        vec![512, 512],
        offsets,
        KernelOps {
            adds: 8,
            muls: 3,
            ..KernelOps::default()
        },
        |v| {
            let w = [1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0];
            v.iter().zip(&w).map(|(x, c)| x * c).sum::<f64>() / 16.0
        },
    )
    .with_iteration_stable()
    .with_shard_stable()
    .with_expr({
        // `sum()` folds from 0.0; keep that exact order.
        let w = [1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0];
        let weighted = w
            .iter()
            .enumerate()
            .fold(KernelExpr::constant(0.0), |acc, (k, &c)| {
                acc + KernelExpr::tap(k) * c
            });
        weighted / 16.0
    })
}

/// BLUR3X3 (2D, 768×1024): the unweighted 9-point box blur on the
/// DENOISE grid — the canonical post-processing stage for
/// heterogeneous temporal chains (e.g. DENOISE followed by BLUR3X3),
/// where the downstream window differs from the upstream one and the
/// inter-stage reuse buffer is sized from *this* stage's own halo.
#[must_use]
pub fn blur3x3() -> Benchmark {
    let mut offsets = Vec::with_capacity(9);
    for a in -1..=1i64 {
        for b in -1..=1i64 {
            offsets.push(Point::new(&[a, b]));
        }
    }
    Benchmark::new(
        "BLUR3X3",
        vec![768, 1024],
        offsets,
        KernelOps {
            adds: 8,
            divs: 1,
            ..KernelOps::default()
        },
        |v| v.iter().sum::<f64>() / 9.0,
    )
    .with_iteration_stable()
    .with_shard_stable()
    // `sum()` folds from 0.0; `window_sum` keeps that exact order.
    .with_expr(KernelExpr::window_sum(9) / 9.0)
}

/// HEAT_1D (1D, 4096): the 3-point explicit heat-equation step — the
/// smallest interesting chain (two depth-1 FIFOs).
#[must_use]
pub fn heat_1d() -> Benchmark {
    Benchmark::new(
        "HEAT_1D",
        vec![4096],
        vec![Point::new(&[-1]), Point::new(&[0]), Point::new(&[1])],
        KernelOps {
            adds: 3,
            muls: 1,
            ..KernelOps::default()
        },
        |v| v[1] + 0.25 * (v[0] - 2.0 * v[1] + v[2]),
    )
    .with_iteration_stable()
    .with_shard_stable()
    .with_expr({
        let [t0, t1, t2] = KernelExpr::taps::<3>();
        t1.clone() + 0.25 * (t0 - 2.0 * t1 + t2)
    })
}

/// A wide fused window: DENOISE after one step of loop fusion (§2.1:
/// "the stencil window is large... after loop fusion of stencil
/// applications for computation reduction"): the 13-point double cross
/// reaching distance 2.
#[must_use]
pub fn fused_denoise() -> Benchmark {
    let mut offsets = Vec::new();
    for a in -2..=2i64 {
        for b in -2..=2i64 {
            if a.abs() + b.abs() <= 2 {
                offsets.push(Point::new(&[a, b]));
            }
        }
    }
    debug_assert_eq!(offsets.len(), 13);
    Benchmark::new(
        "FUSED_DENOISE",
        vec![768, 1024],
        offsets,
        KernelOps {
            adds: 14,
            muls: 3,
            ..KernelOps::default()
        },
        |v| {
            let sum: f64 = v.iter().sum();
            let center = v[6];
            center + 0.04 * (sum - 13.0 * center)
        },
    )
    .with_shard_stable()
    .with_expr({
        let sum = KernelExpr::window_sum(13);
        let center = KernelExpr::tap(6);
        center.clone() + 0.04 * (sum - 13.0 * center)
    })
}

/// The skewed-grid DENOISE variant of Fig. 9: the rectangular grid is
/// iterated along the 45° direction after loop skewing (`t = r + c`),
/// so the wavefront rows (antidiagonals) grow and shrink in length and
/// the reuse distances between references change dynamically as
/// execution advances.
///
/// `rows`/`cols` are the original rectangle's interior extents. The
/// 5-point cross maps under the skew to
/// `{(1,1),(1,0),(0,0),(-1,0),(-1,-1)}`.
///
/// Returns a ready [`StencilSpec`] (the skewed iteration domain is not
/// derivable from extents alone, so this is not a [`Benchmark`]).
///
/// # Errors
///
/// Propagates [`PlanError`] from specification validation.
pub fn skewed_denoise(rows: i64, cols: i64) -> Result<StencilSpec, PlanError> {
    // Skewed coordinates (t, c) with t = r + c over the rectangle
    // 1 <= r <= rows, 1 <= c <= cols:
    //   1 <= c <= cols  and  1 <= t - c <= rows.
    let iter = Polyhedron::new(
        2,
        vec![
            Constraint::lower_bound(2, 1, 1),
            Constraint::upper_bound(2, 1, cols),
            Constraint::new(&[1, -1], -1),   // t - c >= 1
            Constraint::new(&[-1, 1], rows), // t - c <= rows
        ],
    );
    StencilSpec::new(
        "skewed_denoise",
        iter,
        vec![
            Point::new(&[-1, -1]), // original (0,-1): west
            Point::new(&[-1, 0]),  // original (-1,0): north
            Point::new(&[0, 0]),   // center
            Point::new(&[1, 0]),   // original (1,0): south
            Point::new(&[1, 1]),   // original (0,1): east
        ],
    )
}

/// HIGH_ORDER_2D (2D, 512×512): the 9-point fourth-order Laplacian
/// star — taps at distance 1 and 2 along each axis. Its non-unit gaps
/// produce FIFO sizes of both `W` and `1` *and* a depth-2 register
/// FIFO, exercising every storage tier at once.
#[must_use]
pub fn high_order_2d() -> Benchmark {
    Benchmark::new(
        "HIGH_ORDER_2D",
        vec![512, 512],
        vec![
            Point::new(&[-2, 0]),
            Point::new(&[-1, 0]),
            Point::new(&[0, -2]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[0, 2]),
            Point::new(&[1, 0]),
            Point::new(&[2, 0]),
        ],
        KernelOps {
            adds: 8,
            muls: 3,
            ..KernelOps::default()
        },
        |v| {
            // 4th-order: (16*(n1+s1+e1+w1) - (n2+s2+e2+w2) - 60*c) / 12.
            let c = v[4];
            let near = v[1] + v[3] + v[5] + v[7];
            let far = v[0] + v[2] + v[6] + v[8];
            c + (16.0 * near - far - 60.0 * c) / 720.0
        },
    )
    .with_shard_stable()
    .with_expr({
        let [t0, t1, t2, t3, c, t5, t6, t7, t8] = KernelExpr::taps::<9>();
        let near = t1 + t3 + t5 + t7;
        let far = t0 + t2 + t6 + t8;
        c.clone() + (16.0 * near - far - 60.0 * c) / 720.0
    })
}

/// ASYMMETRIC_2D (2D, 512×512): a deliberately lopsided 4-point window
/// (upwind-biased advection taps) — no symmetry for any partitioning
/// heuristic to exploit.
#[must_use]
pub fn asymmetric_2d() -> Benchmark {
    Benchmark::new(
        "ASYMMETRIC_2D",
        vec![512, 512],
        vec![
            Point::new(&[-2, 1]),
            Point::new(&[-1, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 2]),
        ],
        KernelOps {
            adds: 3,
            muls: 3,
            ..KernelOps::default()
        },
        |v| 0.5 * v[2] + 0.25 * v[1] + 0.15 * v[0] + 0.1 * v[3],
    )
    .with_shard_stable()
    .with_expr({
        let [t0, t1, t2, t3] = KernelExpr::taps::<4>();
        0.5 * t2 + 0.25 * t1 + 0.15 * t0 + 0.1 * t3
    })
}

/// Extra kernels for extended validation (excludes the skewed spec,
/// which has its own constructor).
#[must_use]
pub fn extra_suite() -> Vec<Benchmark> {
    vec![
        jacobi_2d(),
        relax_2d(),
        gaussian_3x3(),
        blur3x3(),
        heat_1d(),
        fused_denoise(),
        high_order_2d(),
        asymmetric_2d(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra_suite_windows() {
        let sizes: Vec<usize> = extra_suite().iter().map(|b| b.window().len()).collect();
        assert_eq!(sizes, vec![5, 5, 9, 9, 3, 13, 9, 4]);
    }

    #[test]
    fn relax_preserves_constants_and_contracts() {
        let b = relax_2d();
        assert!(b.iteration_stable());
        assert!((b.compute(&[4.0; 5]) - 4.0).abs() < 1e-12);
        // One step from a unit spike at the center: the update shrinks
        // the center by the damping factor (contraction toward the
        // neighbour average).
        let out = b.compute(&[0.0, 0.0, 1.0, 0.0, 0.0]);
        assert!((out - 0.2).abs() < 1e-12);
    }

    #[test]
    fn high_order_preserves_constants() {
        assert!((high_order_2d().compute(&[3.0; 9]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_weights_sum_to_one() {
        assert!((asymmetric_2d().compute(&[1.0; 4]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_preserves_constants() {
        assert!((gaussian_3x3().compute(&[5.0; 9]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn blur_preserves_constants_and_matches_expr() {
        let b = blur3x3();
        assert!(b.iteration_stable() && b.shard_stable());
        assert!((b.compute(&[7.0; 9]) - 7.0).abs() < 1e-12);
        let vals: Vec<f64> = (0..9).map(|k| f64::from(k) * 1.25 - 3.0).collect();
        let expr = b.expr().expect("blur carries its compilable form");
        // Bit-identical, not approximately equal: the expr must fold in
        // the same order as `iter().sum()`.
        assert_eq!(expr.eval(&vals).to_bits(), b.compute(&vals).to_bits());
    }

    #[test]
    fn heat_preserves_constants() {
        assert!((heat_1d().compute(&[2.0; 3]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fused_window_is_l1_ball() {
        let b = fused_denoise();
        assert_eq!(b.window().len(), 13);
        assert!(b.window().iter().all(|f| f.l1_norm() <= 2));
        assert!((b.compute(&[1.0; 13]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_spec_builds() {
        let spec = skewed_denoise(20, 12).unwrap();
        assert_eq!(spec.window_size(), 5);
        // (t, c) = (15, 10): r = 5 in range, c = 10 in range.
        assert!(spec
            .iteration_domain()
            .contains(&stencil_polyhedral::Point::new(&[15, 10])));
        // (t, c) = (5, 5): r = 0 outside.
        assert!(!spec
            .iteration_domain()
            .contains(&stencil_polyhedral::Point::new(&[5, 5])));
    }

    #[test]
    fn skewed_rows_vary_in_length() {
        let spec = skewed_denoise(20, 12).unwrap();
        let idx = spec.iteration_domain().index().unwrap();
        let lens: Vec<u64> = idx.rows().iter().map(|r| r.len()).collect();
        let min = lens.iter().min().unwrap();
        let max = lens.iter().max().unwrap();
        assert_eq!(*min, 1);
        assert_eq!(*max, 12);
    }
}
