//! The benchmark suite of the paper's evaluation (§5.1) plus extras.
//!
//! "DENOISE (2D/3D), RICIAN (2D), and SEGMENTATION (3D) are from medical
//! imaging \[11\]. BICUBIC (2D) is from bicubic interpolation \[13\].
//! SOBEL (2D) is from the Sobel edge detection algorithm \[14\]." The
//! window shapes for RICIAN and BICUBIC (drawn but not printed in the
//! paper's Fig. 6) are reconstructed so the documented baseline
//! behaviour holds: both need 5 banks under affine cyclic partitioning.

use stencil_polyhedral::Point;

use crate::benchmark::{Benchmark, KernelOps};
use crate::expr::KernelExpr;

/// DENOISE (2D, 768×1024): the 5-point total-variation denoising window
/// of the paper's Fig. 1/2 — one damped-Laplacian relaxation step.
#[must_use]
pub fn denoise() -> Benchmark {
    Benchmark::new(
        "DENOISE",
        vec![768, 1024],
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ],
        KernelOps {
            adds: 5,
            muls: 2,
            ..KernelOps::default()
        },
        |v| {
            let (n, w, c, e, s) = (v[0], v[1], v[2], v[3], v[4]);
            c + 0.2 * (n + s + e + w - 4.0 * c)
        },
    )
    .with_element_bits(16)
    .with_shard_stable()
    .with_iteration_stable()
    .with_expr({
        let [n, w, c, e, s] = KernelExpr::taps::<5>();
        c.clone() + 0.2 * (n + s + e + w - 4.0 * c)
    })
}

/// RICIAN (2D, 768×1024): the 4-point centerless cross of the
/// Rician-noise removal PDE (Fig. 6b) — the restored-image neighbour
/// average feeding the fixed-point update.
#[must_use]
pub fn rician() -> Benchmark {
    Benchmark::new(
        "RICIAN",
        vec![768, 1024],
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ],
        KernelOps {
            adds: 3,
            muls: 2,
            divs: 1,
            sqrts: 1,
            ..KernelOps::default()
        },
        |v| {
            let avg = 0.25 * (v[0] + v[1] + v[2] + v[3]);
            // Rician correction: attenuate by the noise-floor ratio.
            (avg * avg / (avg.abs() + 1.0)).sqrt()
        },
    )
    .with_element_bits(16)
    .with_shard_stable()
    // The divide-then-sqrt chain amplifies single-precision rounding,
    // so the f32 datapath gets a looser verification bound.
    .with_f32_rtol(1e-4)
    .with_expr({
        let [t0, t1, t2, t3] = KernelExpr::taps::<4>();
        let avg = 0.25 * (t0 + t1 + t2 + t3);
        (avg.clone() * avg.clone() / (avg.abs() + 1.0)).sqrt()
    })
}

/// SOBEL (2D, 1024×1024): the 8-point 3×3-minus-center window of Sobel
/// edge detection (gradient magnitude, L1 norm).
#[must_use]
pub fn sobel() -> Benchmark {
    Benchmark::new(
        "SOBEL",
        vec![1024, 1024],
        vec![
            Point::new(&[-1, -1]),
            Point::new(&[-1, 0]),
            Point::new(&[-1, 1]),
            Point::new(&[0, -1]),
            Point::new(&[0, 1]),
            Point::new(&[1, -1]),
            Point::new(&[1, 0]),
            Point::new(&[1, 1]),
        ],
        KernelOps {
            adds: 10,
            muls: 4,
            cmps: 2,
            ..KernelOps::default()
        },
        |v| {
            let (nw, n, ne, w, e, sw, s, se) = (v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7]);
            let gx = (ne + 2.0 * e + se) - (nw + 2.0 * w + sw);
            let gy = (sw + 2.0 * s + se) - (nw + 2.0 * n + ne);
            gx.abs() + gy.abs()
        },
    )
    .with_element_bits(16)
    .with_shard_stable()
    .with_expr({
        let [nw, n, ne, w, e, sw, s, se] = KernelExpr::taps::<8>();
        let gx = (ne.clone() + 2.0 * e + se.clone()) - (nw.clone() + 2.0 * w + sw.clone());
        let gy = (sw + 2.0 * s + se) - (nw + 2.0 * n + ne);
        gx.abs() + gy.abs()
    })
}

/// BICUBIC (2D, 1024×1024): a 4-point stride-2 window (Fig. 6a) — the
/// interpolation kernel reads the coarse source grid at even offsets,
/// here the 1-D cubic midpoint formula applied per output phase.
#[must_use]
pub fn bicubic() -> Benchmark {
    Benchmark::new(
        "BICUBIC",
        vec![1024, 1024],
        vec![
            Point::new(&[0, 0]),
            Point::new(&[0, 2]),
            Point::new(&[2, 0]),
            Point::new(&[2, 2]),
        ],
        KernelOps {
            adds: 3,
            muls: 4,
            ..KernelOps::default()
        },
        |v| (9.0 * (v[0] + v[3]) - (v[1] + v[2])) / 16.0,
    )
    .with_element_bits(16)
    .with_shard_stable()
    .with_expr({
        let [t0, t1, t2, t3] = KernelExpr::taps::<4>();
        (9.0 * (t0 + t3) - (t1 + t2)) / 16.0
    })
}

/// DENOISE_3D (3D, 96×96×96): the 7-point face-neighbour window — the
/// volumetric variant of DENOISE.
#[must_use]
pub fn denoise_3d() -> Benchmark {
    Benchmark::new(
        "DENOISE_3D",
        vec![96, 96, 96],
        vec![
            Point::new(&[-1, 0, 0]),
            Point::new(&[0, -1, 0]),
            Point::new(&[0, 0, -1]),
            Point::new(&[0, 0, 0]),
            Point::new(&[0, 0, 1]),
            Point::new(&[0, 1, 0]),
            Point::new(&[1, 0, 0]),
        ],
        KernelOps {
            adds: 7,
            muls: 2,
            ..KernelOps::default()
        },
        |v| {
            let c = v[3];
            let sum: f64 = v[0] + v[1] + v[2] + v[4] + v[5] + v[6];
            c + 0.1 * (sum - 6.0 * c)
        },
    )
    .with_element_bits(16)
    .with_shard_stable()
    .with_iteration_stable()
    .with_expr({
        let [t0, t1, t2, c, t4, t5, t6] = KernelExpr::taps::<7>();
        let sum = t0 + t1 + t2 + t4 + t5 + t6;
        c.clone() + 0.1 * (sum - 6.0 * c)
    })
}

/// SEGMENTATION_3D (3D, 96×96×96): the 19-point window of Fig. 6(c) —
/// the full 3×3×3 neighbourhood minus its 8 corners, as used by the
/// level-set segmentation kernel.
#[must_use]
pub fn segmentation_3d() -> Benchmark {
    let mut offsets = Vec::with_capacity(19);
    for a in -1..=1i64 {
        for b in -1..=1i64 {
            for c in -1..=1i64 {
                if a != 0 && b != 0 && c != 0 {
                    continue; // corners excluded
                }
                offsets.push(Point::new(&[a, b, c]));
            }
        }
    }
    debug_assert_eq!(offsets.len(), 19);
    Benchmark::new(
        "SEGMENTATION_3D",
        vec![96, 96, 96],
        offsets,
        KernelOps {
            adds: 20,
            muls: 4,
            divs: 1,
            cmps: 2,
            ..KernelOps::default()
        },
        |v| {
            // Curvature-like smoothing: faces weighted 2, edges 1.
            let center = v[9]; // offset (0,0,0) is the 10th in lex order
            let mut faces = 0.0;
            let mut edges = 0.0;
            for (k, &val) in v.iter().enumerate() {
                if k == 9 {
                    continue;
                }
                // Reconstruct the L1 norm from the lex position: faces
                // are the 6 single-axis offsets.
                if FACE_POSITIONS.contains(&k) {
                    faces += val;
                } else {
                    edges += val;
                }
            }
            center + (2.0 * faces + edges - 24.0 * center) / 32.0
        },
    )
    .with_element_bits(16)
    .with_shard_stable()
    // The 18-term accumulation compounds f32 rounding across the long
    // add chain; relax the f32 verification bound accordingly.
    .with_f32_rtol(1e-4)
    .with_expr({
        // Mirror the closure's accumulation order exactly: both running
        // sums start at 0.0 and take taps in ascending lex position.
        let mut faces = KernelExpr::constant(0.0);
        let mut edges = KernelExpr::constant(0.0);
        for k in 0..19 {
            if k == 9 {
                continue;
            }
            if FACE_POSITIONS.contains(&k) {
                faces = faces + KernelExpr::tap(k);
            } else {
                edges = edges + KernelExpr::tap(k);
            }
        }
        let center = KernelExpr::tap(9);
        center.clone() + (2.0 * faces + edges - 24.0 * center) / 32.0
    })
    .with_iteration_stable()
}

/// Lex positions of the 6 face neighbours among the 19 offsets of
/// [`segmentation_3d`] (offsets are generated in lexicographic order).
const FACE_POSITIONS: [usize; 6] = [2, 6, 8, 10, 12, 16];

/// The six benchmarks of the paper's Table 4/5, in table order.
#[must_use]
pub fn paper_suite() -> Vec<Benchmark> {
    vec![
        denoise(),
        rician(),
        sobel(),
        bicubic(),
        denoise_3d(),
        segmentation_3d(),
    ]
}

/// Looks a benchmark up by (case-insensitive) name across the paper and
/// extra suites.
#[must_use]
pub fn find_benchmark(name: &str) -> Option<Benchmark> {
    paper_suite()
        .into_iter()
        .chain(crate::extras::extra_suite())
        .find(|b| b.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_composition() {
        let suite = paper_suite();
        let names: Vec<&str> = suite.iter().map(Benchmark::name).collect();
        assert_eq!(
            names,
            vec![
                "DENOISE",
                "RICIAN",
                "SOBEL",
                "BICUBIC",
                "DENOISE_3D",
                "SEGMENTATION_3D"
            ]
        );
        let window_sizes: Vec<usize> = suite.iter().map(|b| b.window().len()).collect();
        assert_eq!(window_sizes, vec![5, 4, 8, 4, 7, 19]);
    }

    #[test]
    fn iteration_stable_marks_the_relaxation_kernels() {
        // Relaxations consume and produce like-typed grids; SOBEL emits
        // gradient magnitudes and BICUBIC reads a strided coarse grid,
        // so neither is meaningful to self-iterate. RICIAN's fixed-point
        // update rewrites values through a sqrt, not a damped average.
        let stable: Vec<String> = paper_suite()
            .iter()
            .filter(|b| b.iteration_stable())
            .map(|b| b.name().to_owned())
            .collect();
        assert_eq!(stable, vec!["DENOISE", "DENOISE_3D", "SEGMENTATION_3D"]);
    }

    #[test]
    fn find_benchmark_by_name() {
        assert_eq!(find_benchmark("denoise").unwrap().name(), "DENOISE");
        assert_eq!(find_benchmark("JACOBI_2D").unwrap().name(), "JACOBI_2D");
        assert!(find_benchmark("nope").is_none());
    }

    #[test]
    fn face_positions_are_the_single_axis_offsets() {
        let b = segmentation_3d();
        for (k, f) in b.window().iter().enumerate() {
            let is_face = f.l1_norm() == 1;
            assert_eq!(
                FACE_POSITIONS.contains(&k),
                is_face,
                "position {k} offset {f}"
            );
        }
    }

    #[test]
    fn denoise_identity_on_constant_field() {
        // A constant field is a fixed point of the relaxation.
        let b = denoise();
        assert!((b.compute(&[3.0; 5]) - 3.0).abs() < 1e-12);
        let b3 = denoise_3d();
        assert!((b3.compute(&[3.0; 7]) - 3.0).abs() < 1e-12);
        let seg = segmentation_3d();
        assert!((seg.compute(&[3.0; 19]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn sobel_zero_on_flat_image() {
        assert_eq!(sobel().compute(&[7.0; 8]), 0.0);
    }

    #[test]
    fn sobel_detects_vertical_edge() {
        // Left half 0, right half 1 => strong |gx|.
        //   nw n ne   0 0 1
        //   w  .  e   0 . 1
        //   sw s se   0 0 1
        let v = [0.0, 0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0];
        assert!(sobel().compute(&v) >= 4.0);
    }

    #[test]
    fn bicubic_interpolates_linear_ramp() {
        // On a linear ramp the cubic midpoint formula is exact.
        // Values at coarse points (0,0), (0,2), (2,0), (2,2) of f = x + y.
        let v = [0.0, 2.0, 2.0, 4.0];
        let out = bicubic().compute(&v);
        assert!((out - (9.0 * 4.0 - 4.0) / 16.0).abs() < 1e-12);
    }

    #[test]
    fn rician_nonnegative() {
        let out = rician().compute(&[1.0, 2.0, 3.0, 4.0]);
        assert!(out >= 0.0);
        assert!(out.is_finite());
    }

    #[test]
    fn full_size_specs_validate() {
        for b in paper_suite() {
            let spec = b.spec().unwrap();
            assert_eq!(spec.window_size(), b.window().len());
            assert_eq!(spec.dims(), b.dims());
        }
    }

    #[test]
    fn every_suite_expr_is_bit_identical_to_its_closure() {
        // Deterministic pseudo-random windows; the expressions mirror
        // the closures' association order, so equality is exact.
        let mut state = 0x5EED_0004_u64;
        for b in paper_suite()
            .into_iter()
            .chain(crate::extras::extra_suite())
        {
            let e = b
                .expr()
                .unwrap_or_else(|| panic!("{} has no expr", b.name()));
            assert_eq!(e.max_tap(), Some(b.window().len() - 1), "{}", b.name());
            for _ in 0..64 {
                let window: Vec<f64> = (0..b.window().len())
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 33) as f64) / 1e8 - 42.0
                    })
                    .collect();
                let got = e.eval(&window);
                let want = b.compute(&window);
                assert!(
                    got == want || (got.is_nan() && want.is_nan()),
                    "{}: expr {got} != closure {want} on {window:?}",
                    b.name()
                );
            }
        }
    }
}
