//! Golden software execution of stencil kernels — the reference
//! semantics the accelerator must match (the "original user code" of the
//! paper's Fig. 1, run directly).

use stencil_core::PlanError;
use stencil_polyhedral::{DomainIndex, Point, Polyhedron};

use crate::benchmark::Benchmark;

/// A data grid holding one `f64` per point of a domain, addressed by
/// grid coordinates via the domain's lexicographic rank.
///
/// # Examples
///
/// ```
/// use stencil_kernels::GridValues;
/// use stencil_polyhedral::{Point, Polyhedron};
///
/// let grid = GridValues::from_fn(&Polyhedron::grid(&[4, 4]), |p| {
///     (p[0] * 10 + p[1]) as f64
/// })?;
/// assert_eq!(grid.value_at(&Point::new(&[2, 3])), Some(23.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct GridValues {
    index: DomainIndex,
    values: Vec<f64>,
}

impl GridValues {
    /// Fills a grid by evaluating `f` at every domain point.
    ///
    /// # Errors
    ///
    /// Propagates domain-indexing failures as [`PlanError`].
    pub fn from_fn(
        domain: &Polyhedron,
        mut f: impl FnMut(&Point) -> f64,
    ) -> Result<Self, PlanError> {
        let index = domain.index().map_err(PlanError::from)?;
        let mut values = Vec::with_capacity(index.len() as usize);
        let mut c = index.cursor();
        while let Some(p) = c.point(&index) {
            values.push(f(&p));
            c.advance(&index);
        }
        Ok(Self { index, values })
    }

    /// The domain index backing this grid.
    #[must_use]
    pub fn index(&self) -> &DomainIndex {
        &self.index
    }

    /// Number of stored values.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.index.len()
    }

    /// True if the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at grid point `p`, or `None` if outside the domain.
    #[must_use]
    pub fn value_at(&self, p: &Point) -> Option<f64> {
        if self.index.contains(p) {
            Some(self.values[self.index.rank_lt(p) as usize])
        } else {
            None
        }
    }

    /// The value with the given lexicographic rank (stream order) — how
    /// the simulator's element ids map back to data.
    #[must_use]
    pub fn value_by_rank(&self, rank: u64) -> Option<f64> {
        self.values.get(rank as usize).copied()
    }

    /// The backing values in lexicographic rank order — the flat view
    /// execution backends index directly (rank `r` ↦ `values()[r]`).
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Runs a benchmark kernel in software over its iteration domain (at
/// custom extents), reading inputs from `grid`. Outputs are produced in
/// lexicographic iteration order — the same order the accelerator's
/// kernel fires.
///
/// # Errors
///
/// Propagates specification/indexing failures as [`PlanError`].
///
/// # Panics
///
/// Panics if `grid` does not cover the benchmark's input domain.
pub fn run_golden(
    bench: &Benchmark,
    extents: &[i64],
    grid: &GridValues,
) -> Result<Vec<f64>, PlanError> {
    let iter = bench.iteration_domain_for(extents);
    let iter_index = iter.index().map_err(PlanError::from)?;
    let mut out = Vec::with_capacity(iter_index.len() as usize);
    let mut window = vec![0.0f64; bench.window().len()];
    let mut c = iter_index.cursor();
    while let Some(i) = c.point(&iter_index) {
        for (k, f) in bench.window().iter().enumerate() {
            let h = i + *f;
            window[k] = grid
                .value_at(&h)
                .unwrap_or_else(|| panic!("grid missing value at {h}"));
        }
        out.push(bench.compute(&window));
        c.advance(&iter_index);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::denoise;

    #[test]
    fn grid_values_roundtrip() {
        let g = GridValues::from_fn(&Polyhedron::grid(&[3, 3]), |p| (p[0] + p[1]) as f64).unwrap();
        assert_eq!(g.len(), 9);
        assert!(!g.is_empty());
        assert_eq!(g.value_at(&Point::new(&[1, 2])), Some(3.0));
        assert_eq!(g.value_at(&Point::new(&[3, 0])), None);
        assert_eq!(g.value_by_rank(0), Some(0.0));
        assert_eq!(g.value_by_rank(8), Some(4.0));
        assert_eq!(g.value_by_rank(9), None);
    }

    #[test]
    fn golden_denoise_on_constant_grid() {
        let bench = denoise();
        let extents = [8i64, 8];
        let grid = GridValues::from_fn(&Polyhedron::grid(&extents), |_| 4.0).unwrap();
        let out = run_golden(&bench, &extents, &grid).unwrap();
        assert_eq!(out.len(), 36);
        assert!(out.iter().all(|&v| (v - 4.0).abs() < 1e-12));
    }

    #[test]
    fn golden_outputs_in_lex_order() {
        // A ramp input: the first output corresponds to iteration (1,1).
        let bench = denoise();
        let extents = [6i64, 6];
        let grid =
            GridValues::from_fn(&Polyhedron::grid(&extents), |p| (p[0] * 6 + p[1]) as f64).unwrap();
        let out = run_golden(&bench, &extents, &grid).unwrap();
        // For a linear field the damped Laplacian is the identity.
        assert!((out[0] - 7.0).abs() < 1e-12);
        assert_eq!(out.len(), 16);
    }
}
