//! One-call accelerated execution: plan, simulate cycle-accurately, and
//! compute real output values — the complete "run this kernel on the
//! accelerator" path used by examples and end-to-end tests.

use stencil_core::MemorySystemPlan;
use stencil_sim::{Machine, RunStats, SimError};

use crate::benchmark::Benchmark;
use crate::golden::GridValues;

/// The result of an accelerated run.
#[derive(Debug, Clone)]
pub struct AcceleratedRun {
    /// Output values in lexicographic iteration order — directly
    /// comparable to [`crate::run_golden`].
    pub outputs: Vec<f64>,
    /// Cycle-accurate statistics of the run.
    pub stats: RunStats,
}

/// Runs `bench` on the simulated accelerator over `grid`, producing
/// real output values by applying the kernel datapath to each fired
/// element tuple.
///
/// The grid must cover the benchmark's input data domain at `extents`.
///
/// # Errors
///
/// * [`SimError::Plan`] (wrapping `PlanError`) on specification
///   failures.
/// * Simulation errors, including functional mismatches.
///
/// # Panics
///
/// Panics if `grid` does not cover the input domain.
///
/// # Examples
///
/// ```
/// use stencil_kernels::{accelerate, denoise, run_golden, GridValues};
/// use stencil_polyhedral::Polyhedron;
///
/// let bench = denoise();
/// let extents = [16i64, 20];
/// let grid = GridValues::from_fn(&Polyhedron::grid(&extents), |p| {
///     (p[0] * 3 + p[1]) as f64
/// })?;
/// let run = accelerate(&bench, &extents, &grid)?;
/// let golden = run_golden(&bench, &extents, &grid)?;
/// assert_eq!(run.outputs, golden); // bit-exact
/// assert!(run.stats.fully_pipelined());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn accelerate(
    bench: &Benchmark,
    extents: &[i64],
    grid: &GridValues,
) -> Result<AcceleratedRun, SimError> {
    let spec = bench.spec_for(extents)?;
    let plan = MemorySystemPlan::generate(&spec)?;
    let mut machine = Machine::new(&plan)?;
    let port_offsets = machine.port_offsets(0).to_vec();
    let mut outputs = Vec::new();
    let mut values = vec![0.0f64; port_offsets.len()];
    while !machine.is_done() {
        machine.step()?;
        if let Some(fire) = machine.last_fire() {
            for (v, e) in values.iter_mut().zip(&fire.ports[0]) {
                *v = grid
                    .value_by_rank(e.id())
                    .unwrap_or_else(|| panic!("grid missing stream rank {}", e.id()));
            }
            let ordered = bench.reorder_ports(&port_offsets, &values);
            outputs.push(bench.compute(&ordered));
        }
    }
    Ok(AcceleratedRun {
        outputs,
        stats: machine.stats(),
    })
}

/// Runs `steps` successive applications of the kernel on the simulated
/// accelerator — the multi-stage pipeline of Appendix 9.3 evaluated
/// value-exactly. Step `t` iterates the grid's interior shrunk by `t`
/// window radii; each step's outputs become the next step's input grid.
///
/// Returns the final step's outputs (lexicographic order over its
/// iteration domain).
///
/// # Errors
///
/// Propagates planning/simulation failures.
///
/// # Panics
///
/// Panics if `steps == 0` or the grid becomes too small for the window.
pub fn accelerate_steps(
    bench: &Benchmark,
    extents: &[i64],
    grid: &GridValues,
    steps: usize,
) -> Result<Vec<f64>, SimError> {
    assert!(steps > 0, "need at least one step");
    let mut current = grid.clone();
    let mut current_extents = extents.to_vec();
    let mut outputs = Vec::new();
    for _ in 0..steps {
        let run = accelerate(bench, &current_extents, &current)?;
        outputs = run.outputs;
        // The outputs live on the iteration domain, which becomes the
        // next step's data grid (re-based to zero).
        let iter = bench.iteration_domain_for(&current_extents);
        let idx = iter.index().map_err(stencil_core::PlanError::from)?;
        let bb = idx.bounding_box().expect("non-empty iteration domain");
        let next_extents: Vec<i64> = bb.iter().map(|&(lo, hi)| hi - lo + 1).collect();
        let offset: Vec<i64> = bb.iter().map(|&(lo, _)| lo).collect();
        let values = outputs.clone();
        current = GridValues::from_fn(&stencil_polyhedral::Polyhedron::grid(&next_extents), |p| {
            let shifted: Vec<i64> = p
                .as_slice()
                .iter()
                .zip(&offset)
                .map(|(&c, &o)| c + o)
                .collect();
            let rank = idx.rank_lt(&stencil_polyhedral::Point::new(&shifted));
            values[rank as usize]
        })
        .map_err(SimError::Plan)?;
        current_extents = next_extents;
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::run_golden;
    use crate::suite::{bicubic, sobel};
    use stencil_polyhedral::Polyhedron;

    fn ramp(extents: &[i64]) -> GridValues {
        GridValues::from_fn(&Polyhedron::grid(extents), |p| {
            p.as_slice()
                .iter()
                .enumerate()
                .map(|(d, &c)| (c * (7 + d as i64 * 13)) as f64)
                .sum::<f64>()
                * 0.25
        })
        .unwrap()
    }

    #[test]
    fn sobel_accelerated_matches_golden() {
        let bench = sobel();
        let extents = [14i64, 18];
        let grid = ramp(&extents);
        let run = accelerate(&bench, &extents, &grid).unwrap();
        let golden = run_golden(&bench, &extents, &grid).unwrap();
        assert_eq!(run.outputs, golden);
        assert!(run.stats.fully_pipelined());
        assert_eq!(run.outputs.len(), 12 * 16);
    }

    #[test]
    fn bicubic_accelerated_matches_golden() {
        let bench = bicubic();
        let extents = [12i64, 12];
        let grid = ramp(&extents);
        let run = accelerate(&bench, &extents, &grid).unwrap();
        let golden = run_golden(&bench, &extents, &grid).unwrap();
        assert_eq!(run.outputs, golden);
    }

    #[test]
    fn multi_step_matches_iterated_golden() {
        let bench = crate::suite::denoise();
        let extents = [14i64, 16];
        let grid = ramp(&extents);
        let accelerated = accelerate_steps(&bench, &extents, &grid, 3).unwrap();

        // Golden: iterate run_golden by hand with the same re-basing.
        let mut cur = grid.clone();
        let mut cur_extents = extents.to_vec();
        let mut golden = Vec::new();
        for _ in 0..3 {
            golden = run_golden(&bench, &cur_extents, &cur).unwrap();
            let iter = bench.iteration_domain_for(&cur_extents);
            let idx = iter.index().unwrap();
            let bb = idx.bounding_box().unwrap();
            let next: Vec<i64> = bb.iter().map(|&(lo, hi)| hi - lo + 1).collect();
            let off: Vec<i64> = bb.iter().map(|&(lo, _)| lo).collect();
            let vals = golden.clone();
            cur = GridValues::from_fn(&stencil_polyhedral::Polyhedron::grid(&next), |p| {
                let shifted: Vec<i64> = p
                    .as_slice()
                    .iter()
                    .zip(&off)
                    .map(|(&c, &o)| c + o)
                    .collect();
                vals[idx.rank_lt(&stencil_polyhedral::Point::new(&shifted)) as usize]
            })
            .unwrap();
            cur_extents = next;
        }
        assert_eq!(accelerated, golden);
        assert_eq!(accelerated.len(), 8 * 10); // shrunk by 3 on each side
    }

    #[test]
    fn whole_paper_suite_is_bit_exact() {
        for bench in crate::suite::paper_suite() {
            let extents: Vec<i64> = match bench.dims() {
                2 => vec![12, 14],
                _ => vec![8, 8, 8],
            };
            let grid = ramp(&extents);
            let run = accelerate(&bench, &extents, &grid).unwrap();
            let golden = run_golden(&bench, &extents, &grid).unwrap();
            assert_eq!(run.outputs, golden, "{}", bench.name());
        }
    }
}
