//! Reuse-distance analysis (Definitions 7–9 and Properties 2–3 of the
//! paper).
//!
//! The reuse distance from reference `A_x` to `A_y` at data index `h` is
//! the number of input-domain elements `g` with `h ≺_l g ⪯_l h + r`,
//! where `r = f_x - f_y` is the constant reuse-distance vector. The
//! **maximum** reuse distance over the downstream data domain is the FIFO capacity
//! the non-uniform microarchitecture allocates between the two adjacent
//! references (deadlock-free condition 2, Eq. (2)).

use crate::error::PolyError;
use crate::index::DomainIndex;
use crate::order::{lex_cmp, lex_positive};
use crate::point::Point;

use std::cmp::Ordering;

/// The constant reuse-distance vector `r = f_x - f_y` from the reference
/// with offset `f_x` to the one with offset `f_y` (Property 2).
///
/// Positive (lexicographically) iff `A_x` accesses each element *before*
/// `A_y` does.
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::{reuse_vector, Point};
///
/// // From A[i+1][j] to A[i-1][j]: r = (2, 0).
/// let r = reuse_vector(&Point::new(&[1, 0]), &Point::new(&[-1, 0]));
/// assert_eq!(r, Point::new(&[2, 0]));
/// ```
#[must_use]
pub fn reuse_vector(f_x: &Point, f_y: &Point) -> Point {
    *f_x - *f_y
}

/// The reuse distance at a single data index `h` (Definition 8): the
/// number of input-domain points `g` with `h ≺_l g ⪯_l h + r`.
///
/// `input` must index the array's input data domain `D_A`.
///
/// # Panics
///
/// Panics on dimensionality mismatches.
#[must_use]
pub fn reuse_distance_at(input: &DomainIndex, h: &Point, r: &Point) -> u64 {
    let target = *h + *r;
    match lex_cmp(&target, h) {
        Ordering::Greater => input.rank_le(&target) - input.rank_le(h),
        // r = 0: the same element, distance 0; r ≺ 0 has no forward reuse.
        Ordering::Equal | Ordering::Less => 0,
    }
}

/// The **maximum reuse distance** `r̄(A_x → A_y)` (Definition 9): the
/// maximum of [`reuse_distance_at`] over all `h` in `eval_domain`.
///
/// `input` indexes the input data domain `D_A`; `r = f_x - f_y` must be
/// lexicographically positive (`A_x` is the earlier reference).
///
/// For sizing the reuse FIFO between adjacent references, pass the data
/// domain of the **later** reference `D_Ay` as `eval_domain`: when the
/// kernel fires at iteration `i`, the chain between the two filters holds
/// exactly the input elements in `(i + f_y, i + f_x]`, which is the
/// interval `(h, h + r]` with `h = i + f_y ∈ D_Ay`. (The paper states the
/// equivalent definition with the opposite sign convention; on rectangular
/// grids the two evaluations coincide by translation invariance, but on
/// skewed grids — Fig. 9 — only the `D_Ay` evaluation bounds the true
/// occupancy.)
///
/// Within one innermost row, the distance is non-increasing in
/// the innermost coordinate (both ranks advance at unit rate until
/// `h + r` runs off the end of its row), so the maximum is attained at a
/// row start; this routine therefore only probes the `O(#rows)` row
/// endpoints. [`max_reuse_distance_exhaustive`] is the brute-force
/// oracle used to validate this in tests.
///
/// # Errors
///
/// * [`PolyError::NonPositiveReuse`] if `r` is not lexicographically
///   positive.
/// * [`PolyError::EmptyDomain`] if `eval_domain` is empty.
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::{max_reuse_distance, Point, Polyhedron};
///
/// // DENOISE: from A[i+1][j] to A[i-1][j] over A[0..767][0..1023].
/// let input = Polyhedron::grid(&[768, 1024]).index()?;
/// let iter = Polyhedron::rect(&[(1, 766), (1, 1022)]);
/// let d_a0 = iter.translated(&Point::new(&[1, 0])).index()?;
/// let dist = max_reuse_distance(&input, &d_a0, &Point::new(&[2, 0]))?;
/// assert_eq!(dist, 2048);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn max_reuse_distance(
    input: &DomainIndex,
    eval_domain: &DomainIndex,
    r: &Point,
) -> Result<u64, PolyError> {
    if !lex_positive(r) {
        return Err(PolyError::NonPositiveReuse {
            vector: r.to_string(),
        });
    }
    if eval_domain.is_empty() {
        return Err(PolyError::EmptyDomain);
    }
    let mut max = 0u64;
    for row in eval_domain.rows() {
        let start = row.prefix.pushed(row.lo);
        let end = row.prefix.pushed(row.hi);
        max = max
            .max(reuse_distance_at(input, &start, r))
            .max(reuse_distance_at(input, &end, r));
    }
    Ok(max)
}

/// Brute-force maximum reuse distance over **every** point of `eval_domain`.
///
/// Exponentially slower than [`max_reuse_distance`] on large grids; used
/// as a test oracle.
///
/// # Errors
///
/// Same as [`max_reuse_distance`].
pub fn max_reuse_distance_exhaustive(
    input: &DomainIndex,
    eval_domain: &DomainIndex,
    r: &Point,
) -> Result<u64, PolyError> {
    if !lex_positive(r) {
        return Err(PolyError::NonPositiveReuse {
            vector: r.to_string(),
        });
    }
    if eval_domain.is_empty() {
        return Err(PolyError::EmptyDomain);
    }
    let mut max = 0u64;
    let mut c = eval_domain.cursor();
    while let Some(h) = c.point(eval_domain) {
        max = max.max(reuse_distance_at(input, &h, r));
        c.advance(eval_domain);
    }
    Ok(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::polyhedron::Polyhedron;

    fn denoise_input() -> DomainIndex {
        Polyhedron::grid(&[768, 1024]).index().unwrap()
    }

    fn denoise_iter() -> Polyhedron {
        Polyhedron::rect(&[(1, 766), (1, 1022)])
    }

    #[test]
    fn paper_example_adjacent_distances() {
        // Table 2 of the paper: FIFO sizes 1023, 1, 1, 1023.
        let input = denoise_input();
        let iter = denoise_iter();
        let offsets = [
            Point::new(&[1, 0]),
            Point::new(&[0, 1]),
            Point::new(&[0, 0]),
            Point::new(&[0, -1]),
            Point::new(&[-1, 0]),
        ];
        let expected = [1023u64, 1, 1, 1023];
        for (k, exp) in expected.iter().enumerate() {
            let r = reuse_vector(&offsets[k], &offsets[k + 1]);
            let dax = iter.translated(&offsets[k]).index().unwrap();
            let d = max_reuse_distance(&input, &dax, &r).unwrap();
            assert_eq!(d, *exp, "FIFO_{k}");
        }
    }

    #[test]
    fn paper_example_total_distance() {
        // §2.3: A[2][2] first accessed by A[i+1][j], last by A[i-1][j],
        // 2048 cycles apart.
        let input = denoise_input();
        let dax = denoise_iter()
            .translated(&Point::new(&[1, 0]))
            .index()
            .unwrap();
        let d = max_reuse_distance(&input, &dax, &Point::new(&[2, 0])).unwrap();
        assert_eq!(d, 2048);
    }

    #[test]
    fn linearity_property() {
        // Property 3: r̄(A_x→A_z) = r̄(A_x→A_y) + r̄(A_y→A_z).
        let input = denoise_input();
        let iter = denoise_iter();
        let f = [
            Point::new(&[1, 0]),
            Point::new(&[0, 1]),
            Point::new(&[0, 0]),
            Point::new(&[0, -1]),
            Point::new(&[-1, 0]),
        ];
        let d_first = iter.translated(&f[0]).index().unwrap();
        let total = max_reuse_distance(&input, &d_first, &reuse_vector(&f[0], &f[4])).unwrap();
        let mut sum = 0;
        for k in 0..4 {
            let dax = iter.translated(&f[k]).index().unwrap();
            sum += max_reuse_distance(&input, &dax, &reuse_vector(&f[k], &f[k + 1])).unwrap();
        }
        assert_eq!(total, sum);
        assert_eq!(total, 2048);
    }

    #[test]
    fn non_positive_vector_rejected() {
        let input = denoise_input();
        let dax = denoise_iter().index().unwrap();
        let err = max_reuse_distance(&input, &dax, &Point::new(&[0, -1])).unwrap_err();
        assert!(matches!(err, PolyError::NonPositiveReuse { .. }));
        let err = max_reuse_distance(&input, &dax, &Point::new(&[0, 0])).unwrap_err();
        assert!(matches!(err, PolyError::NonPositiveReuse { .. }));
    }

    #[test]
    fn empty_from_domain_rejected() {
        let input = denoise_input();
        let empty = Polyhedron::rect(&[(1, 0), (0, 1)]).index().unwrap();
        let err = max_reuse_distance(&input, &empty, &Point::new(&[1, 0])).unwrap_err();
        assert_eq!(err, PolyError::EmptyDomain);
    }

    #[test]
    fn distance_at_zero_or_negative_vector_is_zero() {
        let input = denoise_input();
        let h = Point::new(&[5, 5]);
        assert_eq!(reuse_distance_at(&input, &h, &Point::new(&[0, 0])), 0);
        assert_eq!(reuse_distance_at(&input, &h, &Point::new(&[-1, 0])), 0);
    }

    #[test]
    fn row_endpoint_method_matches_exhaustive_on_skewed_domain() {
        // Fig. 9-style skewed grid where the reuse distance changes
        // dynamically: 0 <= i <= 7, i <= j <= i + 5.
        let skew = Polyhedron::new(
            2,
            vec![
                Constraint::lower_bound(2, 0, 0),
                Constraint::upper_bound(2, 0, 7),
                Constraint::new(&[-1, 1], 0),
                Constraint::new(&[1, -1], 5),
            ],
        );
        let offsets = [
            Point::new(&[1, 1]),
            Point::new(&[1, -1]),
            Point::new(&[0, 0]),
            Point::new(&[-1, 1]),
            Point::new(&[-1, -1]),
        ];
        let input = skew.dilated(&offsets).index().unwrap();
        for x in 0..offsets.len() {
            for y in (x + 1)..offsets.len() {
                let r = reuse_vector(&offsets[x], &offsets[y]);
                if !lex_positive(&r) {
                    continue;
                }
                let dax = skew.translated(&offsets[x]).index().unwrap();
                let fast = max_reuse_distance(&input, &dax, &r).unwrap();
                let slow = max_reuse_distance_exhaustive(&input, &dax, &r).unwrap();
                assert_eq!(fast, slow, "pair {x}->{y}, r={r}");
            }
        }
    }

    #[test]
    fn distance_in_3d() {
        let input = Polyhedron::grid(&[10, 10, 10]).index().unwrap();
        let iter = Polyhedron::rect(&[(1, 8), (1, 8), (1, 8)]);
        let dax = iter.translated(&Point::new(&[1, 0, 0])).index().unwrap();
        // From A[i+1][j][k] to A[i-1][j][k]: two full planes = 200.
        let d = max_reuse_distance(&input, &dax, &Point::new(&[2, 0, 0])).unwrap();
        assert_eq!(d, 200);
    }
}
