//! Error types for polyhedral analysis.

use std::error::Error;
use std::fmt;

/// Errors produced by polyhedral-domain operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolyError {
    /// A dimension of the polyhedron has no finite lower or upper bound,
    /// so its integer points cannot be enumerated.
    Unbounded {
        /// The loop level (0 = outermost) lacking a bound.
        dim: usize,
        /// Whether the missing bound is the lower one.
        lower: bool,
    },
    /// An operation that requires a non-empty domain was applied to an
    /// empty one.
    EmptyDomain,
    /// A reuse-distance query was made for a lexicographically
    /// non-positive reuse vector (the "from" reference would not be the
    /// earlier access).
    NonPositiveReuse {
        /// Display form of the offending reuse vector.
        vector: String,
    },
}

impl fmt::Display for PolyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolyError::Unbounded { dim, lower } => write!(
                f,
                "polyhedron is unbounded {} in dimension {dim}",
                if *lower { "below" } else { "above" }
            ),
            PolyError::EmptyDomain => write!(f, "domain contains no integer points"),
            PolyError::NonPositiveReuse { vector } => {
                write!(f, "reuse vector {vector} is not lexicographically positive")
            }
        }
    }
}

impl Error for PolyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PolyError::Unbounded {
            dim: 1,
            lower: true,
        };
        assert_eq!(
            e.to_string(),
            "polyhedron is unbounded below in dimension 1"
        );
        let e = PolyError::Unbounded {
            dim: 0,
            lower: false,
        };
        assert_eq!(
            e.to_string(),
            "polyhedron is unbounded above in dimension 0"
        );
        assert_eq!(
            PolyError::EmptyDomain.to_string(),
            "domain contains no integer points"
        );
        let e = PolyError::NonPositiveReuse {
            vector: "(0, -1)".to_owned(),
        };
        assert!(e.to_string().contains("(0, -1)"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error + Send + Sync> = Box::new(PolyError::EmptyDomain);
        assert!(e.source().is_none());
    }
}
