//! Convex integer polyhedra: iteration domains and data domains
//! (Definitions 1 and 5 of the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::constraint::Constraint;
use crate::error::PolyError;
use crate::fourier_motzkin::LevelSystem;
use crate::index::DomainIndex;
use crate::iter::LexPoints;
use crate::point::{Point, MAX_DIMS};

/// A convex polyhedron `{ x ∈ Z^m | P·x ≥ b }` described by linear
/// inequality constraints.
///
/// This is the representation of both *iteration domains* (Definition 1)
/// and *data domains* (Definition 5). Grids need not be rectangular: the
/// skewed domain of Fig. 9 is expressed with cross-dimension constraints.
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::{Point, Polyhedron};
///
/// // The DENOISE iteration domain: 1 <= i <= 766, 1 <= j <= 1022.
/// let dom = Polyhedron::rect(&[(1, 766), (1, 1022)]);
/// assert!(dom.contains(&Point::new(&[1, 1])));
/// assert!(!dom.contains(&Point::new(&[0, 1])));
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Polyhedron {
    dims: usize,
    constraints: Vec<Constraint>,
}

impl Polyhedron {
    /// Creates a polyhedron from explicit constraints.
    ///
    /// # Panics
    ///
    /// Panics if `dims` exceeds [`MAX_DIMS`] or any constraint has a
    /// different dimensionality.
    #[must_use]
    pub fn new(dims: usize, constraints: Vec<Constraint>) -> Self {
        assert!(dims <= MAX_DIMS, "dims {dims} exceeds MAX_DIMS={MAX_DIMS}");
        for c in &constraints {
            assert_eq!(c.dims(), dims, "constraint dimensionality mismatch");
        }
        Self { dims, constraints }
    }

    /// Creates an axis-aligned box with inclusive per-dimension bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or longer than [`MAX_DIMS`].
    #[must_use]
    pub fn rect(bounds: &[(i64, i64)]) -> Self {
        assert!(
            !bounds.is_empty() && bounds.len() <= MAX_DIMS,
            "box must have 1..={MAX_DIMS} dimensions"
        );
        let dims = bounds.len();
        let mut constraints = Vec::with_capacity(2 * dims);
        for (d, &(lo, hi)) in bounds.iter().enumerate() {
            constraints.push(Constraint::lower_bound(dims, d, lo));
            constraints.push(Constraint::upper_bound(dims, d, hi));
        }
        Self { dims, constraints }
    }

    /// Creates the rectangular grid `[0, ext_0) × … × [0, ext_{m-1})` from
    /// exclusive extents, matching C array declarations like
    /// `A[768][1024]`.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero, or on dimension violations as in
    /// [`Polyhedron::rect`].
    #[must_use]
    pub fn grid(extents: &[i64]) -> Self {
        assert!(
            extents.iter().all(|&e| e > 0),
            "grid extents must be positive"
        );
        let bounds: Vec<(i64, i64)> = extents.iter().map(|&e| (0, e - 1)).collect();
        Self::rect(&bounds)
    }

    /// Number of dimensions of the ambient space.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The defining constraints.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// True if `p` satisfies every constraint.
    ///
    /// # Panics
    ///
    /// Panics if `p.dims() != self.dims()`.
    #[must_use]
    pub fn contains(&self, p: &Point) -> bool {
        self.constraints.iter().all(|c| c.holds(p))
    }

    /// Returns a copy with one extra constraint.
    #[must_use]
    pub fn with_constraint(&self, c: Constraint) -> Self {
        assert_eq!(c.dims(), self.dims, "constraint dimensionality mismatch");
        let mut out = self.clone();
        out.constraints.push(c);
        out
    }

    /// Intersection of two polyhedra over the same space.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    #[must_use]
    pub fn intersection(&self, other: &Polyhedron) -> Self {
        assert_eq!(self.dims, other.dims, "dimensionality mismatch");
        let mut constraints = self.constraints.clone();
        constraints.extend_from_slice(&other.constraints);
        Self {
            dims: self.dims,
            constraints,
        }
    }

    /// Translates the polyhedron by `offset`: the result contains `x` iff
    /// `self` contains `x - offset`.
    ///
    /// A stencil reference `A_x` with offset `f_x` accesses the data domain
    /// `D_Ax = D + f_x` (Definition 5, using `h = i + f_x`).
    #[must_use]
    pub fn translated(&self, offset: &Point) -> Self {
        Self {
            dims: self.dims,
            constraints: self
                .constraints
                .iter()
                .map(|c| c.translated(offset))
                .collect(),
        }
    }

    /// The *dilation* of this polyhedron by a set of offsets: a convex
    /// superset of `⋃_x (self + f_x)`.
    ///
    /// The paper's *input data domain* (Definition 6) is the union of the
    /// per-reference data domains; like the paper (Example 4 approximates
    /// the union by `A[0..767][0..1023]`), we over-approximate the union by
    /// relaxing each constraint just enough to admit every shifted copy.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty or has mismatched dimensionality.
    #[must_use]
    pub fn dilated(&self, offsets: &[Point]) -> Self {
        assert!(!offsets.is_empty(), "dilation requires at least one offset");
        let constraints = self
            .constraints
            .iter()
            .map(|c| {
                // Constraint of copy (self + f) is c.translated(f); the union
                // needs the weakest of these, i.e. the largest constant term.
                let slack = offsets
                    .iter()
                    .map(|f| {
                        assert_eq!(f.dims(), self.dims, "offset dimensionality mismatch");
                        c.translated(f).constant() - c.constant()
                    })
                    .max()
                    .expect("non-empty offsets");
                c.relaxed(slack.max(0))
            })
            .collect();
        Self {
            dims: self.dims,
            constraints,
        }
    }

    /// The *erosion* of this polyhedron by a set of offsets: the points
    /// `p` with `p + f ∈ self` for every offset `f` — exactly
    /// `⋂_x (self - f_x)`.
    ///
    /// This is the dual of [`Polyhedron::dilated`] and the domain
    /// algebra behind temporal kernel chaining: a stage whose window is
    /// `offsets` can only fire where every tap lands inside the
    /// upstream stage's output domain, so the chained iteration domain
    /// is the upstream iteration domain eroded by the downstream
    /// window. For an intersection of half-planes the erosion is exact:
    /// each constraint `a·x + b ≥ 0` tightens to
    /// `a·x + b + min_x(a·f_x) ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty or has mismatched dimensionality.
    #[must_use]
    pub fn eroded(&self, offsets: &[Point]) -> Self {
        assert!(!offsets.is_empty(), "erosion requires at least one offset");
        let constraints = self
            .constraints
            .iter()
            .map(|c| {
                // The copy (self - f) has constant b + a·f; the
                // intersection keeps the strongest, i.e. the smallest.
                let shift = offsets
                    .iter()
                    .map(|f| {
                        assert_eq!(f.dims(), self.dims, "offset dimensionality mismatch");
                        c.coeffs()
                            .iter()
                            .zip(f.as_slice())
                            .map(|(a, x)| a * x)
                            .sum::<i64>()
                    })
                    .min()
                    .expect("non-empty offsets");
                Constraint::new(c.coeffs(), c.constant() + shift)
            })
            .collect();
        Self {
            dims: self.dims,
            constraints,
        }
    }

    /// Prepares the per-loop-level bound systems via Fourier–Motzkin
    /// elimination.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Unbounded`] if some dimension lacks a finite
    /// lower or upper bound.
    pub fn level_system(&self) -> Result<LevelSystem, PolyError> {
        LevelSystem::new(self)
    }

    /// Iterates the integer points in lexicographic order.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Unbounded`] for unbounded polyhedra.
    ///
    /// # Examples
    ///
    /// ```
    /// use stencil_polyhedral::{Point, Polyhedron};
    ///
    /// let tri = Polyhedron::rect(&[(0, 2), (0, 2)])
    ///     .with_constraint(stencil_polyhedral::Constraint::new(&[1, -1], 0)); // j <= i
    /// let pts: Vec<Point> = tri.points()?.collect();
    /// assert_eq!(pts.len(), 6);
    /// assert_eq!(pts[0], Point::new(&[0, 0]));
    /// assert_eq!(pts[5], Point::new(&[2, 2]));
    /// # Ok::<(), stencil_polyhedral::PolyError>(())
    /// ```
    pub fn points(&self) -> Result<LexPoints, PolyError> {
        Ok(LexPoints::new(self.level_system()?))
    }

    /// Builds the row/rank index over this polyhedron's integer points.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Unbounded`] for unbounded polyhedra.
    pub fn index(&self) -> Result<DomainIndex, PolyError> {
        DomainIndex::build(self)
    }

    /// Counts the integer points.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Unbounded`] for unbounded polyhedra.
    pub fn count(&self) -> Result<u64, PolyError> {
        Ok(self.index()?.len())
    }

    /// True if the polyhedron contains no integer points.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Unbounded`] for unbounded polyhedra (whose
    /// emptiness the enumeration cannot decide).
    pub fn is_empty(&self) -> Result<bool, PolyError> {
        Ok(self.points()?.next().is_none())
    }
}

impl fmt::Debug for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polyhedron{{ ")?;
        for (k, c) in self.constraints.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, " }}")
    }
}

impl fmt::Display for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_membership() {
        let b = Polyhedron::rect(&[(1, 3), (-2, 2)]);
        assert!(b.contains(&Point::new(&[1, -2])));
        assert!(b.contains(&Point::new(&[3, 2])));
        assert!(!b.contains(&Point::new(&[0, 0])));
        assert!(!b.contains(&Point::new(&[2, 3])));
    }

    #[test]
    fn grid_is_zero_based_exclusive() {
        let g = Polyhedron::grid(&[768, 1024]);
        assert!(g.contains(&Point::new(&[0, 0])));
        assert!(g.contains(&Point::new(&[767, 1023])));
        assert!(!g.contains(&Point::new(&[768, 0])));
    }

    #[test]
    fn translated_shifts_membership() {
        let dom = Polyhedron::rect(&[(1, 766), (1, 1022)]);
        let shifted = dom.translated(&Point::new(&[1, 0]));
        // D_A0 for A[i+1][j]: 2 <= i <= 767 (Example in §3.3.1).
        assert!(shifted.contains(&Point::new(&[2, 1])));
        assert!(!shifted.contains(&Point::new(&[1, 1])));
        assert!(shifted.contains(&Point::new(&[767, 1022])));
    }

    #[test]
    fn dilated_covers_all_copies() {
        let dom = Polyhedron::rect(&[(1, 766), (1, 1022)]);
        let offsets = [
            Point::new(&[1, 0]),
            Point::new(&[0, 1]),
            Point::new(&[0, 0]),
            Point::new(&[0, -1]),
            Point::new(&[-1, 0]),
        ];
        let input = dom.dilated(&offsets);
        // Example 4: input data domain is essentially A[0..767][0..1023].
        assert!(input.contains(&Point::new(&[0, 1])));
        assert!(input.contains(&Point::new(&[767, 1022])));
        assert!(input.contains(&Point::new(&[1, 0])));
        assert!(!input.contains(&Point::new(&[-1, 5])));
        assert!(!input.contains(&Point::new(&[768, 5])));
        for f in &offsets {
            let copy = dom.translated(f);
            // Spot-check copy corners are inside the dilation.
            assert!(input.contains(&Point::new(&[1 + f[0], 1 + f[1]])));
            assert!(input.contains(&Point::new(&[766 + f[0], 1022 + f[1]])));
            let _ = copy;
        }
    }

    #[test]
    fn eroded_is_the_exact_dual_of_dilated() {
        let dom = Polyhedron::rect(&[(1, 766), (1, 1022)]);
        let offsets = [
            Point::new(&[1, 0]),
            Point::new(&[0, 1]),
            Point::new(&[0, 0]),
            Point::new(&[0, -1]),
            Point::new(&[-1, 0]),
        ];
        let inner = dom.eroded(&offsets);
        // Every tap from an eroded point stays inside the domain.
        assert!(inner.contains(&Point::new(&[2, 2])));
        assert!(inner.contains(&Point::new(&[765, 1021])));
        assert!(!inner.contains(&Point::new(&[1, 5])));
        assert!(!inner.contains(&Point::new(&[766, 5])));
        for f in &offsets {
            assert!(dom.contains(&(Point::new(&[2, 2]) + *f)));
            assert!(dom.contains(&(Point::new(&[765, 1021]) + *f)));
        }
        // Rectangles recover exactly under erode-then-dilate — the
        // invariant temporal chaining relies on (a chained stage's
        // input domain equals the upstream stage's output domain).
        let back = inner.dilated(&offsets);
        for p in [[1, 1], [1, 1022], [766, 1], [766, 1022], [300, 500]] {
            assert!(back.contains(&Point::new(&[p[0], p[1]])));
        }
        assert!(!back.contains(&Point::new(&[0, 5])));
        assert!(!back.contains(&Point::new(&[767, 5])));
        // One-sided windows erode asymmetrically and exactly.
        let fwd = [Point::new(&[0, 0]), Point::new(&[2, 0])];
        let one_sided = dom.eroded(&fwd);
        assert!(one_sided.contains(&Point::new(&[1, 1])));
        assert!(one_sided.contains(&Point::new(&[764, 1])));
        assert!(!one_sided.contains(&Point::new(&[765, 1])));
    }

    #[test]
    fn intersection_conjunction() {
        let a = Polyhedron::rect(&[(0, 10)]);
        let b = Polyhedron::rect(&[(5, 20)]);
        let i = a.intersection(&b);
        assert!(i.contains(&Point::new(&[7])));
        assert!(!i.contains(&Point::new(&[3])));
        assert!(!i.contains(&Point::new(&[15])));
    }

    #[test]
    fn count_box_and_triangle() {
        assert_eq!(Polyhedron::rect(&[(0, 4), (0, 9)]).count().unwrap(), 50);
        let tri = Polyhedron::rect(&[(0, 3), (0, 3)]).with_constraint(Constraint::new(&[1, -1], 0)); // j <= i
        assert_eq!(tri.count().unwrap(), 10);
    }

    #[test]
    fn empty_domain_counts_zero() {
        let e = Polyhedron::rect(&[(5, 3)]);
        assert_eq!(e.count().unwrap(), 0);
        assert!(e.is_empty().unwrap());
        assert!(!Polyhedron::rect(&[(0, 0)]).is_empty().unwrap());
    }

    #[test]
    fn debug_lists_constraints() {
        let s = format!("{:?}", Polyhedron::rect(&[(0, 1)]));
        assert!(s.contains("x0 >= 0"), "{s}");
    }
}
