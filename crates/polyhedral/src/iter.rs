//! Lexicographic enumeration of the integer points of a polyhedron.

use crate::fourier_motzkin::LevelSystem;
use crate::point::Point;

/// Iterator over the integer points of a polyhedron in lexicographic
/// order (outermost dimension most significant).
///
/// Produced by [`Polyhedron::points`]. The stencil property that every
/// array reference touches its data domain in lexicographic order
/// (Property 1 of the paper) makes this the canonical traversal for both
/// analysis and simulation.
///
/// [`Polyhedron::points`]: crate::Polyhedron::points
#[derive(Debug, Clone)]
pub struct LexPoints {
    sys: LevelSystem,
    cur: Vec<i64>,
    his: Vec<i64>,
    state: State,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Fresh,
    Running,
    Done,
}

impl LexPoints {
    pub(crate) fn new(sys: LevelSystem) -> Self {
        let m = sys.dims();
        let state = if sys.is_infeasible() {
            State::Done
        } else {
            State::Fresh
        };
        Self {
            sys,
            cur: vec![0; m],
            his: vec![0; m],
            state,
        }
    }

    /// Descends from `level`, filling `cur[level..]` with the first valid
    /// suffix; backtracks on empty intervals. Returns false when the
    /// iteration space is exhausted.
    fn descend(&mut self, mut level: usize) -> bool {
        let m = self.sys.dims();
        loop {
            if level == m {
                return true;
            }
            let prefix = Point::new(&self.cur[..level]);
            let (lo, hi) = self.sys.bounds(level, &prefix);
            if lo <= hi {
                self.cur[level] = lo;
                self.his[level] = hi;
                level += 1;
            } else {
                // Backtrack to the deepest outer level with headroom.
                loop {
                    if level == 0 {
                        return false;
                    }
                    level -= 1;
                    if self.cur[level] < self.his[level] {
                        self.cur[level] += 1;
                        level += 1;
                        break;
                    }
                }
            }
        }
    }
}

impl Iterator for LexPoints {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        match self.state {
            State::Done => return None,
            State::Fresh => {
                self.state = State::Running;
                if !self.descend(0) {
                    self.state = State::Done;
                    return None;
                }
            }
            State::Running => {
                let m = self.sys.dims();
                // Advance like an odometer: bump the innermost coordinate,
                // carrying outward past exhausted levels.
                let mut level = m;
                loop {
                    if level == 0 {
                        self.state = State::Done;
                        return None;
                    }
                    level -= 1;
                    if self.cur[level] < self.his[level] {
                        self.cur[level] += 1;
                        break;
                    }
                }
                if !self.descend(level + 1) {
                    self.state = State::Done;
                    return None;
                }
            }
        }
        Some(Point::new(&self.cur))
    }
}

#[cfg(test)]
mod tests {
    use crate::constraint::Constraint;
    use crate::point::Point;
    use crate::polyhedron::Polyhedron;

    #[test]
    fn box_scan_order() {
        let b = Polyhedron::rect(&[(0, 1), (0, 2)]);
        let pts: Vec<Point> = b.points().unwrap().collect();
        assert_eq!(
            pts,
            vec![
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[0, 2]),
                Point::new(&[1, 0]),
                Point::new(&[1, 1]),
                Point::new(&[1, 2]),
            ]
        );
    }

    #[test]
    fn one_dimensional() {
        let b = Polyhedron::rect(&[(-2, 1)]);
        let pts: Vec<i64> = b.points().unwrap().map(|p| p[0]).collect();
        assert_eq!(pts, vec![-2, -1, 0, 1]);
    }

    #[test]
    fn triangle_scan() {
        // j <= i over a 3x3 box.
        let t = Polyhedron::rect(&[(0, 2), (0, 2)]).with_constraint(Constraint::new(&[1, -1], 0));
        let pts: Vec<(i64, i64)> = t.points().unwrap().map(|p| (p[0], p[1])).collect();
        assert_eq!(pts, vec![(0, 0), (1, 0), (1, 1), (2, 0), (2, 1), (2, 2)]);
    }

    #[test]
    fn empty_domain_yields_nothing() {
        let e = Polyhedron::rect(&[(3, 1), (0, 5)]);
        assert_eq!(e.points().unwrap().count(), 0);
    }

    #[test]
    fn empty_by_cross_constraints() {
        let e = Polyhedron::new(
            2,
            vec![
                Constraint::lower_bound(2, 0, 0),
                Constraint::upper_bound(2, 0, 5),
                Constraint::new(&[-1, 1], -1), // j >= i + 1
                Constraint::new(&[1, -1], -1), // j <= i - 1
            ],
        );
        assert_eq!(e.points().unwrap().count(), 0);
    }

    #[test]
    fn three_dims_count() {
        let b = Polyhedron::rect(&[(0, 2), (0, 3), (0, 4)]);
        assert_eq!(b.points().unwrap().count(), 3 * 4 * 5);
    }

    #[test]
    fn order_is_lexicographic_everywhere() {
        use crate::order::lex_lt;
        let t = Polyhedron::rect(&[(0, 4), (0, 4), (0, 2)])
            .with_constraint(Constraint::new(&[1, -1, 0], 1)); // j <= i + 1
        let pts: Vec<Point> = t.points().unwrap().collect();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(lex_lt(&w[0], &w[1]), "{} !< {}", w[0], w[1]);
        }
    }
}
