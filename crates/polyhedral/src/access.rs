//! Stencil access functions (Definitions 3 and 4 of the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::point::Point;
use crate::polyhedron::Polyhedron;

/// The access function of one stencil array reference.
///
/// Definition 4 of the paper restricts stencil accesses to
/// `h = H·i + f` with `H` the identity: every reference is the iteration
/// vector plus a constant offset `f` (e.g. `A[i+1][j]` has
/// `f = (1, 0)`). The offset doubles as the reference's *data access
/// offset* used for lexicographic sorting in the microarchitecture.
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::{AccessFn, Point};
///
/// let east = AccessFn::new(Point::new(&[0, 1])); // A[i][j+1]
/// let h = east.access(&Point::new(&[2, 2]));
/// assert_eq!(h, Point::new(&[2, 3]));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessFn {
    offset: Point,
}

impl AccessFn {
    /// Creates the access function `h = i + offset`.
    #[must_use]
    pub fn new(offset: Point) -> Self {
        Self { offset }
    }

    /// The constant data-access offset `f`.
    #[must_use]
    pub fn offset(&self) -> Point {
        self.offset
    }

    /// Number of grid dimensions.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.offset.dims()
    }

    /// The data index accessed at iteration `i` (`h = i + f`, Eq. (3)).
    ///
    /// # Panics
    ///
    /// Panics if `i.dims() != self.dims()`.
    #[must_use]
    pub fn access(&self, i: &Point) -> Point {
        *i + self.offset
    }

    /// The iteration that accesses data index `h` (`i = h - f`).
    ///
    /// # Panics
    ///
    /// Panics if `h.dims() != self.dims()`.
    #[must_use]
    pub fn iteration_of(&self, h: &Point) -> Point {
        *h - self.offset
    }

    /// The data domain `D_Ax` of this reference over an iteration domain
    /// (Definition 5): the iteration domain translated by `f`.
    #[must_use]
    pub fn data_domain(&self, iteration_domain: &Polyhedron) -> Polyhedron {
        iteration_domain.translated(&self.offset)
    }
}

impl fmt::Debug for AccessFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AccessFn[A[i + {}]]", self.offset)
    }
}

impl fmt::Display for AccessFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A[i + {}]", self.offset)
    }
}

impl From<Point> for AccessFn {
    fn from(offset: Point) -> Self {
        AccessFn::new(offset)
    }
}

/// The *input data domain* `D_A` of an array with the given reference
/// offsets over an iteration domain (Definition 6): a convex
/// over-approximation of the union of the per-reference data domains,
/// matching the paper's Example 4 treatment.
///
/// # Panics
///
/// Panics if `offsets` is empty.
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::{input_domain, Point, Polyhedron};
///
/// let dom = Polyhedron::rect(&[(1, 766), (1, 1022)]);
/// let offs = [
///     Point::new(&[1, 0]),
///     Point::new(&[0, 1]),
///     Point::new(&[0, 0]),
///     Point::new(&[0, -1]),
///     Point::new(&[-1, 0]),
/// ];
/// let d_a = input_domain(&dom, &offs);
/// // Effectively A[0..767][0..1023]: 768 * 1024 points.
/// assert_eq!(d_a.count()?, 768 * 1024);
/// # Ok::<(), stencil_polyhedral::PolyError>(())
/// ```
#[must_use]
pub fn input_domain(iteration_domain: &Polyhedron, offsets: &[Point]) -> Polyhedron {
    iteration_domain.dilated(offsets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_roundtrip() {
        let f = AccessFn::new(Point::new(&[-1, 2]));
        let i = Point::new(&[5, 5]);
        let h = f.access(&i);
        assert_eq!(h, Point::new(&[4, 7]));
        assert_eq!(f.iteration_of(&h), i);
    }

    #[test]
    fn data_domain_is_translated_iteration_domain() {
        let dom = Polyhedron::rect(&[(1, 766), (1, 1022)]);
        // Example 3: D of A[i][j+1] is 1 <= i' <= 766 (unchanged in paper's
        // notation the row range stays), j shifted to 2..1023.
        let f = AccessFn::new(Point::new(&[0, 1]));
        let d = f.data_domain(&dom);
        assert!(d.contains(&Point::new(&[1, 2])));
        assert!(d.contains(&Point::new(&[766, 1023])));
        assert!(!d.contains(&Point::new(&[1, 1])));
    }

    #[test]
    fn input_domain_counts_match_paper_example() {
        let dom = Polyhedron::rect(&[(1, 766), (1, 1022)]);
        let offs = [
            Point::new(&[1, 0]),
            Point::new(&[0, 1]),
            Point::new(&[0, 0]),
            Point::new(&[0, -1]),
            Point::new(&[-1, 0]),
        ];
        let d_a = input_domain(&dom, &offs);
        assert_eq!(d_a.count().unwrap(), 768 * 1024);
    }

    #[test]
    fn display_mentions_offset() {
        let f = AccessFn::new(Point::new(&[1, 0]));
        assert_eq!(f.to_string(), "A[i + (1, 0)]");
    }
}
