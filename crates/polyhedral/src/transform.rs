//! Unimodular loop transformations: skewing, interchange, and reversal.
//!
//! The paper applies its memory system *after* polyhedral loop
//! transformations (\[3, 4, 15\] in its references): skewing produces the
//! dynamically changing reuse distances of Fig. 9, and matching loop
//! orders enables accelerator chaining (Appendix 9.3). A unimodular
//! matrix `T` (integer, determinant ±1) maps iteration vectors
//! bijectively, `i' = T·i`, and its integer inverse transforms domains
//! and stencil windows exactly.
// Matrix arithmetic reads clearest with explicit row/column indices.
#![allow(clippy::needless_range_loop)]

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::constraint::Constraint;
use crate::point::{Point, MAX_DIMS};
use crate::polyhedron::Polyhedron;

/// An integer matrix with determinant ±1 acting on iteration space.
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::{Point, UnimodularTransform};
///
/// // The 45-degree skew of Fig. 9: (r, c) -> (r + c, c).
/// let t = UnimodularTransform::skew(2, 0, 1, 1);
/// assert_eq!(t.apply(&Point::new(&[3, 4])), Point::new(&[7, 4]));
/// let back = t.inverse().apply(&Point::new(&[7, 4]));
/// assert_eq!(back, Point::new(&[3, 4]));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnimodularTransform {
    dims: usize,
    rows: [[i64; MAX_DIMS]; MAX_DIMS],
}

impl UnimodularTransform {
    /// The identity transform.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is 0 or exceeds [`MAX_DIMS`].
    #[must_use]
    pub fn identity(dims: usize) -> Self {
        assert!((1..=MAX_DIMS).contains(&dims), "bad dimensionality {dims}");
        let mut rows = [[0i64; MAX_DIMS]; MAX_DIMS];
        for (d, row) in rows.iter_mut().enumerate().take(dims) {
            row[d] = 1;
        }
        Self { dims, rows }
    }

    /// Builds a transform from an explicit matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not unimodular (|det| ≠ 1) or dimensions
    /// are invalid.
    #[must_use]
    pub fn from_rows(rows: &[&[i64]]) -> Self {
        let dims = rows.len();
        assert!((1..=MAX_DIMS).contains(&dims), "bad dimensionality {dims}");
        let mut m = [[0i64; MAX_DIMS]; MAX_DIMS];
        for (d, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), dims, "non-square matrix");
            m[d][..dims].copy_from_slice(row);
        }
        let t = Self { dims, rows: m };
        assert_eq!(t.determinant().abs(), 1, "matrix is not unimodular");
        t
    }

    /// Loop skewing: adds `factor * x_source` to `x_target`.
    ///
    /// # Panics
    ///
    /// Panics if `target == source` or indices are out of range.
    #[must_use]
    pub fn skew(dims: usize, target: usize, source: usize, factor: i64) -> Self {
        assert!(
            target < dims && source < dims && target != source,
            "bad skew"
        );
        let mut t = Self::identity(dims);
        t.rows[target][source] = factor;
        t
    }

    /// Loop interchange: swaps dimensions `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn interchange(dims: usize, a: usize, b: usize) -> Self {
        assert!(a < dims && b < dims, "bad interchange");
        let mut t = Self::identity(dims);
        t.rows.swap(a, b);
        t
    }

    /// Loop reversal: negates dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn reversal(dims: usize, d: usize) -> Self {
        assert!(d < dims, "bad reversal");
        let mut t = Self::identity(dims);
        t.rows[d][d] = -1;
        t
    }

    /// Number of dimensions.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The matrix determinant (always ±1 for constructed values).
    #[must_use]
    pub fn determinant(&self) -> i64 {
        det(&self.rows, self.dims)
    }

    /// Matrix composition: `(self ∘ other)(x) = self(other(x))`.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    #[must_use]
    pub fn compose(&self, other: &Self) -> Self {
        assert_eq!(self.dims, other.dims, "dimensionality mismatch");
        let mut rows = [[0i64; MAX_DIMS]; MAX_DIMS];
        for r in 0..self.dims {
            for c in 0..self.dims {
                for k in 0..self.dims {
                    rows[r][c] += self.rows[r][k] * other.rows[k][c];
                }
            }
        }
        Self {
            dims: self.dims,
            rows,
        }
    }

    /// The exact integer inverse (exists because |det| = 1).
    #[must_use]
    pub fn inverse(&self) -> Self {
        let n = self.dims;
        let d = self.determinant();
        let mut inv = [[0i64; MAX_DIMS]; MAX_DIMS];
        for r in 0..n {
            for c in 0..n {
                // Cofactor expansion: inv[c][r] = cofactor(r, c) / det.
                let minor = minor_det(&self.rows, n, r, c);
                let sign = if (r + c) % 2 == 0 { 1 } else { -1 };
                inv[c][r] = sign * minor * d; // d = ±1 so division = multiply
            }
        }
        Self { dims: n, rows: inv }
    }

    /// Applies the transform to a point (or stencil offset — offsets
    /// transform identically because the map is linear).
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    #[must_use]
    pub fn apply(&self, p: &Point) -> Point {
        assert_eq!(p.dims(), self.dims, "dimensionality mismatch");
        let mut out = [0i64; MAX_DIMS];
        for (r, o) in out.iter_mut().enumerate().take(self.dims) {
            for c in 0..self.dims {
                *o += self.rows[r][c] * p[c];
            }
        }
        Point::new(&out[..self.dims])
    }

    /// Transforms a polyhedron: the result contains `T·x` iff the input
    /// contains `x` (constraints are composed with `T⁻¹`).
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    #[must_use]
    pub fn apply_domain(&self, poly: &Polyhedron) -> Polyhedron {
        assert_eq!(poly.dims(), self.dims, "dimensionality mismatch");
        let inv = self.inverse();
        let constraints = poly
            .constraints()
            .iter()
            .map(|c| {
                // a·x + b >= 0 with x = T⁻¹ x'  =>  (a·T⁻¹)·x' + b >= 0.
                let mut coeffs = [0i64; MAX_DIMS];
                for (j, co) in coeffs.iter_mut().enumerate().take(self.dims) {
                    for k in 0..self.dims {
                        *co += c.coeffs()[k] * inv.rows[k][j];
                    }
                }
                Constraint::new(&coeffs[..self.dims], c.constant())
            })
            .collect();
        Polyhedron::new(self.dims, constraints)
    }
}

impl fmt::Debug for UnimodularTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UnimodularTransform[")?;
        for r in 0..self.dims {
            if r > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{:?}", &self.rows[r][..self.dims])?;
        }
        write!(f, "]")
    }
}

/// Determinant of the leading `n x n` block, by cofactor expansion
/// (`n <= MAX_DIMS = 4`).
fn det(m: &[[i64; MAX_DIMS]; MAX_DIMS], n: usize) -> i64 {
    match n {
        0 => 1,
        1 => m[0][0],
        _ => {
            let mut acc = 0;
            for c in 0..n {
                let sign = if c % 2 == 0 { 1 } else { -1 };
                acc += sign * m[0][c] * minor_det(m, n, 0, c);
            }
            acc
        }
    }
}

/// Determinant of the minor obtained by deleting row `dr`, column `dc`.
fn minor_det(m: &[[i64; MAX_DIMS]; MAX_DIMS], n: usize, dr: usize, dc: usize) -> i64 {
    let mut sub = [[0i64; MAX_DIMS]; MAX_DIMS];
    let mut rr = 0;
    for r in 0..n {
        if r == dr {
            continue;
        }
        let mut cc = 0;
        for c in 0..n {
            if c == dc {
                continue;
            }
            sub[rr][cc] = m[r][c];
            cc += 1;
        }
        rr += 1;
    }
    det(&sub, n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let t = UnimodularTransform::identity(3);
        let p = Point::new(&[5, -2, 7]);
        assert_eq!(t.apply(&p), p);
        assert_eq!(t.determinant(), 1);
        assert_eq!(t.inverse(), t);
    }

    #[test]
    fn skew_and_inverse_roundtrip() {
        let t = UnimodularTransform::skew(2, 0, 1, 1);
        let inv = t.inverse();
        for p in [
            Point::new(&[0, 0]),
            Point::new(&[3, -4]),
            Point::new(&[-2, 9]),
        ] {
            assert_eq!(inv.apply(&t.apply(&p)), p);
            assert_eq!(t.apply(&inv.apply(&p)), p);
        }
    }

    #[test]
    fn interchange_and_reversal() {
        let sw = UnimodularTransform::interchange(2, 0, 1);
        assert_eq!(sw.apply(&Point::new(&[1, 2])), Point::new(&[2, 1]));
        assert_eq!(sw.determinant(), -1);
        let rev = UnimodularTransform::reversal(2, 0);
        assert_eq!(rev.apply(&Point::new(&[3, 4])), Point::new(&[-3, 4]));
        assert_eq!(rev.determinant(), -1);
    }

    #[test]
    fn compose_matches_sequential_application() {
        let a = UnimodularTransform::skew(3, 0, 2, 2);
        let b = UnimodularTransform::interchange(3, 1, 2);
        let ab = a.compose(&b);
        let p = Point::new(&[1, 2, 3]);
        assert_eq!(ab.apply(&p), a.apply(&b.apply(&p)));
        assert_eq!(ab.determinant().abs(), 1);
    }

    #[test]
    fn transformed_domain_contains_transformed_points() {
        let dom = Polyhedron::rect(&[(1, 5), (2, 7)]);
        let t = UnimodularTransform::skew(2, 0, 1, 1);
        let td = t.apply_domain(&dom);
        for p in dom.points().unwrap() {
            assert!(td.contains(&t.apply(&p)), "{p}");
        }
        // And nothing extra: counts match (bijection).
        assert_eq!(td.count().unwrap(), dom.count().unwrap());
    }

    #[test]
    fn fig9_skew_derivation() {
        // Skewing the DENOISE rectangle with t = r + c gives exactly the
        // antidiagonal domain used by the Fig. 9 experiment.
        let rect = Polyhedron::rect(&[(1, 20), (1, 12)]);
        let t = UnimodularTransform::skew(2, 0, 1, 1);
        let skewed = t.apply_domain(&rect);
        assert!(skewed.contains(&Point::new(&[15, 10]))); // r=5, c=10
        assert!(!skewed.contains(&Point::new(&[5, 5]))); // r=0
        assert_eq!(skewed.count().unwrap(), 20 * 12);
        // The 5-point cross maps to the diagonal window.
        let north = t.apply(&Point::new(&[-1, 0]));
        let east = t.apply(&Point::new(&[0, 1]));
        assert_eq!(north, Point::new(&[-1, 0]));
        assert_eq!(east, Point::new(&[1, 1]));
    }

    #[test]
    #[should_panic(expected = "not unimodular")]
    fn non_unimodular_rejected() {
        let _ = UnimodularTransform::from_rows(&[&[2, 0], &[0, 1]]);
    }

    #[test]
    fn from_rows_accepts_unimodular() {
        let t = UnimodularTransform::from_rows(&[&[1, 1], &[0, 1]]);
        assert_eq!(t, UnimodularTransform::skew(2, 0, 1, 1));
    }

    #[test]
    fn inverse_of_4d_transform() {
        let t = UnimodularTransform::from_rows(&[
            &[1, 1, 0, 0],
            &[0, 1, 0, 1],
            &[0, 0, 1, -1],
            &[0, 0, 0, 1],
        ]);
        let inv = t.inverse();
        let p = Point::new(&[4, -3, 2, 5]);
        assert_eq!(inv.apply(&t.apply(&p)), p);
        assert_eq!(t.compose(&inv), UnimodularTransform::identity(4));
    }
}
