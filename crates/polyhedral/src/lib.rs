//! # stencil-polyhedral
//!
//! Integer polyhedral analysis for stencil computation, implementing the
//! polyhedral model of *"An Optimal Microarchitecture for Stencil
//! Computation Acceleration Based on Non-Uniform Partitioning of Data
//! Reuse Buffers"* (Cong, Li, Xiao, Zhang — DAC 2014), Appendix 9.1.
//!
//! The crate provides, from scratch (no external polyhedral library):
//!
//! * [`Point`] — iteration vectors, data indices, access offsets and
//!   reuse-distance vectors on grids of up to [`MAX_DIMS`] dimensions.
//! * [`lex_cmp`] and friends — the lexicographic order `≻_l`
//!   (Definition 2) that governs both loop execution and data streaming.
//! * [`Constraint`] / [`Polyhedron`] — iteration and data domains as
//!   conjunctions of linear inequalities (Definitions 1 and 5); domains
//!   may be skewed/non-rectangular (Fig. 9 of the paper).
//! * [`LevelSystem`] — Fourier–Motzkin-derived per-loop-level bounds, so
//!   any bounded convex domain can be scanned lexicographically.
//! * [`DomainIndex`] / [`Cursor`] — an `O(log #rows)` lexicographic-rank
//!   index and an `O(1)`-advance streaming cursor (the software analogue
//!   of the paper's data-filter counters).
//! * [`AccessFn`] / [`input_domain`] — stencil access functions
//!   (Definitions 3–4, 6).
//! * [`reuse_vector`] / [`max_reuse_distance`] — reuse-distance analysis
//!   (Definitions 7–9, Properties 2–3), the quantity that sizes each
//!   non-uniform reuse FIFO.
//!
//! # Example: sizing the DENOISE reuse FIFOs
//!
//! ```
//! use stencil_polyhedral::{
//!     input_domain, max_reuse_distance, reuse_vector, Point, Polyhedron,
//! };
//!
//! let iter = Polyhedron::rect(&[(1, 766), (1, 1022)]);
//! let offsets = [
//!     Point::new(&[1, 0]),  // A[i+1][j]
//!     Point::new(&[0, 1]),  // A[i][j+1]
//!     Point::new(&[0, 0]),  // A[i][j]
//!     Point::new(&[0, -1]), // A[i][j-1]
//!     Point::new(&[-1, 0]), // A[i-1][j]
//! ];
//! let d_a = input_domain(&iter, &offsets).index()?;
//!
//! let mut sizes = Vec::new();
//! for pair in offsets.windows(2) {
//!     let r = reuse_vector(&pair[0], &pair[1]);
//!     let dax = iter.translated(&pair[0]).index()?;
//!     sizes.push(max_reuse_distance(&d_a, &dax, &r)?);
//! }
//! assert_eq!(sizes, vec![1023, 1, 1, 1023]); // Table 2 of the paper
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod access;
mod constraint;
mod error;
mod fourier_motzkin;
mod index;
mod iter;
mod order;
mod point;
mod polyhedron;
mod render;
mod reuse;
mod transform;

pub use access::{input_domain, AccessFn};
pub use constraint::{gcd, Constraint};
pub use error::PolyError;
pub use fourier_motzkin::LevelSystem;
pub use index::{Cursor, DomainIndex, Row};
pub use iter::LexPoints;
pub use order::{lex_cmp, lex_gt, lex_lt, lex_nonnegative, lex_positive, sort_descending, Lex};
pub use point::{Point, MAX_DIMS};
pub use polyhedron::Polyhedron;
pub use render::{render_domain, render_window};
pub use reuse::{
    max_reuse_distance, max_reuse_distance_exhaustive, reuse_distance_at, reuse_vector,
};
pub use transform::UnimodularTransform;
