//! Linear inequality constraints `a·x + b ≥ 0` over integer points.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::point::{Point, MAX_DIMS};

/// A single linear inequality `a·x + b ≥ 0` over `dims` variables.
///
/// Iteration domains and data domains in the polyhedral model
/// (Definitions 1 and 5 of the paper) are conjunctions of such
/// constraints.
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::{Constraint, Point};
///
/// // i - 1 >= 0, i.e. i >= 1
/// let c = Constraint::new(&[1], -1);
/// assert!(c.holds(&Point::new(&[1])));
/// assert!(!c.holds(&Point::new(&[0])));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Constraint {
    dims: u8,
    coeffs: [i64; MAX_DIMS],
    constant: i64,
}

impl Constraint {
    /// Creates the constraint `coeffs·x + constant ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` exceeds [`MAX_DIMS`].
    #[must_use]
    pub fn new(coeffs: &[i64], constant: i64) -> Self {
        assert!(
            coeffs.len() <= MAX_DIMS,
            "constraint dimension {} exceeds MAX_DIMS={}",
            coeffs.len(),
            MAX_DIMS
        );
        let mut c = [0i64; MAX_DIMS];
        c[..coeffs.len()].copy_from_slice(coeffs);
        Self {
            dims: coeffs.len() as u8,
            coeffs: c,
            constant,
        }
        .normalized()
    }

    /// Convenience: `x_dim ≥ bound` in a `dims`-dimensional space.
    #[must_use]
    pub fn lower_bound(dims: usize, dim: usize, bound: i64) -> Self {
        assert!(dim < dims, "dim {dim} out of range for {dims} dims");
        let mut coeffs = [0i64; MAX_DIMS];
        coeffs[dim] = 1;
        Constraint::new(&coeffs[..dims], -bound)
    }

    /// Convenience: `x_dim ≤ bound` in a `dims`-dimensional space.
    #[must_use]
    pub fn upper_bound(dims: usize, dim: usize, bound: i64) -> Self {
        assert!(dim < dims, "dim {dim} out of range for {dims} dims");
        let mut coeffs = [0i64; MAX_DIMS];
        coeffs[dim] = -1;
        Constraint::new(&coeffs[..dims], bound)
    }

    /// Number of variables this constraint ranges over.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims as usize
    }

    /// Coefficient vector `a` as a slice.
    #[must_use]
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs[..self.dims as usize]
    }

    /// The constant term `b`.
    #[must_use]
    pub fn constant(&self) -> i64 {
        self.constant
    }

    /// Evaluates `a·x + b` at a point.
    ///
    /// # Panics
    ///
    /// Panics if the point's dimensionality differs from the constraint's.
    #[must_use]
    pub fn eval(&self, p: &Point) -> i64 {
        assert_eq!(p.dims(), self.dims(), "point/constraint dimension mismatch");
        let mut acc = self.constant;
        for (c, x) in self.coeffs().iter().zip(p.as_slice()) {
            acc += c * x;
        }
        acc
    }

    /// True if the constraint holds at `p` (`a·x + b ≥ 0`).
    #[must_use]
    pub fn holds(&self, p: &Point) -> bool {
        self.eval(p) >= 0
    }

    /// The highest variable index with a nonzero coefficient, or `None`
    /// for a constant constraint.
    #[must_use]
    pub fn innermost_var(&self) -> Option<usize> {
        self.coeffs().iter().rposition(|&c| c != 0)
    }

    /// Shifts the constraint by a constant vector: the returned constraint
    /// holds at `x` iff `self` holds at `x - offset`. Used to translate
    /// iteration domains into data domains (`D_Ax = { h | P(h - f_x) ≥ b }`,
    /// Definition 5).
    ///
    /// # Panics
    ///
    /// Panics if `offset.dims()` differs from the constraint's.
    #[must_use]
    pub fn translated(&self, offset: &Point) -> Self {
        assert_eq!(offset.dims(), self.dims(), "offset dimension mismatch");
        let mut out = *self;
        for (c, o) in self.coeffs().iter().zip(offset.as_slice()) {
            out.constant -= c * o;
        }
        out
    }

    /// Relaxes the constant term by `slack ≥ 0`, enlarging the feasible
    /// half-space. Used when dilating a domain to cover all shifted copies.
    #[must_use]
    pub fn relaxed(&self, slack: i64) -> Self {
        debug_assert!(slack >= 0, "relaxation slack must be non-negative");
        let mut out = *self;
        out.constant += slack;
        out
    }

    /// Divides out the gcd of all coefficients (tightening the constant by
    /// integer rounding, which is sound for integer points).
    #[must_use]
    fn normalized(mut self) -> Self {
        let g = self
            .coeffs()
            .iter()
            .fold(0i64, |g, &c| gcd(g, c.unsigned_abs() as i64));
        if g > 1 {
            for c in self.coeffs.iter_mut() {
                *c /= g;
            }
            // a·x + b >= 0 with a = g·a'  =>  a'·x >= -b/g  =>  a'·x + floor(b/g) >= 0
            self.constant = self.constant.div_euclid(g);
        }
        self
    }
}

/// Greatest common divisor of two non-negative integers.
#[must_use]
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Constraint[{self}]")
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (d, &c) in self.coeffs().iter().enumerate() {
            if c == 0 {
                continue;
            }
            if first {
                if c == -1 {
                    write!(f, "-")?;
                } else if c != 1 {
                    write!(f, "{c}*")?;
                }
                first = false;
            } else if c < 0 {
                write!(f, " - ")?;
                if c != -1 {
                    write!(f, "{}*", -c)?;
                }
            } else {
                write!(f, " + ")?;
                if c != 1 {
                    write!(f, "{c}*")?;
                }
            }
            write!(f, "x{d}")?;
        }
        if first {
            write!(f, "{} >= 0", self.constant)
        } else if self.constant == 0 {
            write!(f, " >= 0")
        } else if self.constant < 0 {
            write!(f, " - {} >= 0", -self.constant)
        } else {
            write!(f, " + {} >= 0", self.constant)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_holds() {
        // 2i - j - 3 >= 0
        let c = Constraint::new(&[2, -1], -3);
        assert_eq!(c.eval(&Point::new(&[3, 1])), 2);
        assert!(c.holds(&Point::new(&[3, 1])));
        assert!(!c.holds(&Point::new(&[1, 0])));
    }

    #[test]
    fn bounds_constructors() {
        let lo = Constraint::lower_bound(2, 1, 5); // j >= 5
        assert!(lo.holds(&Point::new(&[0, 5])));
        assert!(!lo.holds(&Point::new(&[0, 4])));
        let hi = Constraint::upper_bound(2, 0, 7); // i <= 7
        assert!(hi.holds(&Point::new(&[7, 0])));
        assert!(!hi.holds(&Point::new(&[8, 0])));
    }

    #[test]
    fn translation_matches_definition() {
        // i >= 2 translated by f = (2,) is: holds at h iff orig holds at h-2,
        // i.e. h >= 4.
        let c = Constraint::lower_bound(1, 0, 2);
        let t = c.translated(&Point::new(&[2]));
        assert!(t.holds(&Point::new(&[4])));
        assert!(!t.holds(&Point::new(&[3])));
    }

    #[test]
    fn normalization_divides_gcd_and_tightens() {
        // 2i - 5 >= 0  =>  i >= 2.5  =>  i >= 3 over the integers;
        // normalized form is i - 3 >= 0 (constant floor(-5/2) = -3).
        let c = Constraint::new(&[2], -5);
        assert_eq!(c.coeffs(), &[1]);
        assert_eq!(c.constant(), -3);
        assert!(!c.holds(&Point::new(&[2])));
        assert!(c.holds(&Point::new(&[3])));
    }

    #[test]
    fn innermost_var_detection() {
        assert_eq!(Constraint::new(&[1, 0, 0], 4).innermost_var(), Some(0));
        assert_eq!(Constraint::new(&[1, 0, 2], 4).innermost_var(), Some(2));
        assert_eq!(Constraint::new(&[0, 0], 4).innermost_var(), None);
    }

    #[test]
    fn relax_enlarges() {
        let c = Constraint::upper_bound(1, 0, 3); // i <= 3
        let r = c.relaxed(2); // i <= 5
        assert!(r.holds(&Point::new(&[5])));
        assert!(!r.holds(&Point::new(&[6])));
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(-4, 6), 2);
        assert_eq!(gcd(0, 0), 0);
    }

    #[test]
    fn display_readable() {
        let c = Constraint::new(&[1, -2], 3);
        assert_eq!(c.to_string(), "x0 - 2*x1 + 3 >= 0");
        let k = Constraint::new(&[0, 0], -1);
        assert_eq!(k.to_string(), "-1 >= 0");
    }
}
