//! ASCII rendering of 2-D stencil windows and domains — the textual
//! equivalent of the paper's Figs. 2, 6 and 9, used by documentation,
//! the CLI, and experiment harnesses.

use std::fmt::Write as _;

use crate::point::Point;
use crate::polyhedron::Polyhedron;

/// Renders a 2-D stencil window as the paper draws them (Figs. 2 and 6):
/// `o` marks a tap, `.` the untouched grid, `+` the center if untapped.
///
/// Returns `None` for non-2-D windows.
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::{render_window, Point};
///
/// let cross = [
///     Point::new(&[-1, 0]),
///     Point::new(&[0, -1]),
///     Point::new(&[0, 0]),
///     Point::new(&[0, 1]),
///     Point::new(&[1, 0]),
/// ];
/// let art = render_window(&cross).unwrap();
/// assert_eq!(art, ". o .\no o o\n. o .\n");
/// ```
#[must_use]
pub fn render_window(offsets: &[Point]) -> Option<String> {
    if offsets.is_empty() || offsets.iter().any(|f| f.dims() != 2) {
        return None;
    }
    let r_min = offsets.iter().map(|f| f[0]).min()?;
    let r_max = offsets.iter().map(|f| f[0]).max()?;
    let c_min = offsets.iter().map(|f| f[1]).min()?;
    let c_max = offsets.iter().map(|f| f[1]).max()?;
    let mut out = String::new();
    for r in r_min..=r_max {
        for c in c_min..=c_max {
            if c > c_min {
                out.push(' ');
            }
            let p = Point::new(&[r, c]);
            if offsets.contains(&p) {
                out.push('o');
            } else if r == 0 && c == 0 {
                out.push('+');
            } else {
                out.push('.');
            }
        }
        out.push('\n');
    }
    Some(out)
}

/// Renders a 2-D domain's integer points as `#` on a `.` background,
/// clipped to at most `max_rows` x `max_cols` cells around the domain's
/// bounding box (for larger domains a clipped view with an ellipsis
/// note is produced).
///
/// Returns `None` for non-2-D or empty/unbounded domains.
#[must_use]
pub fn render_domain(poly: &Polyhedron, max_rows: usize, max_cols: usize) -> Option<String> {
    if poly.dims() != 2 {
        return None;
    }
    let idx = poly.index().ok()?;
    let bb = idx.bounding_box()?;
    let (r0, r1) = bb[0];
    let (c0, c1) = bb[1];
    let rows = ((r1 - r0 + 1) as usize).min(max_rows.max(1));
    let cols = ((c1 - c0 + 1) as usize).min(max_cols.max(1));
    let mut out = String::new();
    for r in 0..rows {
        for c in 0..cols {
            if c > 0 {
                out.push(' ');
            }
            let p = Point::new(&[r0 + r as i64, c0 + c as i64]);
            out.push(if idx.contains(&p) { '#' } else { '.' });
        }
        out.push('\n');
    }
    if (r1 - r0 + 1) as usize > rows || (c1 - c0 + 1) as usize > cols {
        let _ = writeln!(
            out,
            "(clipped to {rows}x{cols} of {}x{})",
            r1 - r0 + 1,
            c1 - c0 + 1
        );
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;

    #[test]
    fn cross_window_matches_fig2() {
        let cross = [
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ];
        assert_eq!(render_window(&cross).unwrap(), ". o .\no o o\n. o .\n");
    }

    #[test]
    fn centerless_cross_marks_center() {
        let rician = [
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ];
        assert_eq!(render_window(&rician).unwrap(), ". o .\no + o\n. o .\n");
    }

    #[test]
    fn stride_two_window() {
        let bicubic = [
            Point::new(&[0, 0]),
            Point::new(&[0, 2]),
            Point::new(&[2, 0]),
            Point::new(&[2, 2]),
        ];
        assert_eq!(render_window(&bicubic).unwrap(), "o . o\n. . .\no . o\n");
    }

    #[test]
    fn non_2d_returns_none() {
        assert!(render_window(&[Point::new(&[1])]).is_none());
        assert!(render_window(&[]).is_none());
        assert!(render_domain(&Polyhedron::rect(&[(0, 3)]), 8, 8).is_none());
    }

    #[test]
    fn skewed_domain_renders_staircase() {
        // 0 <= c <= 2, c <= t - 1 <= 2  (t in c+1 ..= c+3).
        let p = Polyhedron::new(
            2,
            vec![
                Constraint::lower_bound(2, 1, 0),
                Constraint::upper_bound(2, 1, 2),
                Constraint::new(&[1, -1], -1),
                Constraint::new(&[-1, 1], 3),
            ],
        );
        let art = render_domain(&p, 10, 10).unwrap();
        assert!(art.contains('#'));
        // First row (t = 1) has only c = 0 in-domain.
        assert!(art.starts_with("# . .\n"), "{art}");
    }

    #[test]
    fn clipping_notes_the_full_size() {
        let big = Polyhedron::grid(&[100, 100]);
        let art = render_domain(&big, 4, 4).unwrap();
        assert!(art.contains("clipped to 4x4 of 100x100"), "{art}");
    }
}
