//! Lexicographic order on iteration vectors and access indices
//! (Definition 2 of the paper).
//!
//! The paper orders loop iterations and data elements by the
//! *lexicographic* order `≻_l`: `i ≻_l j` iff the first differing
//! coordinate (outermost first) of `i` is greater. Because [`Point`] is
//! used for several unrelated quantities, we expose the order through free
//! functions and a [`Lex`] newtype rather than implementing `Ord` on
//! `Point` itself.

use std::cmp::Ordering;

use crate::point::Point;

/// Compares two points lexicographically, outermost dimension first.
///
/// # Panics
///
/// Panics if the points have different dimensionality.
///
/// # Examples
///
/// ```
/// use std::cmp::Ordering;
/// use stencil_polyhedral::{lex_cmp, Point};
///
/// let a = Point::new(&[1, 0]);
/// let b = Point::new(&[0, 9]);
/// assert_eq!(lex_cmp(&a, &b), Ordering::Greater);
/// ```
#[must_use]
pub fn lex_cmp(a: &Point, b: &Point) -> Ordering {
    assert_eq!(
        a.dims(),
        b.dims(),
        "lexicographic comparison requires equal dimensionality"
    );
    a.as_slice().cmp(b.as_slice())
}

/// True if `a ≻_l b` (strictly lexicographically greater).
#[must_use]
pub fn lex_gt(a: &Point, b: &Point) -> bool {
    lex_cmp(a, b) == Ordering::Greater
}

/// True if `a ≺_l b` (strictly lexicographically less).
#[must_use]
pub fn lex_lt(a: &Point, b: &Point) -> bool {
    lex_cmp(a, b) == Ordering::Less
}

/// True if the vector is lexicographically positive (`v ≻_l 0`).
///
/// A reuse-distance vector `r = f_x - f_y` must be lexicographically
/// positive for reference `A_x` to be the *earlier* access (deadlock-free
/// condition 1, Eq. (1) in the paper).
#[must_use]
pub fn lex_positive(v: &Point) -> bool {
    v.as_slice()
        .iter()
        .copied()
        .find(|&c| c != 0)
        .is_some_and(|c| c > 0)
}

/// True if the vector is lexicographically non-negative (`v ⪰_l 0`).
#[must_use]
pub fn lex_nonnegative(v: &Point) -> bool {
    !lex_positive(&-*v)
}

/// Sorts points into **descending** lexicographic order.
///
/// This is the reference ordering the paper uses to map array references to
/// data filters 0..n-1 (earliest access first, §3.3.2): e.g. for DENOISE,
/// `(1,0) ≻ (0,1) ≻ (0,0) ≻ (0,-1) ≻ (-1,0)`.
pub fn sort_descending(points: &mut [Point]) {
    points.sort_by(|a, b| lex_cmp(b, a));
}

/// A newtype ordering wrapper so points can live in ordered collections
/// under the lexicographic order.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeSet;
/// use stencil_polyhedral::{Lex, Point};
///
/// let mut set = BTreeSet::new();
/// set.insert(Lex(Point::new(&[1, 0])));
/// set.insert(Lex(Point::new(&[0, 5])));
/// let min = set.iter().next().unwrap().0;
/// assert_eq!(min, Point::new(&[0, 5]));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Lex(pub Point);

impl PartialOrd for Lex {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Lex {
    fn cmp(&self, other: &Self) -> Ordering {
        lex_cmp(&self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_outermost_first() {
        assert!(lex_gt(&Point::new(&[1, 0]), &Point::new(&[0, 100])));
        assert!(lex_lt(&Point::new(&[0, 0]), &Point::new(&[0, 1])));
        assert_eq!(
            lex_cmp(&Point::new(&[2, 3]), &Point::new(&[2, 3])),
            Ordering::Equal
        );
    }

    #[test]
    fn positivity() {
        assert!(lex_positive(&Point::new(&[1, -5])));
        assert!(lex_positive(&Point::new(&[0, 1])));
        assert!(!lex_positive(&Point::new(&[0, 0])));
        assert!(!lex_positive(&Point::new(&[-1, 9])));
        assert!(lex_nonnegative(&Point::new(&[0, 0])));
        assert!(lex_nonnegative(&Point::new(&[0, 2])));
        assert!(!lex_nonnegative(&Point::new(&[0, -2])));
    }

    #[test]
    fn paper_example_ordering() {
        // Fig. 7: (1,0) ≻ (0,1) ≻ (0,0) ≻ (0,-1) ≻ (-1,0).
        let mut offsets = vec![
            Point::new(&[0, 0]),
            Point::new(&[-1, 0]),
            Point::new(&[1, 0]),
            Point::new(&[0, 1]),
            Point::new(&[0, -1]),
        ];
        sort_descending(&mut offsets);
        assert_eq!(
            offsets,
            vec![
                Point::new(&[1, 0]),
                Point::new(&[0, 1]),
                Point::new(&[0, 0]),
                Point::new(&[0, -1]),
                Point::new(&[-1, 0]),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "equal dimensionality")]
    fn mismatched_dims_panic() {
        let _ = lex_cmp(&Point::new(&[1]), &Point::new(&[1, 2]));
    }

    #[test]
    fn lex_wrapper_orders() {
        let a = Lex(Point::new(&[1, 2]));
        let b = Lex(Point::new(&[1, 3]));
        assert!(a < b);
        assert_eq!(a.partial_cmp(&b), Some(Ordering::Less));
    }
}
