//! Fixed-capacity integer points/vectors used for iteration vectors,
//! access indices, and reuse-distance vectors.

use std::fmt;
use std::ops::{Add, Index, Neg, Sub};

use serde::{Deserialize, Serialize};

/// Maximum number of grid dimensions supported by the library.
///
/// Stencil computations in the target domain (image processing, multigrid,
/// PDE solvers) use 1–4 dimensional grids; a fixed small capacity keeps
/// [`Point`] `Copy` and allocation-free on the simulator's hot path.
pub const MAX_DIMS: usize = 4;

/// An integer point (or vector) on a multi-dimensional grid.
///
/// `Point` doubles as an iteration vector `i`, a data access index `h`,
/// a constant access offset `f`, and a reuse-distance vector `r` — all of
/// which are integer tuples in the paper's polyhedral model (Table 1).
///
/// Dimension 0 is the **outermost** loop dimension; the last dimension is
/// the innermost, consistent with lexicographic ordering.
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::Point;
///
/// let f_north = Point::new(&[-1, 0]);
/// let f_east = Point::new(&[0, 1]);
/// let r = f_east - f_north;
/// assert_eq!(r, Point::new(&[1, 1]));
/// assert_eq!(r[0], 1);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Point {
    len: u8,
    coords: [i64; MAX_DIMS],
}

impl Point {
    /// Creates a point from a slice of coordinates (outermost first).
    ///
    /// # Panics
    ///
    /// Panics if `coords.len()` exceeds [`MAX_DIMS`].
    #[must_use]
    pub fn new(coords: &[i64]) -> Self {
        assert!(
            coords.len() <= MAX_DIMS,
            "point dimension {} exceeds MAX_DIMS={}",
            coords.len(),
            MAX_DIMS
        );
        let mut c = [0i64; MAX_DIMS];
        c[..coords.len()].copy_from_slice(coords);
        Self {
            len: coords.len() as u8,
            coords: c,
        }
    }

    /// Creates the origin (all-zero) point of the given dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `dims` exceeds [`MAX_DIMS`].
    #[must_use]
    pub fn zero(dims: usize) -> Self {
        assert!(dims <= MAX_DIMS, "dims {dims} exceeds MAX_DIMS={MAX_DIMS}");
        Self {
            len: dims as u8,
            coords: [0; MAX_DIMS],
        }
    }

    /// Number of dimensions of this point.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.len as usize
    }

    /// Coordinates as a slice, outermost dimension first.
    #[must_use]
    pub fn as_slice(&self) -> &[i64] {
        &self.coords[..self.len as usize]
    }

    /// Returns the coordinate at `dim`, or `None` if out of range.
    #[must_use]
    pub fn get(&self, dim: usize) -> Option<i64> {
        self.as_slice().get(dim).copied()
    }

    /// Returns a copy with the coordinate at `dim` replaced by `value`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    #[must_use]
    pub fn with_coord(mut self, dim: usize, value: i64) -> Self {
        assert!(dim < self.dims(), "dim {dim} out of range");
        self.coords[dim] = value;
        self
    }

    /// The prefix of this point covering dimensions `0..dim` (the "outer"
    /// loop coordinates above a given loop level).
    ///
    /// # Panics
    ///
    /// Panics if `dim > self.dims()`.
    #[must_use]
    pub fn prefix(&self, dim: usize) -> Self {
        assert!(dim <= self.dims(), "prefix length {dim} out of range");
        Self::new(&self.as_slice()[..dim])
    }

    /// Extends this point by one trailing (innermost) coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the point is already [`MAX_DIMS`]-dimensional.
    #[must_use]
    pub fn pushed(&self, value: i64) -> Self {
        assert!(self.dims() < MAX_DIMS, "cannot exceed MAX_DIMS");
        let mut p = *self;
        p.coords[p.len as usize] = value;
        p.len += 1;
        p
    }

    /// True if every coordinate is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.as_slice().iter().all(|&c| c == 0)
    }

    /// Manhattan (L1) norm — handy for classifying stencil windows.
    #[must_use]
    pub fn l1_norm(&self) -> i64 {
        self.as_slice().iter().map(|c| c.abs()).sum()
    }

    /// Chebyshev (L∞) norm.
    #[must_use]
    pub fn linf_norm(&self) -> i64 {
        self.as_slice().iter().map(|c| c.abs()).max().unwrap_or(0)
    }
}

impl Index<usize> for Point {
    type Output = i64;

    fn index(&self, dim: usize) -> &i64 {
        &self.as_slice()[dim]
    }
}

impl Add for Point {
    type Output = Point;

    /// Component-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    fn add(self, rhs: Point) -> Point {
        assert_eq!(self.len, rhs.len, "dimension mismatch in point addition");
        let mut out = self;
        for d in 0..self.dims() {
            out.coords[d] += rhs.coords[d];
        }
        out
    }
}

impl Sub for Point {
    type Output = Point;

    /// Component-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    fn sub(self, rhs: Point) -> Point {
        assert_eq!(self.len, rhs.len, "dimension mismatch in point subtraction");
        let mut out = self;
        for d in 0..self.dims() {
            out.coords[d] -= rhs.coords[d];
        }
        out
    }
}

impl Neg for Point {
    type Output = Point;

    fn neg(self) -> Point {
        let mut out = self;
        for d in 0..self.dims() {
            out.coords[d] = -out.coords[d];
        }
        out
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{self}")
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (d, c) in self.as_slice().iter().enumerate() {
            if d > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl From<&[i64]> for Point {
    fn from(coords: &[i64]) -> Self {
        Point::new(coords)
    }
}

impl<const N: usize> From<[i64; N]> for Point {
    fn from(coords: [i64; N]) -> Self {
        Point::new(&coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_accessors() {
        let p = Point::new(&[3, -1, 7]);
        assert_eq!(p.dims(), 3);
        assert_eq!(p.as_slice(), &[3, -1, 7]);
        assert_eq!(p[1], -1);
        assert_eq!(p.get(2), Some(7));
        assert_eq!(p.get(3), None);
    }

    #[test]
    fn zero_is_zero() {
        let z = Point::zero(2);
        assert!(z.is_zero());
        assert_eq!(z.as_slice(), &[0, 0]);
        assert!(!Point::new(&[0, 1]).is_zero());
    }

    #[test]
    fn arithmetic() {
        let a = Point::new(&[1, 2]);
        let b = Point::new(&[3, -4]);
        assert_eq!(a + b, Point::new(&[4, -2]));
        assert_eq!(a - b, Point::new(&[-2, 6]));
        assert_eq!(-b, Point::new(&[-3, 4]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn add_dim_mismatch_panics() {
        let _ = Point::new(&[1]) + Point::new(&[1, 2]);
    }

    #[test]
    fn prefix_and_push() {
        let p = Point::new(&[5, 6, 7]);
        assert_eq!(p.prefix(2), Point::new(&[5, 6]));
        assert_eq!(p.prefix(0), Point::new(&[]));
        assert_eq!(p.prefix(2).pushed(9), Point::new(&[5, 6, 9]));
    }

    #[test]
    fn with_coord_replaces() {
        let p = Point::new(&[1, 2, 3]).with_coord(1, 9);
        assert_eq!(p, Point::new(&[1, 9, 3]));
    }

    #[test]
    fn norms() {
        let p = Point::new(&[-2, 3]);
        assert_eq!(p.l1_norm(), 5);
        assert_eq!(p.linf_norm(), 3);
    }

    #[test]
    fn display_format() {
        assert_eq!(Point::new(&[1, -2]).to_string(), "(1, -2)");
        assert_eq!(Point::new(&[]).to_string(), "()");
    }

    #[test]
    fn from_array() {
        let p: Point = [4, 5].into();
        assert_eq!(p, Point::new(&[4, 5]));
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_DIMS")]
    fn too_many_dims_panics() {
        let _ = Point::new(&[1, 2, 3, 4, 5]);
    }
}
