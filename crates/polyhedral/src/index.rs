//! Row/rank index over a polyhedral domain.
//!
//! [`DomainIndex`] materializes the domain as its lexicographically
//! ordered *rows* (maximal runs along the innermost dimension) with prefix
//! point counts. Lexicographic rank queries — the primitive underlying the
//! paper's reuse distances (Definition 8: a reuse distance is the number
//! of domain points between two accesses in lexicographic order) — then
//! cost `O(log #rows)`, and streaming through the domain one element per
//! clock cycle costs `O(1)` amortized via [`Cursor`].

use std::cmp::Ordering;

use crate::error::PolyError;
use crate::order::lex_cmp;
use crate::point::Point;
use crate::polyhedron::Polyhedron;

/// One maximal innermost-dimension run of a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Row {
    /// Fixed outer coordinates (all dimensions except the innermost).
    pub prefix: Point,
    /// Inclusive innermost start coordinate.
    pub lo: i64,
    /// Inclusive innermost end coordinate (`lo <= hi`).
    pub hi: i64,
    /// Number of domain points lexicographically before this row.
    pub base: u64,
}

impl Row {
    /// Number of points in the row.
    #[must_use]
    pub fn len(&self) -> u64 {
        (self.hi - self.lo + 1) as u64
    }

    /// Rows are never empty; provided for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Precomputed rank/row index over the integer points of a polyhedron.
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::{Point, Polyhedron};
///
/// let idx = Polyhedron::grid(&[4, 8]).index()?;
/// assert_eq!(idx.len(), 32);
/// assert_eq!(idx.rank_lt(&Point::new(&[1, 0])), 8);
/// assert_eq!(idx.point_at(8), Some(Point::new(&[1, 0])));
/// # Ok::<(), stencil_polyhedral::PolyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DomainIndex {
    dims: usize,
    rows: Vec<Row>,
    total: u64,
}

impl DomainIndex {
    /// Builds the index by scanning the polyhedron's rows.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Unbounded`] for unbounded polyhedra.
    pub fn build(poly: &Polyhedron) -> Result<Self, PolyError> {
        let sys = poly.level_system()?;
        let m = poly.dims();
        let mut rows = Vec::new();
        let mut total = 0u64;

        if sys.is_infeasible() {
            return Ok(Self {
                dims: m,
                rows,
                total,
            });
        }

        // Odometer over the m-1 outer dimensions; innermost interval per
        // prefix becomes a row.
        let mut cur = vec![0i64; m.saturating_sub(1)];
        let mut his = vec![0i64; m.saturating_sub(1)];
        let outer = m - 1;
        let mut level = 0usize;
        'scan: loop {
            // Descend to fill cur[level..outer].
            while level < outer {
                let prefix = Point::new(&cur[..level]);
                let (lo, hi) = sys.bounds(level, &prefix);
                if lo <= hi {
                    cur[level] = lo;
                    his[level] = hi;
                    level += 1;
                } else {
                    // Backtrack.
                    loop {
                        if level == 0 {
                            break 'scan;
                        }
                        level -= 1;
                        if cur[level] < his[level] {
                            cur[level] += 1;
                            level += 1;
                            break;
                        }
                    }
                }
            }
            // Emit the innermost row for this prefix.
            let prefix = Point::new(&cur[..outer]);
            let (lo, hi) = sys.bounds(outer, &prefix);
            if lo <= hi {
                rows.push(Row {
                    prefix,
                    lo,
                    hi,
                    base: total,
                });
                total += (hi - lo + 1) as u64;
            }
            if outer == 0 {
                break 'scan;
            }
            // Advance the odometer.
            level = outer;
            loop {
                if level == 0 {
                    break 'scan;
                }
                level -= 1;
                if cur[level] < his[level] {
                    cur[level] += 1;
                    level += 1;
                    break;
                }
            }
        }

        Ok(Self {
            dims: m,
            rows,
            total,
        })
    }

    /// Builds an index directly from hand-authored rows, bypassing the
    /// polyhedral scan — for tests and tooling that need indexes no
    /// polyhedron produces (gaps, shifted spans, inconsistent bases).
    ///
    /// Only basic shape is checked. Everything else is trusted: row
    /// prefixes must be in strictly ascending lexicographic order for
    /// binary-search queries to behave, and rank queries are exactly as
    /// consistent as the provided `base` values. Consumers of arbitrary
    /// indexes (e.g. the execution engine's fast path) must therefore
    /// treat rank arithmetic defensively.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`, a row's prefix does not have `dims - 1`
    /// coordinates, or a row has `hi < lo`.
    #[must_use]
    pub fn from_rows(dims: usize, rows: Vec<Row>) -> Self {
        assert!(dims >= 1, "a domain index needs at least one dimension");
        let mut total = 0u64;
        for row in &rows {
            assert_eq!(
                row.prefix.dims(),
                dims - 1,
                "row prefix must fix all outer dimensions"
            );
            assert!(row.lo <= row.hi, "row range must be non-empty");
            total = total.max(row.base + row.len());
        }
        Self { dims, rows, total }
    }

    /// Number of dimensions of the indexed domain.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total number of integer points.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if the domain has no integer points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The rows in lexicographic order.
    #[must_use]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// True if `p` is a point of the domain.
    #[must_use]
    pub fn contains(&self, p: &Point) -> bool {
        assert_eq!(p.dims(), self.dims, "point dimensionality mismatch");
        let q = p.prefix(self.dims - 1);
        match self.find_row(&q) {
            Ok(r) => {
                let row = &self.rows[r];
                (row.lo..=row.hi).contains(&p[self.dims - 1])
            }
            Err(_) => false,
        }
    }

    /// Number of domain points lexicographically **strictly less** than
    /// `p` (which need not itself be a domain point).
    ///
    /// # Panics
    ///
    /// Panics if `p.dims() != self.dims()`.
    #[must_use]
    pub fn rank_lt(&self, p: &Point) -> u64 {
        assert_eq!(p.dims(), self.dims, "point dimensionality mismatch");
        let q = p.prefix(self.dims - 1);
        match self.find_row(&q) {
            Ok(r) => {
                let row = &self.rows[r];
                let inner = p[self.dims - 1];
                row.base + (inner - row.lo).clamp(0, row.hi - row.lo + 1) as u64
            }
            Err(r) => {
                if r < self.rows.len() {
                    self.rows[r].base
                } else {
                    self.total
                }
            }
        }
    }

    /// Number of domain points lexicographically **less than or equal**
    /// to `p`.
    #[must_use]
    pub fn rank_le(&self, p: &Point) -> u64 {
        self.rank_lt(p) + u64::from(self.contains(p))
    }

    /// The domain point with the given rank (0-based, lexicographic), or
    /// `None` if `rank >= self.len()`.
    #[must_use]
    pub fn point_at(&self, rank: u64) -> Option<Point> {
        if rank >= self.total {
            return None;
        }
        let r = self.rows.partition_point(|row| row.base <= rank) - 1;
        let row = &self.rows[r];
        let offset = rank - row.base;
        Some(row.prefix.pushed(row.lo + offset as i64))
    }

    /// The lexicographically smallest point, if any.
    #[must_use]
    pub fn first(&self) -> Option<Point> {
        self.point_at(0)
    }

    /// The lexicographically largest point, if any.
    #[must_use]
    pub fn last(&self) -> Option<Point> {
        self.total.checked_sub(1).and_then(|r| self.point_at(r))
    }

    /// Per-dimension inclusive bounding box, or `None` for an empty domain.
    #[must_use]
    pub fn bounding_box(&self) -> Option<Vec<(i64, i64)>> {
        if self.is_empty() {
            return None;
        }
        let mut bb = vec![(i64::MAX, i64::MIN); self.dims];
        for row in &self.rows {
            for (d, &c) in row.prefix.as_slice().iter().enumerate() {
                bb[d].0 = bb[d].0.min(c);
                bb[d].1 = bb[d].1.max(c);
            }
            let d = self.dims - 1;
            bb[d].0 = bb[d].0.min(row.lo);
            bb[d].1 = bb[d].1.max(row.hi);
        }
        Some(bb)
    }

    /// A fresh streaming cursor positioned at rank 0.
    #[must_use]
    pub fn cursor(&self) -> Cursor {
        Cursor { row: 0, offset: 0 }
    }

    /// Finds the row with the given prefix: `Ok(i)` if present, otherwise
    /// `Err(i)` with the insertion position.
    fn find_row(&self, prefix: &Point) -> Result<usize, usize> {
        self.rows
            .binary_search_by(|row| match lex_cmp(&row.prefix, prefix) {
                Ordering::Equal => Ordering::Equal,
                other => other,
            })
    }
}

/// An `O(1)`-advance position inside a [`DomainIndex`].
///
/// This models the paper's hardware *counters iterating over data domains
/// in the lexicographic order* (§5.2): a data filter holds one cursor over
/// the input domain and one over its reference's data domain.
///
/// A cursor is a small `Copy` value; all queries take the owning index.
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::{Point, Polyhedron};
///
/// let idx = Polyhedron::grid(&[2, 2]).index()?;
/// let mut c = idx.cursor();
/// assert_eq!(c.point(&idx), Some(Point::new(&[0, 0])));
/// c.advance(&idx);
/// assert_eq!(c.point(&idx), Some(Point::new(&[0, 1])));
/// # Ok::<(), stencil_polyhedral::PolyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    row: usize,
    offset: u64,
}

impl Cursor {
    /// The point under the cursor, or `None` once past the end.
    #[must_use]
    pub fn point(&self, idx: &DomainIndex) -> Option<Point> {
        let row = idx.rows.get(self.row)?;
        Some(row.prefix.pushed(row.lo + self.offset as i64))
    }

    /// The lexicographic rank of the cursor position (equals
    /// `idx.len()` once past the end).
    #[must_use]
    pub fn rank(&self, idx: &DomainIndex) -> u64 {
        match idx.rows.get(self.row) {
            Some(row) => row.base + self.offset,
            None => idx.len(),
        }
    }

    /// True once the cursor has stepped past the last point.
    #[must_use]
    pub fn is_done(&self, idx: &DomainIndex) -> bool {
        self.row >= idx.rows.len()
    }

    /// Steps to the next point in lexicographic order.
    pub fn advance(&mut self, idx: &DomainIndex) {
        if let Some(row) = idx.rows.get(self.row) {
            self.offset += 1;
            if self.offset >= row.len() {
                self.row += 1;
                self.offset = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;

    fn triangle() -> Polyhedron {
        // 0 <= i <= 3, 0 <= j <= i — rows of growing length 1,2,3,4.
        Polyhedron::rect(&[(0, 3), (0, 3)]).with_constraint(Constraint::new(&[1, -1], 0))
    }

    #[test]
    fn row_structure() {
        let idx = triangle().index().unwrap();
        assert_eq!(idx.rows().len(), 4);
        assert_eq!(idx.len(), 10);
        assert_eq!(idx.rows()[2].prefix, Point::new(&[2]));
        assert_eq!((idx.rows()[2].lo, idx.rows()[2].hi), (0, 2));
        assert_eq!(idx.rows()[2].base, 3);
    }

    #[test]
    fn rank_roundtrip_all_points() {
        let idx = triangle().index().unwrap();
        for (k, p) in triangle().points().unwrap().enumerate() {
            assert_eq!(idx.rank_lt(&p), k as u64, "rank of {p}");
            assert_eq!(idx.point_at(k as u64), Some(p));
            assert!(idx.contains(&p));
        }
        assert_eq!(idx.point_at(idx.len()), None);
    }

    #[test]
    fn rank_of_non_member_points() {
        let idx = triangle().index().unwrap();
        // (1, 2) is outside (j > i); points before it: (0,0),(1,0),(1,1).
        assert_eq!(idx.rank_lt(&Point::new(&[1, 2])), 3);
        assert!(!idx.contains(&Point::new(&[1, 2])));
        assert_eq!(idx.rank_le(&Point::new(&[1, 2])), 3);
        // A point lex-below everything.
        assert_eq!(idx.rank_lt(&Point::new(&[-5, 0])), 0);
        // A point lex-above everything.
        assert_eq!(idx.rank_lt(&Point::new(&[9, 0])), 10);
        // Inner coordinate below the row start.
        assert_eq!(idx.rank_lt(&Point::new(&[2, -7])), 3);
        // Inner coordinate beyond the row end clamps to the row length.
        assert_eq!(idx.rank_lt(&Point::new(&[2, 100])), 6);
    }

    #[test]
    fn one_dimensional_domain() {
        let idx = Polyhedron::rect(&[(-3, 3)]).index().unwrap();
        assert_eq!(idx.len(), 7);
        assert_eq!(idx.rows().len(), 1);
        assert_eq!(idx.rank_lt(&Point::new(&[0])), 3);
        assert_eq!(idx.point_at(0), Some(Point::new(&[-3])));
        assert_eq!(idx.first(), Some(Point::new(&[-3])));
        assert_eq!(idx.last(), Some(Point::new(&[3])));
    }

    #[test]
    fn three_dimensional_ranks() {
        let idx = Polyhedron::grid(&[3, 4, 5]).index().unwrap();
        assert_eq!(idx.len(), 60);
        assert_eq!(idx.rank_lt(&Point::new(&[1, 2, 3])), 20 + 10 + 3);
        assert_eq!(idx.point_at(33), Some(Point::new(&[1, 2, 3])));
    }

    #[test]
    fn empty_domain() {
        let idx = Polyhedron::rect(&[(1, 0), (0, 5)]).index().unwrap();
        assert!(idx.is_empty());
        assert_eq!(idx.first(), None);
        assert_eq!(idx.last(), None);
        assert_eq!(idx.bounding_box(), None);
        assert_eq!(idx.rank_lt(&Point::new(&[0, 0])), 0);
    }

    #[test]
    fn bounding_box_of_triangle() {
        let bb = triangle().index().unwrap().bounding_box().unwrap();
        assert_eq!(bb, vec![(0, 3), (0, 3)]);
    }

    #[test]
    fn cursor_walks_whole_domain() {
        let poly = triangle();
        let idx = poly.index().unwrap();
        let mut c = idx.cursor();
        let mut seen = Vec::new();
        while let Some(p) = c.point(&idx) {
            assert_eq!(c.rank(&idx), seen.len() as u64);
            assert!(!c.is_done(&idx));
            seen.push(p);
            c.advance(&idx);
        }
        assert!(c.is_done(&idx));
        assert_eq!(c.rank(&idx), idx.len());
        let expected: Vec<Point> = poly.points().unwrap().collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn cursor_on_empty_domain_is_done() {
        let idx = Polyhedron::rect(&[(1, 0)]).index().unwrap();
        let c = idx.cursor();
        assert!(c.is_done(&idx));
        assert_eq!(c.point(&idx), None);
    }

    #[test]
    fn hand_built_rows_index() {
        // Same shape as grid 2x3 but authored by hand.
        let idx = DomainIndex::from_rows(
            2,
            vec![
                Row {
                    prefix: Point::new(&[0]),
                    lo: 0,
                    hi: 2,
                    base: 0,
                },
                Row {
                    prefix: Point::new(&[1]),
                    lo: 0,
                    hi: 2,
                    base: 3,
                },
            ],
        );
        assert_eq!(idx.len(), 6);
        assert_eq!(idx.rank_lt(&Point::new(&[1, 1])), 4);
        assert!(idx.contains(&Point::new(&[0, 2])));
        assert!(!idx.contains(&Point::new(&[0, 3])));
        // Inconsistent bases are accepted — the constructor trusts the
        // caller, and total sizing follows the largest end rank.
        let scrambled = DomainIndex::from_rows(
            2,
            vec![
                Row {
                    prefix: Point::new(&[0]),
                    lo: 0,
                    hi: 2,
                    base: 3,
                },
                Row {
                    prefix: Point::new(&[1]),
                    lo: 0,
                    hi: 2,
                    base: 0,
                },
            ],
        );
        assert_eq!(scrambled.len(), 6);
        // Rank order now inverts lexicographic order: consumers must
        // not assume monotonicity for hand-built indexes.
        assert!(scrambled.rank_lt(&Point::new(&[1, 0])) < scrambled.rank_lt(&Point::new(&[0, 0])));
    }

    #[test]
    #[should_panic(expected = "row prefix must fix all outer dimensions")]
    fn from_rows_rejects_wrong_prefix_dims() {
        let _ = DomainIndex::from_rows(
            3,
            vec![Row {
                prefix: Point::new(&[0]),
                lo: 0,
                hi: 1,
                base: 0,
            }],
        );
    }

    #[test]
    fn skewed_domain_rows_have_shifting_bounds() {
        // Fig. 9 style: 0 <= i <= 4, i <= j <= i + 2.
        let p = Polyhedron::new(
            2,
            vec![
                Constraint::lower_bound(2, 0, 0),
                Constraint::upper_bound(2, 0, 4),
                Constraint::new(&[-1, 1], 0),
                Constraint::new(&[1, -1], 2),
            ],
        );
        let idx = p.index().unwrap();
        assert_eq!(idx.rows().len(), 5);
        for (i, row) in idx.rows().iter().enumerate() {
            assert_eq!((row.lo, row.hi), (i as i64, i as i64 + 2));
        }
        assert_eq!(idx.len(), 15);
    }
}
