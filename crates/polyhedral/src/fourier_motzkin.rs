//! Fourier–Motzkin elimination, used to derive per-loop-level bounds so
//! that any convex polyhedron can be scanned in lexicographic order.
//!
//! This plays the role LLVM-Polly's code generation plays in the paper's
//! automation flow (Fig. 11): from the constraint form of a domain it
//! derives, for every loop level `d`, the set of constraints that mention
//! only variables `0..=d`, so the bounds of `x_d` are computable once the
//! outer coordinates are fixed.

use std::collections::HashSet;

use crate::constraint::Constraint;
use crate::error::PolyError;
use crate::point::Point;
use crate::polyhedron::Polyhedron;

/// Per-loop-level bound systems for a polyhedron.
///
/// `levels[d]` holds constraints whose innermost referenced variable is
/// `x_d`; together with a fixed prefix `(x_0, …, x_{d-1})` they determine
/// an inclusive integer interval for `x_d`.
///
/// # Examples
///
/// ```
/// use stencil_polyhedral::{Constraint, Point, Polyhedron};
///
/// // Triangle: 0 <= i <= 3, 0 <= j <= i.
/// let tri = Polyhedron::rect(&[(0, 3), (0, 3)])
///     .with_constraint(Constraint::new(&[1, -1], 0));
/// let sys = tri.level_system()?;
/// assert_eq!(sys.bounds(1, &Point::new(&[2])), (0, 2));
/// # Ok::<(), stencil_polyhedral::PolyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LevelSystem {
    dims: usize,
    levels: Vec<Vec<Constraint>>,
    infeasible: bool,
}

impl LevelSystem {
    /// Builds the level system for `poly` by eliminating variables from
    /// the innermost outward.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Unbounded`] if the (non-trivially-empty)
    /// polyhedron lacks a finite lower or upper bound in some dimension.
    ///
    /// # Panics
    ///
    /// Panics if the polyhedron is 0-dimensional.
    pub fn new(poly: &Polyhedron) -> Result<Self, PolyError> {
        let m = poly.dims();
        assert!(m >= 1, "level system requires at least one dimension");

        let mut pool: Vec<Constraint> = poly.constraints().to_vec();
        let mut seen: HashSet<Constraint> = pool.iter().copied().collect();
        let mut levels: Vec<Vec<Constraint>> = vec![Vec::new(); m];
        let mut infeasible = false;

        for d in (0..m).rev() {
            let (at_level, rest): (Vec<_>, Vec<_>) =
                pool.into_iter().partition(|c| c.innermost_var() == Some(d));
            pool = rest;
            if d > 0 {
                // Combine each lower bound on x_d with each upper bound to
                // obtain projected constraints over x_0..x_{d-1}.
                for l in at_level.iter().filter(|c| c.coeffs()[d] > 0) {
                    for u in at_level.iter().filter(|c| c.coeffs()[d] < 0) {
                        let combined = eliminate(l, u, d);
                        if seen.insert(combined) {
                            pool.push(combined);
                        }
                    }
                }
            }
            levels[d] = at_level;
        }

        // What is left mentions no variable: pure feasibility facts.
        for c in &pool {
            debug_assert!(c.innermost_var().is_none());
            if c.constant() < 0 {
                infeasible = true;
            }
        }

        let sys = Self {
            dims: m,
            levels,
            infeasible,
        };
        if !sys.infeasible {
            for d in 0..m {
                let has_lower = sys.levels[d].iter().any(|c| c.coeffs()[d] > 0);
                let has_upper = sys.levels[d].iter().any(|c| c.coeffs()[d] < 0);
                if !has_lower {
                    return Err(PolyError::Unbounded {
                        dim: d,
                        lower: true,
                    });
                }
                if !has_upper {
                    return Err(PolyError::Unbounded {
                        dim: d,
                        lower: false,
                    });
                }
            }
        }
        Ok(sys)
    }

    /// Number of dimensions.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// True if the constraint system was detected to be globally
    /// infeasible (no integer points regardless of coordinates).
    #[must_use]
    pub fn is_infeasible(&self) -> bool {
        self.infeasible
    }

    /// The inclusive integer interval of `x_d` once the `d` outer
    /// coordinates are fixed to `prefix`. The interval may be empty
    /// (`lo > hi`): the Fourier–Motzkin projection is exact over the
    /// rationals, so some prefixes admitted by outer levels can have no
    /// integer point in this one.
    ///
    /// # Panics
    ///
    /// Panics if `prefix.dims() != d` or `d >= self.dims()`.
    #[must_use]
    pub fn bounds(&self, d: usize, prefix: &Point) -> (i64, i64) {
        assert!(d < self.dims, "level {d} out of range");
        assert_eq!(prefix.dims(), d, "prefix must fix exactly {d} coordinates");
        if self.infeasible {
            return (1, 0);
        }
        let mut lo = i64::MIN;
        let mut hi = i64::MAX;
        for c in &self.levels[d] {
            let a = c.coeffs()[d];
            let mut partial = c.constant();
            for (k, &x) in prefix.as_slice().iter().enumerate() {
                partial += c.coeffs()[k] * x;
            }
            // a*x_d + partial >= 0
            if a > 0 {
                lo = lo.max(ceil_div(-partial, a));
            } else {
                hi = hi.min(floor_div(partial, -a));
            }
        }
        (lo, hi)
    }
}

/// Combines a lower-bound constraint `l` (`coeff_d > 0`) with an
/// upper-bound constraint `u` (`coeff_d < 0`) to eliminate `x_d`.
fn eliminate(l: &Constraint, u: &Constraint, d: usize) -> Constraint {
    let a = l.coeffs()[d];
    let b = -u.coeffs()[d];
    debug_assert!(a > 0 && b > 0);
    let dims = l.dims();
    let mut coeffs = vec![0i64; dims];
    for (k, c) in coeffs.iter_mut().enumerate() {
        *c = b * l.coeffs()[k] + a * u.coeffs()[k];
    }
    debug_assert_eq!(coeffs[d], 0);
    Constraint::new(&coeffs, b * l.constant() + a * u.constant())
}

/// Floor division for possibly-negative numerators (`b > 0`).
fn floor_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

/// Ceiling division for possibly-negative numerators (`b > 0`).
fn ceil_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b) + i64::from(a.rem_euclid(b) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_bounds_are_exact() {
        let b = Polyhedron::rect(&[(2, 7), (-3, 4)]);
        let sys = b.level_system().unwrap();
        assert_eq!(sys.bounds(0, &Point::new(&[])), (2, 7));
        assert_eq!(sys.bounds(1, &Point::new(&[5])), (-3, 4));
    }

    #[test]
    fn triangular_bounds_depend_on_prefix() {
        // 0 <= i <= 4, i <= j <= 4 (j >= i  <=>  -i + j >= 0).
        let p = Polyhedron::rect(&[(0, 4), (0, 4)]).with_constraint(Constraint::new(&[-1, 1], 0));
        let sys = p.level_system().unwrap();
        assert_eq!(sys.bounds(1, &Point::new(&[0])), (0, 4));
        assert_eq!(sys.bounds(1, &Point::new(&[3])), (3, 4));
        // Outer bounds tightened by projection: i can still reach 4.
        assert_eq!(sys.bounds(0, &Point::new(&[])), (0, 4));
    }

    #[test]
    fn projection_tightens_outer_dim() {
        // j between 10 and 12, and i = j - 10 exactly via two inequalities.
        let p = Polyhedron::new(
            2,
            vec![
                Constraint::new(&[-1, 1], -10), // j - i >= 10
                Constraint::new(&[1, -1], 12),  // j - i <= 12  (i - j + 12 >= 0)
                Constraint::lower_bound(2, 1, 10),
                Constraint::upper_bound(2, 1, 12),
            ],
        );
        let sys = p.level_system().unwrap();
        // From j <= 12 and j >= i + 10: i <= 2. From j >= 10, j <= i + 12: i >= -2.
        assert_eq!(sys.bounds(0, &Point::new(&[])), (-2, 2));
    }

    #[test]
    fn unbounded_detected() {
        let p = Polyhedron::new(1, vec![Constraint::lower_bound(1, 0, 0)]);
        assert_eq!(
            p.level_system().unwrap_err(),
            PolyError::Unbounded {
                dim: 0,
                lower: false
            }
        );
        let p = Polyhedron::new(1, vec![Constraint::upper_bound(1, 0, 0)]);
        assert_eq!(
            p.level_system().unwrap_err(),
            PolyError::Unbounded {
                dim: 0,
                lower: true
            }
        );
    }

    #[test]
    fn infeasible_constant_detected() {
        // i >= 5 and i <= 3 projects to the false constant constraint.
        let p = Polyhedron::rect(&[(5, 3), (0, 1)]);
        let sys = p.level_system().unwrap();
        // Not globally infeasible via constants here (the emptiness shows
        // up as an empty interval at level 0).
        assert_eq!(sys.bounds(0, &Point::new(&[])), (5, 3));

        // A 2-D system whose emptiness only appears after elimination:
        // j >= i + 1 and j <= i - 1.
        let p = Polyhedron::new(
            2,
            vec![
                Constraint::new(&[-1, 1], -1),
                Constraint::new(&[1, -1], -1),
                Constraint::lower_bound(2, 0, 0),
                Constraint::upper_bound(2, 0, 9),
            ],
        );
        let sys = p.level_system().unwrap();
        assert!(sys.is_infeasible());
        let (lo, hi) = sys.bounds(0, &Point::new(&[]));
        assert!(lo > hi);
    }

    #[test]
    fn division_helpers() {
        assert_eq!(ceil_div(5, 2), 3);
        assert_eq!(ceil_div(-5, 2), -2);
        assert_eq!(ceil_div(4, 2), 2);
        assert_eq!(floor_div(-5, 2), -3);
        assert_eq!(floor_div(5, 2), 2);
    }

    #[test]
    fn skewed_grid_bounds() {
        // Fig. 9-style skew: 0 <= i <= 9, i <= j <= i + 5.
        let p = Polyhedron::new(
            2,
            vec![
                Constraint::lower_bound(2, 0, 0),
                Constraint::upper_bound(2, 0, 9),
                Constraint::new(&[-1, 1], 0), // j >= i
                Constraint::new(&[1, -1], 5), // j <= i + 5
            ],
        );
        let sys = p.level_system().unwrap();
        assert_eq!(sys.bounds(1, &Point::new(&[4])), (4, 9));
        assert_eq!(sys.bounds(0, &Point::new(&[])), (0, 9));
    }
}
