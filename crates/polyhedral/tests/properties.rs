//! Property-based tests for the polyhedral substrate.
//!
//! These validate the analytical shortcuts (Fourier–Motzkin level bounds,
//! rank index, row-endpoint reuse-distance maximization) against
//! brute-force oracles on randomized domains.

use proptest::prelude::*;
use stencil_polyhedral::{
    input_domain, lex_lt, lex_positive, max_reuse_distance, max_reuse_distance_exhaustive,
    reuse_vector, Constraint, Point, Polyhedron, UnimodularTransform,
};

/// A random unimodular transform composed of skews, interchanges, and
/// reversals.
fn transform_2d() -> impl Strategy<Value = UnimodularTransform> {
    prop::collection::vec((0u8..3, -2i64..=2), 1..4).prop_map(|steps| {
        let mut t = UnimodularTransform::identity(2);
        for (kind, f) in steps {
            let step = match kind {
                0 => UnimodularTransform::skew(2, 0, 1, f),
                1 => UnimodularTransform::interchange(2, 0, 1),
                _ => UnimodularTransform::reversal(2, 0),
            };
            t = step.compose(&t);
        }
        t
    })
}

/// A random 2-D box with small extents.
fn small_box_2d() -> impl Strategy<Value = Polyhedron> {
    ((-5i64..5), (1i64..12), (-5i64..5), (1i64..12)).prop_map(|(lo0, e0, lo1, e1)| {
        Polyhedron::rect(&[(lo0, lo0 + e0 - 1), (lo1, lo1 + e1 - 1)])
    })
}

/// A random convex 2-D domain: a box plus up to two random cross
/// constraints (which may carve it into a skewed shape or empty it).
fn convex_2d() -> impl Strategy<Value = Polyhedron> {
    (
        small_box_2d(),
        prop::collection::vec(((-2i64..=2), (-2i64..=2), (-12i64..=12)), 0..3),
    )
        .prop_map(|(bx, cuts)| {
            let mut p = bx;
            for (a, b, c) in cuts {
                if a != 0 || b != 0 {
                    p = p.with_constraint(Constraint::new(&[a, b], c));
                }
            }
            p
        })
}

/// Brute-force membership scan over a generous bounding window.
fn brute_points(p: &Polyhedron) -> Vec<Point> {
    let mut out = Vec::new();
    for i in -40..40 {
        for j in -40..40 {
            let pt = Point::new(&[i, j]);
            if p.contains(&pt) {
                out.push(pt);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lex_iteration_matches_brute_force(poly in convex_2d()) {
        let fast: Vec<Point> = poly.points().unwrap().collect();
        let slow = brute_points(&poly);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn iteration_is_strictly_increasing(poly in convex_2d()) {
        let pts: Vec<Point> = poly.points().unwrap().collect();
        for w in pts.windows(2) {
            prop_assert!(lex_lt(&w[0], &w[1]));
        }
    }

    #[test]
    fn index_rank_roundtrip(poly in convex_2d()) {
        let idx = poly.index().unwrap();
        prop_assert_eq!(idx.len(), poly.points().unwrap().count() as u64);
        for (k, p) in poly.points().unwrap().enumerate() {
            prop_assert_eq!(idx.rank_lt(&p), k as u64);
            prop_assert_eq!(idx.point_at(k as u64), Some(p));
            prop_assert!(idx.contains(&p));
        }
    }

    #[test]
    fn rank_lt_counts_smaller_points(poly in convex_2d(), qi in -10i64..10, qj in -10i64..10) {
        let idx = poly.index().unwrap();
        let q = Point::new(&[qi, qj]);
        let expected = poly
            .points()
            .unwrap()
            .filter(|p| lex_lt(p, &q))
            .count() as u64;
        prop_assert_eq!(idx.rank_lt(&q), expected);
    }

    #[test]
    fn cursor_visits_every_point_once(poly in convex_2d()) {
        let idx = poly.index().unwrap();
        let mut c = idx.cursor();
        let mut n = 0u64;
        while let Some(p) = c.point(&idx) {
            prop_assert_eq!(idx.point_at(n), Some(p));
            c.advance(&idx);
            n += 1;
        }
        prop_assert_eq!(n, idx.len());
    }

    #[test]
    fn dilation_contains_every_shifted_copy(
        poly in small_box_2d(),
        offs in prop::collection::vec(((-2i64..=2), (-2i64..=2)), 1..6),
    ) {
        let offsets: Vec<Point> = offs.iter().map(|&(a, b)| Point::new(&[a, b])).collect();
        let dil = poly.dilated(&offsets);
        for f in &offsets {
            for p in poly.points().unwrap() {
                prop_assert!(dil.contains(&(p + *f)), "missing {} + {}", p, f);
            }
        }
    }

    #[test]
    fn max_reuse_distance_matches_exhaustive(
        poly in convex_2d(),
        fx in ((-2i64..=2), (-2i64..=2)),
        fy in ((-2i64..=2), (-2i64..=2)),
    ) {
        let f_x = Point::new(&[fx.0, fx.1]);
        let f_y = Point::new(&[fy.0, fy.1]);
        let r = reuse_vector(&f_x, &f_y);
        prop_assume!(lex_positive(&r));
        prop_assume!(poly.count().unwrap() > 0);
        let input = input_domain(&poly, &[f_x, f_y]).index().unwrap();
        let dax = poly.translated(&f_x).index().unwrap();
        let fast = max_reuse_distance(&input, &dax, &r).unwrap();
        let slow = max_reuse_distance_exhaustive(&input, &dax, &r).unwrap();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn max_reuse_distance_is_linear_on_boxes(
        poly in small_box_2d(),
        shift0 in 0i64..3,
        shift1 in 0i64..3,
    ) {
        // Three lexicographically descending offsets built from the shifts.
        let f_x = Point::new(&[shift0 + shift1, 0]);
        let f_y = Point::new(&[shift1, 0]);
        let f_z = Point::new(&[0, 0]);
        prop_assume!(shift0 > 0 && shift1 > 0);
        let offsets = [f_x, f_y, f_z];
        let input = input_domain(&poly, &offsets).index().unwrap();
        // FIFO-sizing convention: evaluate each pair over the *later*
        // (downstream) reference's data domain.
        let dy = poly.translated(&f_y).index().unwrap();
        let dz = poly.translated(&f_z).index().unwrap();
        let xz = max_reuse_distance(&input, &dz, &reuse_vector(&f_x, &f_z)).unwrap();
        let xy = max_reuse_distance(&input, &dy, &reuse_vector(&f_x, &f_y)).unwrap();
        let yz = max_reuse_distance(&input, &dz, &reuse_vector(&f_y, &f_z)).unwrap();
        prop_assert_eq!(xz, xy + yz);
    }

    #[test]
    fn transforms_are_point_bijections(t in transform_2d(), poly in small_box_2d()) {
        let inv = t.inverse();
        let td = t.apply_domain(&poly);
        // Same number of integer points (bijection).
        prop_assert_eq!(td.count().unwrap(), poly.count().unwrap());
        for p in poly.points().unwrap() {
            let q = t.apply(&p);
            prop_assert!(td.contains(&q), "{} -> {}", p, q);
            prop_assert_eq!(inv.apply(&q), p);
        }
    }

    #[test]
    fn transform_composition_associates(
        a in transform_2d(),
        b in transform_2d(),
        x in -5i64..5,
        y in -5i64..5,
    ) {
        let p = Point::new(&[x, y]);
        prop_assert_eq!(a.compose(&b).apply(&p), a.apply(&b.apply(&p)));
        prop_assert_eq!(a.compose(&b).determinant().abs(), 1);
    }

    #[test]
    fn count_agrees_between_index_and_iterator_3d(
        e0 in 1i64..6, e1 in 1i64..6, e2 in 1i64..6, cut in -4i64..4,
    ) {
        let poly = Polyhedron::grid(&[e0, e1, e2])
            .with_constraint(Constraint::new(&[1, 1, -1], cut));
        let idx = poly.index().unwrap();
        prop_assert_eq!(idx.len(), poly.points().unwrap().count() as u64);
    }
}
