//! Property-based differential verification of the parallel tiled
//! engine: over random windows, grids, tile counts, and thread counts,
//! the engine must agree bit-for-bit with the golden nested-loop
//! executor and the cycle-accurate machine.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;
use stencil_core::MemorySystemPlan;
use stencil_engine::{
    CompiledKernel, EngineError, ExecMode, InputGrid, KernelBackend, Session, SessionKernel,
    SliceSource, VecSink,
};
use stencil_kernels::{
    accelerate, extra_suite, paper_suite, run_golden, Benchmark, GridValues, KernelExpr, KernelOps,
    KernelStage,
};
use stencil_polyhedral::{DomainIndex, Point, Polyhedron};

/// Index-weighted window sum: sensitive to tap order, so a backend
/// that permutes the window is caught even when a plain sum would
/// agree.
fn weighted_sum(vals: &[f64]) -> f64 {
    vals.iter()
        .enumerate()
        .map(|(i, v)| (i as f64 + 1.0) * v)
        .sum()
}

/// [`weighted_sum`] authored as an expression tree. Mirrors the
/// closure's evaluation order exactly (including `sum()`'s leading
/// `0.0`) so bytecode and closure agree bit-for-bit.
fn weighted_expr(taps: usize) -> KernelExpr {
    (0..taps).fold(KernelExpr::constant(0.0), |acc, i| {
        acc + KernelExpr::constant(i as f64 + 1.0) * KernelExpr::tap(i)
    })
}

/// Deterministic pseudo-random grid values seeded per case.
fn seeded_grid(extents: &[i64], seed: u64) -> GridValues {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    GridValues::from_fn(&Polyhedron::grid(extents), |_| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (1u64 << 25) as f64 - 128.0
    })
    .expect("grid")
}

/// Runs the engine on `plan` with input values drawn from `grid`.
fn engine_outputs(
    plan: &MemorySystemPlan,
    grid: &GridValues,
    mode: ExecMode,
    threads: usize,
) -> Result<Vec<f64>, TestCaseError> {
    let in_idx = plan
        .input_domain()
        .index()
        .map_err(|e| TestCaseError::fail(format!("input index: {e}")))?;
    let mut in_vals = Vec::with_capacity(in_idx.len() as usize);
    let mut c = in_idx.cursor();
    while let Some(p) = c.point(&in_idx) {
        match grid.value_at(&p) {
            Some(v) => in_vals.push(v),
            None => return Err(TestCaseError::fail(format!("grid misses {p:?}"))),
        }
        c.advance(&in_idx);
    }
    let input =
        InputGrid::new(&in_idx, &in_vals).map_err(|e| TestCaseError::fail(format!("{e}")))?;
    Session::new(plan)
        .kernel(SessionKernel::Closure(&weighted_sum))
        .mode(mode)
        .threads(threads)
        .run(&input)
        .map(|run| run.outputs)
        .map_err(|e| TestCaseError::fail(format!("engine: {e}")))
}

/// Small per-kernel grid extents: the window's span per dimension plus
/// a case-chosen slack, so every suite kernel runs on an arbitrary
/// (but always valid) shrunken grid.
fn suite_extents(bench: &Benchmark, slack: &[i64; 3]) -> Vec<i64> {
    (0..bench.dims())
        .map(|d| {
            let min = bench.window().iter().map(|p| p[d]).min().expect("window");
            let max = bench.window().iter().map(|p| p[d]).max().expect("window");
            (max - min + 1) + 2 + slack[d.min(2)]
        })
        .collect()
}

/// Input values of `plan`'s input domain drawn from `grid`.
fn domain_values(plan: &MemorySystemPlan, grid: &GridValues) -> Vec<f64> {
    let in_idx = plan.input_domain().index().expect("input index");
    let mut vals = Vec::with_capacity(in_idx.len() as usize);
    let mut c = in_idx.cursor();
    while let Some(p) = c.point(&in_idx) {
        vals.push(grid.value_at(&p).expect("covered"));
        c.advance(&in_idx);
    }
    vals
}

fn bench_2d(offs: &[(i64, i64)], rows: i64, cols: i64) -> Benchmark {
    let window: Vec<Point> = offs.iter().map(|&(a, b)| Point::new(&[a, b])).collect();
    Benchmark::new(
        "PROP2D",
        vec![rows, cols],
        window,
        KernelOps::default(),
        weighted_sum,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine == golden == machine on random 2D windows, grid shapes,
    /// band counts, and worker counts.
    #[test]
    fn engine_matches_golden_and_machine_2d(
        offs in prop::collection::btree_set(((-2i64..=2), (-2i64..=2)), 2..=6),
        rows in 8i64..24,
        cols in 8i64..24,
        tiles in 1usize..=8,
        threads in 1usize..=4,
        seed in 0u64..1_000_000,
    ) {
        let offs: Vec<(i64, i64)> = offs.into_iter().collect();
        let bench = bench_2d(&offs, rows, cols);
        let extents = [rows, cols];
        let grid = seeded_grid(&extents, seed);

        let golden = run_golden(&bench, &extents, &grid).expect("golden");
        let machine = accelerate(&bench, &extents, &grid).expect("machine");
        prop_assert_eq!(&machine.outputs, &golden, "machine vs golden");

        let spec = bench.spec_for(&extents).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let engine = engine_outputs(&plan, &grid, ExecMode::Tiled { tiles }, threads)?;
        prop_assert_eq!(
            &engine, &golden,
            "engine({} tiles, {} threads) vs golden", tiles, threads
        );
    }

    /// Same three-way agreement on random 3D kernels.
    #[test]
    fn engine_matches_golden_and_machine_3d(
        offs in prop::collection::btree_set(
            ((-1i64..=1), (-1i64..=1), (-1i64..=1)), 2..=6),
        e0 in 5i64..9,
        e1 in 5i64..9,
        e2 in 5i64..9,
        tiles in 1usize..=5,
        seed in 0u64..1_000_000,
    ) {
        let offs: Vec<(i64, i64, i64)> = offs.into_iter().collect();
        let window: Vec<Point> = offs
            .iter()
            .map(|&(a, b, c)| Point::new(&[a, b, c]))
            .collect();
        let bench = Benchmark::new(
            "PROP3D",
            vec![e0, e1, e2],
            window,
            KernelOps::default(),
            weighted_sum,
        );
        let extents = [e0, e1, e2];
        let grid = seeded_grid(&extents, seed);

        let golden = run_golden(&bench, &extents, &grid).expect("golden");
        let machine = accelerate(&bench, &extents, &grid).expect("machine");
        prop_assert_eq!(&machine.outputs, &golden, "machine vs golden");

        let spec = bench.spec_for(&extents).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let engine = engine_outputs(&plan, &grid, ExecMode::Tiled { tiles }, 0)?;
        prop_assert_eq!(&engine, &golden, "engine({} tiles) vs golden", tiles);
    }

    /// On Appendix 9.4 tradeoff plans the engine's default sharding
    /// (one band per off-chip stream) stays exact, and its reported
    /// off-chip traffic never undercounts the input domain.
    #[test]
    fn engine_matches_golden_on_tradeoff_plans(
        offs in prop::collection::btree_set(((-2i64..=2), (-2i64..=2)), 2..=6),
        rows in 10i64..20,
        cols in 10i64..20,
        streams_pick in 0usize..6,
        seed in 0u64..1_000_000,
    ) {
        let offs: Vec<(i64, i64)> = offs.into_iter().collect();
        let bench = bench_2d(&offs, rows, cols);
        let extents = [rows, cols];
        let grid = seeded_grid(&extents, seed);
        let golden = run_golden(&bench, &extents, &grid).expect("golden");

        let spec = bench.spec_for(&extents).expect("spec");
        let base = MemorySystemPlan::generate(&spec).expect("plan");
        let streams = 1 + streams_pick % base.port_count();
        let plan = base.with_offchip_streams(streams).expect("tradeoff");
        prop_assert_eq!(plan.offchip_streams(), streams);

        let in_idx = plan.input_domain().index().expect("input index");
        let mut in_vals = Vec::with_capacity(in_idx.len() as usize);
        let mut c = in_idx.cursor();
        while let Some(p) = c.point(&in_idx) {
            in_vals.push(grid.value_at(&p).expect("covered"));
            c.advance(&in_idx);
        }
        let input = InputGrid::new(&in_idx, &in_vals).expect("input");
        let run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&weighted_sum))
            .run(&input)
            .map_err(|e| TestCaseError::fail(format!("engine: {e}")))?;

        prop_assert_eq!(&run.outputs, &golden, "{} streams", streams);
        // Sharding into k bands re-fetches halo rows, never fewer
        // elements than the input domain itself.
        let report = run.report.stages[0].engine.as_ref().expect("engine report");
        prop_assert!(report.halo_elements >= in_idx.len());
        prop_assert!(report.tiles >= 1);
        prop_assert!(report.tiles <= streams);
    }

    /// The bounded-memory streaming path agrees bit-for-bit with the
    /// in-core engine at every chunk size and thread count, and its
    /// measured peak residency honors the planned halo bound.
    #[test]
    fn streaming_matches_in_core_2d(
        offs in prop::collection::btree_set(((-2i64..=2), (-2i64..=2)), 2..=6),
        rows in 8i64..20,
        cols in 8i64..20,
        chunk in 1u64..=10,
        threads in 1usize..=4,
        seed in 0u64..1_000_000,
    ) {
        let offs: Vec<(i64, i64)> = offs.into_iter().collect();
        let bench = bench_2d(&offs, rows, cols);
        let extents = [rows, cols];
        let grid = seeded_grid(&extents, seed);
        let spec = bench.spec_for(&extents).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let in_core = engine_outputs(&plan, &grid, ExecMode::InCore, 0)?;

        let in_idx = plan.input_domain().index().expect("input index");
        let mut in_vals = Vec::with_capacity(in_idx.len() as usize);
        let mut c = in_idx.cursor();
        while let Some(p) = c.point(&in_idx) {
            in_vals.push(grid.value_at(&p).expect("covered"));
            c.advance(&in_idx);
        }
        let mut source = SliceSource::new(&in_vals);
        let mut sink = VecSink::new();
        let report = Session::new(&plan)
            .kernel(SessionKernel::Closure(&weighted_sum))
            .mode(ExecMode::Streaming { chunk_rows: Some(chunk) })
            .threads(threads)
            .run_streaming(&mut source, &mut sink)
            .map_err(|e| TestCaseError::fail(format!("streaming: {e}")))?;
        prop_assert_eq!(&sink.values, &in_core, "chunk={} threads={}", chunk, threads);
        prop_assert!(
            report.within_residency_bound(),
            "peak {} > bound {}", report.peak_resident, report.resident_bound
        );
        let stage = report.stages[0].stream.as_ref().expect("stream report");
        prop_assert_eq!(stage.values_in <= in_idx.len(), true);
    }

    /// Neither execution path may panic, whatever the spec shape, band
    /// count, thread count, or input consistency: oversized domains,
    /// scrambled hand-built indexes, and short value buffers must all
    /// surface as `Err`, never as an abort.
    #[test]
    fn engine_and_streaming_never_panic(
        offs in prop::collection::btree_set(((-2i64..=2), (-2i64..=2)), 1..=6),
        rows in 6i64..16,
        cols in 6i64..16,
        tiles in 1usize..=10,
        threads in 1usize..=4,
        chunk in 0u64..=20,
        scramble in 0usize..=3,
        seed in 0u64..1_000_000,
    ) {
        let offs: Vec<(i64, i64)> = offs.into_iter().collect();
        let bench = bench_2d(&offs, rows, cols);
        let spec = bench.spec_for(&[rows, cols]).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let in_idx = plan.input_domain().index().expect("input index");
        let mut idx_rows = in_idx.rows().to_vec();
        match scramble {
            // Shift one row left: same point count, broken coverage.
            1 if !idx_rows.is_empty() => {
                let k = (seed as usize) % idx_rows.len();
                idx_rows[k].lo -= 1;
                idx_rows[k].hi -= 1;
            }
            // Swap two bases: rank order inverts lexicographic order.
            2 if idx_rows.len() > 1 => {
                let k = (seed as usize) % (idx_rows.len() - 1);
                let b = idx_rows[k].base;
                idx_rows[k].base = idx_rows[k + 1].base;
                idx_rows[k + 1].base = b;
            }
            _ => {}
        }
        let idx = DomainIndex::from_rows(in_idx.dims(), idx_rows);
        // Case 3 starves the value buffer by one element.
        let n = if scramble == 3 { idx.len().saturating_sub(1) } else { idx.len() };
        let vals: Vec<f64> = (0..n).map(|r| r as f64 * 0.5 - 3.0).collect();

        let caught = catch_unwind(AssertUnwindSafe(|| {
            InputGrid::new(&idx, &vals).and_then(|input| {
                Session::new(&plan)
                    .kernel(SessionKernel::Closure(&weighted_sum))
                    .mode(ExecMode::Tiled { tiles })
                    .threads(threads)
                    .run(&input)
            })
        }));
        prop_assert!(caught.is_ok(), "in-core session panicked (scramble={})", scramble);

        let caught = catch_unwind(AssertUnwindSafe(|| {
            let mut source = SliceSource::new(&vals);
            let mut sink = VecSink::new();
            Session::new(&plan)
                .kernel(SessionKernel::Closure(&weighted_sum))
                .mode(ExecMode::Streaming {
                    chunk_rows: if chunk > 0 { Some(chunk) } else { None },
                })
                .threads(threads)
                .run_streaming(&mut source, &mut sink)
        }));
        prop_assert!(caught.is_ok(), "streaming session panicked (scramble={})", scramble);
    }

    /// Every suite benchmark's expression compiles to bytecode that is
    /// bit-identical to its authoring closure on arbitrary windows
    /// (NaNs compare equal) — the compiled datapath is a drop-in
    /// replacement for the authored one on all twelve kernels.
    #[test]
    fn compiled_suite_kernels_match_closures_on_arbitrary_windows(
        raw in prop::collection::vec(-4_000_000_000i64..4_000_000_000, 8..=48),
    ) {
        for bench in paper_suite().into_iter().chain(extra_suite()) {
            let ck = CompiledKernel::for_benchmark(&bench)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", bench.name())))?
                .expect("every suite benchmark carries an expression");
            let compute = bench.compute_fn();
            let window: Vec<f64> = (0..bench.window().len())
                .map(|i| raw[i % raw.len()] as f64 / 1e6)
                .collect();
            let got = ck.eval(&window);
            let want = compute(&window);
            prop_assert!(
                got == want || (got.is_nan() && want.is_nan()),
                "{}: bytecode {:?} vs closure {:?} on {:?}",
                bench.name(), got, want, window
            );
        }
    }

    /// The unrolled multi-output sweep is bit-identical to the
    /// single-output compiled sweep and to the authored closure on
    /// every suite kernel, whatever the grid shape, unroll factor,
    /// thread count, and streaming chunk height. Grouped dispatch,
    /// the single-row fallback at band edges, and the scalar lane
    /// tail are all exercised by the varying extents.
    #[test]
    fn unrolled_sweeps_match_closure_on_all_suite_kernels(
        s0 in 0i64..=10,
        s1 in 0i64..=10,
        s2 in 0i64..=5,
        threads in 1usize..=3,
        chunk in 1u64..=6,
        seed in 0u64..1_000_000,
    ) {
        for bench in paper_suite().into_iter().chain(extra_suite()) {
            let extents = suite_extents(&bench, &[s0, s1, s2]);
            let grid = seeded_grid(&extents, seed);
            let spec = bench.spec_for(&extents).expect("spec");
            let plan = MemorySystemPlan::generate(&spec).expect("plan");
            let in_idx = plan.input_domain().index().expect("input index");
            let in_vals = domain_values(&plan, &grid);
            let input = InputGrid::new(&in_idx, &in_vals).expect("input");
            let compute = bench.compute_fn();

            let closure = Session::new(&plan)
                .kernel(SessionKernel::Closure(&compute))
                .run(&input)
                .map_err(|e| TestCaseError::fail(format!("{}: closure: {e}", bench.name())))?
                .outputs;
            let ck = CompiledKernel::for_benchmark(&bench)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", bench.name())))?
                .expect("every suite benchmark carries an expression");
            let single = Session::new(&plan)
                .kernel(SessionKernel::Compiled(&ck))
                .run(&input)
                .map_err(|e| TestCaseError::fail(format!("{}: U=1: {e}", bench.name())))?
                .outputs;
            prop_assert_eq!(&single, &closure, "{}: U=1 vs closure", bench.name());

            for u in [2usize, 4, 8] {
                let unrolled = Session::new(&plan)
                    .kernel(SessionKernel::Compiled(&ck))
                    .unroll(u)
                    .threads(threads)
                    .run(&input)
                    .map_err(|e| TestCaseError::fail(
                        format!("{}: U={u}: {e}", bench.name())))?
                    .outputs;
                prop_assert_eq!(
                    &unrolled, &closure,
                    "{}: U={} vs closure ({} threads)", bench.name(), u, threads
                );

                let mut source = SliceSource::new(&in_vals);
                let mut sink = VecSink::new();
                Session::new(&plan)
                    .kernel(SessionKernel::Compiled(&ck))
                    .unroll(u)
                    .mode(ExecMode::Streaming { chunk_rows: Some(chunk) })
                    .run_streaming(&mut source, &mut sink)
                    .map_err(|e| TestCaseError::fail(
                        format!("{}: U={u} streaming: {e}", bench.name())))?;
                prop_assert_eq!(
                    &sink.values, &closure,
                    "{}: U={} streaming (chunk={}) vs closure", bench.name(), u, chunk
                );
            }
        }
    }

    /// Heterogeneous temporal chains over random window *pairs*: the
    /// fused two-stage streaming pipeline reassembles bit-identically
    /// to sequentially materialised stages, and every stage's observed
    /// peak residency stays within its own declared per-stage bound
    /// (whose sum in turn covers the whole session's peak).
    #[test]
    fn mixed_window_chains_stay_within_per_stage_bounds(
        offs1 in prop::collection::btree_set(((-2i64..=2), (-2i64..=2)), 2..=6),
        offs2 in prop::collection::btree_set(((-2i64..=2), (-2i64..=2)), 2..=6),
        rows in 14i64..24,
        cols in 14i64..24,
        chunk in 1u64..=6,
        threads in 1usize..=3,
        seed in 0u64..1_000_000,
    ) {
        let offs1: Vec<(i64, i64)> = offs1.into_iter().collect();
        let offs2: Vec<(i64, i64)> = offs2.into_iter().collect();
        let bench = bench_2d(&offs1, rows, cols);
        let extents = [rows, cols];
        let grid = seeded_grid(&extents, seed);
        let spec = bench.spec_for(&extents).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");

        let window2: Vec<Point> = offs2.iter().map(|&(a, b)| Point::new(&[a, b])).collect();
        let stage2 = KernelStage::new("st2", window2, weighted_sum);

        // Some random pairs legitimately do not chain (the downstream
        // stage's dilation of the eroded domain misses upstream rows);
        // `then` rejects those with the typed Config error — skip them.
        let session = Session::new(&plan)
            .kernel(SessionKernel::Closure(&weighted_sum))
            .mode(ExecMode::Streaming { chunk_rows: Some(chunk) })
            .threads(threads);
        let session = match session.then(&stage2) {
            Ok(s) => s,
            Err(EngineError::Config { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("then: {e}"))),
        };

        // Sequential reference: materialise the intermediate grid.
        let in_idx = plan.input_domain().index().expect("input index");
        let in_vals = domain_values(&plan, &grid);
        let input = InputGrid::new(&in_idx, &in_vals).expect("input");
        let first = Session::new(&plan)
            .kernel(SessionKernel::Closure(&weighted_sum))
            .run(&input)
            .map_err(|e| TestCaseError::fail(format!("stage 1: {e}")))?
            .outputs;
        let next = plan
            .chain_next("st2", stage2.window())
            .map_err(|e| TestCaseError::fail(format!("chain_next: {e}")))?;
        let mid_idx = next.input_domain().index().expect("mid index");
        let mid = InputGrid::new(&mid_idx, &first).expect("intermediate");
        let golden = Session::new(&next)
            .kernel(SessionKernel::Closure(&weighted_sum))
            .run(&mid)
            .map_err(|e| TestCaseError::fail(format!("stage 2: {e}")))?
            .outputs;

        // Fused heterogeneous chain, streaming at a random chunk.
        let mut source = SliceSource::new(&in_vals);
        let mut sink = VecSink::new();
        let report = session
            .run_streaming(&mut source, &mut sink)
            .map_err(|e| TestCaseError::fail(format!("chained streaming: {e}")))?;
        prop_assert_eq!(&sink.values, &golden, "chunk={} threads={}", chunk, threads);

        let mut summed = 0u64;
        for s in &report.stages {
            let sm = s.stream.as_ref().expect("stream report");
            prop_assert!(
                sm.peak_resident <= s.resident_bound,
                "stage {}: peak {} > declared bound {}",
                s.label, sm.peak_resident, s.resident_bound
            );
            summed += s.resident_bound;
        }
        prop_assert!(
            report.peak_resident <= summed,
            "session peak {} > summed per-stage bounds {}",
            report.peak_resident, summed
        );
        prop_assert!(report.within_residency_bound());
    }

    /// The compiled row-sweep executor and the scalar bytecode
    /// interpreter both agree bit-for-bit with the closure engine on
    /// random 2D windows, grids, band counts, and thread counts — and
    /// the compiled streaming path matches them all.
    #[test]
    fn compiled_engine_matches_closure_engine_2d(
        offs in prop::collection::btree_set(((-2i64..=2), (-2i64..=2)), 2..=6),
        rows in 8i64..20,
        cols in 8i64..20,
        tiles in 1usize..=6,
        threads in 1usize..=4,
        chunk in 1u64..=8,
        seed in 0u64..1_000_000,
    ) {
        let offs: Vec<(i64, i64)> = offs.into_iter().collect();
        let bench = bench_2d(&offs, rows, cols);
        let extents = [rows, cols];
        let grid = seeded_grid(&extents, seed);
        let spec = bench.spec_for(&extents).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");

        let kernel = CompiledKernel::compile_checked(
            &weighted_expr(offs.len()),
            offs.len(),
            &weighted_sum,
        )
        .map_err(|e| TestCaseError::fail(format!("compile: {e}")))?;

        let closure = engine_outputs(&plan, &grid, ExecMode::Tiled { tiles }, threads)?;

        let in_idx = plan.input_domain().index().expect("input index");
        let mut in_vals = Vec::with_capacity(in_idx.len() as usize);
        let mut c = in_idx.cursor();
        while let Some(p) = c.point(&in_idx) {
            in_vals.push(grid.value_at(&p).expect("covered"));
            c.advance(&in_idx);
        }
        let input = InputGrid::new(&in_idx, &in_vals).expect("input");

        let swept = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .mode(ExecMode::Tiled { tiles })
            .threads(threads)
            .run(&input)
            .map_err(|e| TestCaseError::fail(format!("sweep: {e}")))?;
        prop_assert_eq!(
            &swept.outputs, &closure,
            "sweep vs closure ({} tiles, {} threads)", tiles, threads
        );

        let scalar = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .backend(KernelBackend::Closure)
            .mode(ExecMode::Tiled { tiles })
            .threads(threads)
            .run(&input)
            .map_err(|e| TestCaseError::fail(format!("scalar: {e}")))?;
        prop_assert_eq!(&scalar.outputs, &closure, "scalar bytecode vs closure");

        let mut source = SliceSource::new(&in_vals);
        let mut sink = VecSink::new();
        Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .mode(ExecMode::Streaming { chunk_rows: Some(chunk) })
            .threads(threads)
            .run_streaming(&mut source, &mut sink)
            .map_err(|e| TestCaseError::fail(format!("streaming: {e}")))?;
        prop_assert_eq!(
            &sink.values, &closure,
            "compiled streaming vs closure (chunk={})", chunk
        );
    }
}
