//! The `.sgrid` binary grid format and its zero-copy mmap reader.
//!
//! `.sgrid` is the engine's on-disk grid container: a fixed little-endian
//! header followed immediately by the row-major `f64` payload, stored
//! exactly as the in-memory streaming layer lays values out. Because the
//! header length is a multiple of 8 and `mmap` returns page-aligned
//! memory, the payload of a mapped file is always 8-byte aligned — a
//! [`MappedGrid`] hands out the payload as a borrowed `&[f64]` with zero
//! parsing and zero copying, which is what lets [`crate::MmapSource`]
//! feed the contiguous fast path ([`crate::chain`] → `rowexec`) straight
//! from the page cache.
//!
//! ## Layout (version 1)
//!
//! | offset        | size      | field                                  |
//! |---------------|-----------|----------------------------------------|
//! | 0             | 8         | magic `b"SGRIDBIN"`                    |
//! | 8             | 4         | `u32` LE version (must be 1)           |
//! | 12            | 4         | `u32` LE dtype (1 = little-endian f64) |
//! | 16            | 8         | `u64` LE dimension count `n` (1..=8)   |
//! | 24            | 8·`n`     | `u64` LE extent per dimension, all > 0 |
//! | 24 + 8·`n`    | 8·∏extent | row-major little-endian f64 payload    |
//!
//! The file length must equal the payload offset plus the payload size
//! *exactly*; trailing bytes are rejected, so a well-formed header can
//! never mask a half-written payload.

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use memmap2::Mmap;

/// Magic bytes opening every `.sgrid` file.
pub const SGRID_MAGIC: [u8; 8] = *b"SGRIDBIN";
/// The only format version this engine reads or writes.
pub const SGRID_VERSION: u32 = 1;
/// The only dtype this engine reads or writes: little-endian `f64`.
pub const SGRID_DTYPE_F64: u32 = 1;
/// Most dimensions a grid header may declare.
pub const SGRID_MAX_DIMS: u64 = 8;

/// Why an `.sgrid` file (or a buffer claiming to be one) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GridFormatError {
    /// The file ends inside the fixed or extents header.
    TruncatedHeader {
        /// Bytes the header needed.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The first 8 bytes are not `b"SGRIDBIN"`.
    BadMagic,
    /// A version this engine does not speak.
    UnsupportedVersion {
        /// The version the file declared.
        version: u32,
    },
    /// A payload dtype this engine does not speak.
    UnsupportedDtype {
        /// The dtype the file declared.
        dtype: u32,
    },
    /// Dimension count outside `1..=8`.
    BadDimCount {
        /// The count the file declared.
        dims: u64,
    },
    /// An extent of zero — the grid would hold no points.
    ZeroExtent {
        /// The offending dimension.
        dim: usize,
    },
    /// The extents multiply past `u64` (or the payload byte count past
    /// the addressable range) — the declared grid cannot exist.
    ExtentOverflow,
    /// The file is shorter than header + declared payload.
    TruncatedPayload {
        /// Payload bytes the extents promise.
        expected_bytes: u64,
        /// Payload bytes actually present.
        got_bytes: u64,
    },
    /// The file is longer than header + declared payload.
    TrailingBytes {
        /// Unexplained bytes past the payload.
        extra: u64,
    },
    /// The mapped payload is not 8-byte aligned or the platform cannot
    /// view little-endian bytes as host `f64`s (big-endian target).
    Misaligned,
    /// An underlying filesystem operation failed.
    Io {
        /// The I/O error's message.
        detail: String,
    },
}

impl fmt::Display for GridFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridFormatError::TruncatedHeader { needed, got } => {
                write!(f, "header truncated: need {needed} bytes, file has {got}")
            }
            GridFormatError::BadMagic => write!(f, "not an .sgrid file (bad magic)"),
            GridFormatError::UnsupportedVersion { version } => {
                write!(f, "unsupported .sgrid version {version} (engine speaks 1)")
            }
            GridFormatError::UnsupportedDtype { dtype } => {
                write!(f, "unsupported dtype {dtype} (engine speaks 1 = f64 LE)")
            }
            GridFormatError::BadDimCount { dims } => {
                write!(f, "dimension count {dims} outside 1..={SGRID_MAX_DIMS}")
            }
            GridFormatError::ZeroExtent { dim } => {
                write!(f, "extent of dimension {dim} is zero")
            }
            GridFormatError::ExtentOverflow => {
                write!(f, "extents overflow the addressable payload size")
            }
            GridFormatError::TruncatedPayload {
                expected_bytes,
                got_bytes,
            } => write!(
                f,
                "payload truncated: extents promise {expected_bytes} bytes, file has {got_bytes}"
            ),
            GridFormatError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes past the declared payload")
            }
            GridFormatError::Misaligned => {
                write!(f, "payload is not viewable as aligned host f64s")
            }
            GridFormatError::Io { detail } => write!(f, "grid file i/o failed: {detail}"),
        }
    }
}

impl Error for GridFormatError {}

impl From<std::io::Error> for GridFormatError {
    fn from(e: std::io::Error) -> Self {
        GridFormatError::Io {
            detail: e.to_string(),
        }
    }
}

/// Fixed-header byte count: magic + version + dtype + dim count.
const FIXED_HEADER: usize = 24;

/// A decoded, validated `.sgrid` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridHeader {
    extents: Vec<u64>,
}

impl GridHeader {
    /// Builds a header for the given extents.
    ///
    /// # Errors
    ///
    /// Rejects empty/oversized dimension lists, zero extents, and
    /// element counts that overflow `u64` bytes.
    pub fn new(extents: &[u64]) -> Result<GridHeader, GridFormatError> {
        let dims = extents.len() as u64;
        if dims == 0 || dims > SGRID_MAX_DIMS {
            return Err(GridFormatError::BadDimCount { dims });
        }
        let mut elements: u64 = 1;
        for (dim, &e) in extents.iter().enumerate() {
            if e == 0 {
                return Err(GridFormatError::ZeroExtent { dim });
            }
            elements = elements
                .checked_mul(e)
                .ok_or(GridFormatError::ExtentOverflow)?;
        }
        elements
            .checked_mul(8)
            .ok_or(GridFormatError::ExtentOverflow)?;
        Ok(GridHeader {
            extents: extents.to_vec(),
        })
    }

    /// The per-dimension extents.
    #[must_use]
    pub fn extents(&self) -> &[u64] {
        &self.extents
    }

    /// Total points in the grid (product of extents).
    #[must_use]
    pub fn elements(&self) -> u64 {
        self.extents.iter().product()
    }

    /// Byte offset of the payload: `24 + 8 * ndim`. Always a multiple
    /// of 8, so a page-aligned map keeps the payload `f64`-aligned.
    #[must_use]
    pub fn payload_offset(&self) -> usize {
        FIXED_HEADER + 8 * self.extents.len()
    }

    /// Payload byte count: `8 * elements()`.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.elements() * 8
    }

    /// Serializes the header to its on-disk byte form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload_offset());
        out.extend_from_slice(&SGRID_MAGIC);
        out.extend_from_slice(&SGRID_VERSION.to_le_bytes());
        out.extend_from_slice(&SGRID_DTYPE_F64.to_le_bytes());
        out.extend_from_slice(&(self.extents.len() as u64).to_le_bytes());
        for &e in &self.extents {
            out.extend_from_slice(&e.to_le_bytes());
        }
        out
    }

    /// Decodes and validates a header from the opening bytes of a file.
    ///
    /// `file_len`, when known, is checked against the declared payload:
    /// short files are [`GridFormatError::TruncatedPayload`], long ones
    /// [`GridFormatError::TrailingBytes`].
    ///
    /// # Errors
    ///
    /// Any structural defect listed on [`GridFormatError`].
    pub fn decode(bytes: &[u8], file_len: Option<u64>) -> Result<GridHeader, GridFormatError> {
        if bytes.len() < FIXED_HEADER {
            return Err(GridFormatError::TruncatedHeader {
                needed: FIXED_HEADER,
                got: bytes.len(),
            });
        }
        if bytes[0..8] != SGRID_MAGIC {
            return Err(GridFormatError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != SGRID_VERSION {
            return Err(GridFormatError::UnsupportedVersion { version });
        }
        let dtype = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        if dtype != SGRID_DTYPE_F64 {
            return Err(GridFormatError::UnsupportedDtype { dtype });
        }
        let dims = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        if dims == 0 || dims > SGRID_MAX_DIMS {
            return Err(GridFormatError::BadDimCount { dims });
        }
        let ndim = usize::try_from(dims).expect("dims <= 8 fits usize");
        let needed = FIXED_HEADER + 8 * ndim;
        if bytes.len() < needed {
            return Err(GridFormatError::TruncatedHeader {
                needed,
                got: bytes.len(),
            });
        }
        let mut extents = Vec::with_capacity(ndim);
        for d in 0..ndim {
            let at = FIXED_HEADER + 8 * d;
            extents.push(u64::from_le_bytes(
                bytes[at..at + 8].try_into().expect("8 bytes"),
            ));
        }
        let header = GridHeader::new(&extents)?;
        if let Some(len) = file_len {
            let expected = header.payload_offset() as u64 + header.payload_bytes();
            let got_payload = len.saturating_sub(header.payload_offset() as u64);
            if len < expected {
                return Err(GridFormatError::TruncatedPayload {
                    expected_bytes: header.payload_bytes(),
                    got_bytes: got_payload,
                });
            }
            if len > expected {
                return Err(GridFormatError::TrailingBytes {
                    extra: len - expected,
                });
            }
        }
        Ok(header)
    }
}

/// A validated `.sgrid` file mapped into memory: a shared handle whose
/// [`values`](MappedGrid::values) is a borrowed `&[f64]` view of the
/// payload pages — no decode, no copy. Clones share the same mapping.
#[derive(Debug, Clone)]
pub struct MappedGrid {
    map: Arc<Mmap>,
    header: GridHeader,
    /// Eager decode fallback for targets where the little-endian payload
    /// cannot be viewed as host floats (big-endian). `None` on LE.
    #[cfg(target_endian = "big")]
    decoded: Arc<Vec<f64>>,
}

impl MappedGrid {
    /// Opens and maps an `.sgrid` file, validating the header and the
    /// exact file length before exposing the payload.
    ///
    /// # Errors
    ///
    /// [`GridFormatError`] for I/O failures or any structural defect.
    pub fn open(path: &Path) -> Result<MappedGrid, GridFormatError> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let map = Mmap::map(&file)?;
        let header = GridHeader::decode(&map, Some(len))?;
        Self::from_parts(map, header)
    }

    fn from_parts(map: Mmap, header: GridHeader) -> Result<MappedGrid, GridFormatError> {
        #[cfg(not(target_endian = "big"))]
        {
            // Prove the payload view once so `values()` can be infallible.
            let view = map
                .as_f64s(header.payload_offset())
                .ok_or(GridFormatError::Misaligned)?;
            debug_assert_eq!(view.len() as u64, header.elements());
            Ok(MappedGrid {
                map: Arc::new(map),
                header,
            })
        }
        #[cfg(target_endian = "big")]
        {
            let off = header.payload_offset();
            let decoded: Vec<f64> = map[off..]
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            Ok(MappedGrid {
                map: Arc::new(map),
                header,
                decoded: Arc::new(decoded),
            })
        }
    }

    /// The validated header.
    #[must_use]
    pub fn header(&self) -> &GridHeader {
        &self.header
    }

    /// The full row-major payload. On little-endian targets this is a
    /// direct view of the mapped file pages — zero copies.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        #[cfg(not(target_endian = "big"))]
        {
            self.map
                .as_f64s(self.header.payload_offset())
                .expect("alignment proven at open")
        }
        #[cfg(target_endian = "big")]
        {
            &self.decoded
        }
    }

    /// Bytes of file mapped (header + payload).
    #[must_use]
    pub fn bytes_mapped(&self) -> u64 {
        self.map.len() as u64
    }
}

/// Writes `values` to `path` as an `.sgrid` file with the given extents.
///
/// # Errors
///
/// [`GridFormatError`] when the extents are invalid, `values.len()`
/// disagrees with their product, or the filesystem write fails.
pub fn pack_grid(path: &Path, extents: &[u64], values: &[f64]) -> Result<(), GridFormatError> {
    let header = GridHeader::new(extents)?;
    if values.len() as u64 != header.elements() {
        return Err(GridFormatError::TruncatedPayload {
            expected_bytes: header.payload_bytes(),
            got_bytes: values.len() as u64 * 8,
        });
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&header.encode())?;
    for v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads and validates only the header of an `.sgrid` file — extents
/// and sizes without touching the payload.
///
/// # Errors
///
/// [`GridFormatError`] for I/O failures or a malformed header, including
/// a file length that disagrees with the declared payload.
pub fn inspect_grid(path: &Path) -> Result<GridHeader, GridFormatError> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    let max_dims = usize::try_from(SGRID_MAX_DIMS).expect("8 fits usize");
    let mut head = vec![0u8; FIXED_HEADER + 8 * max_dims];
    let mut got = 0;
    while got < head.len() {
        match file.read(&mut head[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    GridHeader::decode(&head[..got], Some(len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sgrid_{name}_{}.sgrid", std::process::id()))
    }

    #[test]
    fn header_round_trips_through_encode_decode() {
        let h = GridHeader::new(&[3, 5, 7]).unwrap();
        assert_eq!(h.elements(), 105);
        assert_eq!(h.payload_offset(), 48);
        assert_eq!(h.payload_bytes(), 840);
        let bytes = h.encode();
        assert_eq!(bytes.len(), h.payload_offset());
        let back = GridHeader::decode(&bytes, None).unwrap();
        assert_eq!(back, h);
        let back2 = GridHeader::decode(&bytes, Some(48 + 840)).unwrap();
        assert_eq!(back2.extents(), &[3, 5, 7]);
    }

    #[test]
    fn header_rejects_structural_defects() {
        assert_eq!(
            GridHeader::new(&[]),
            Err(GridFormatError::BadDimCount { dims: 0 })
        );
        assert_eq!(
            GridHeader::new(&[1; 9]),
            Err(GridFormatError::BadDimCount { dims: 9 })
        );
        assert_eq!(
            GridHeader::new(&[4, 0]),
            Err(GridFormatError::ZeroExtent { dim: 1 })
        );
        assert_eq!(
            GridHeader::new(&[u64::MAX, 2]),
            Err(GridFormatError::ExtentOverflow)
        );
        // Element count fits u64 but byte count does not.
        assert_eq!(
            GridHeader::new(&[u64::MAX / 4]),
            Err(GridFormatError::ExtentOverflow)
        );

        let h = GridHeader::new(&[2, 2]).unwrap();
        let bytes = h.encode();
        assert!(matches!(
            GridHeader::decode(&bytes[..10], None),
            Err(GridFormatError::TruncatedHeader { .. })
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            GridHeader::decode(&bad, None),
            Err(GridFormatError::BadMagic)
        );
        let mut bad = bytes.clone();
        bad[8] = 9;
        assert_eq!(
            GridHeader::decode(&bad, None),
            Err(GridFormatError::UnsupportedVersion { version: 9 })
        );
        let mut bad = bytes.clone();
        bad[12] = 7;
        assert_eq!(
            GridHeader::decode(&bad, None),
            Err(GridFormatError::UnsupportedDtype { dtype: 7 })
        );
        let expected = h.payload_offset() as u64 + h.payload_bytes();
        assert!(matches!(
            GridHeader::decode(&bytes, Some(expected - 8)),
            Err(GridFormatError::TruncatedPayload { .. })
        ));
        assert_eq!(
            GridHeader::decode(&bytes, Some(expected + 3)),
            Err(GridFormatError::TrailingBytes { extra: 3 })
        );
    }

    #[test]
    fn pack_then_map_hands_back_the_exact_payload() {
        let p = temp("roundtrip");
        let vals: Vec<f64> = (0..24).map(|k| f64::from(k) * 0.5 - 3.0).collect();
        pack_grid(&p, &[4, 6], &vals).unwrap();
        let grid = MappedGrid::open(&p).unwrap();
        assert_eq!(grid.header().extents(), &[4, 6]);
        assert_eq!(grid.values(), &vals[..]);
        assert_eq!(
            grid.bytes_mapped(),
            grid.header().payload_offset() as u64 + grid.header().payload_bytes()
        );
        let h = inspect_grid(&p).unwrap();
        assert_eq!(h.extents(), &[4, 6]);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn pack_rejects_wrong_value_count() {
        let p = temp("badcount");
        assert!(matches!(
            pack_grid(&p, &[4, 6], &[0.0; 23]),
            Err(GridFormatError::TruncatedPayload { .. })
        ));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn open_rejects_truncated_and_padded_files() {
        let p = temp("cut");
        let vals = vec![1.0; 12];
        pack_grid(&p, &[3, 4], &vals).unwrap();
        let full = std::fs::read(&p).unwrap();

        std::fs::write(&p, &full[..full.len() - 5]).unwrap();
        assert!(matches!(
            MappedGrid::open(&p),
            Err(GridFormatError::TruncatedPayload { .. })
        ));

        let mut padded = full.clone();
        padded.push(0);
        std::fs::write(&p, &padded).unwrap();
        assert_eq!(
            MappedGrid::open(&p).unwrap_err(),
            GridFormatError::TrailingBytes { extra: 1 }
        );

        std::fs::write(&p, &full[..20]).unwrap();
        assert!(matches!(
            MappedGrid::open(&p),
            Err(GridFormatError::TruncatedHeader { .. })
        ));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn open_missing_file_is_a_typed_io_error() {
        let p = temp("nosuch_gone");
        let _ = std::fs::remove_file(&p);
        assert!(matches!(
            MappedGrid::open(&p),
            Err(GridFormatError::Io { .. })
        ));
    }
}
