//! The engine's input view: a domain index plus flat values in
//! lexicographic rank order.

use stencil_polyhedral::{DomainIndex, Point};

use crate::error::EngineError;

/// A borrowed input grid: one `f64` per point of a domain, addressed by
/// the domain's lexicographic rank — the same stream order the
/// accelerator's off-chip interface uses.
///
/// `stencil_kernels::GridValues` converts directly:
/// `InputGrid::new(grid.index(), grid.values())`.
#[derive(Debug, Clone, Copy)]
pub struct InputGrid<'a> {
    index: &'a DomainIndex,
    values: &'a [f64],
}

impl<'a> InputGrid<'a> {
    /// Wraps a domain index and its rank-ordered values.
    ///
    /// # Errors
    ///
    /// [`EngineError::InputSizeMismatch`] if `values` does not have one
    /// entry per domain point.
    pub fn new(index: &'a DomainIndex, values: &'a [f64]) -> Result<Self, EngineError> {
        if index.len() != values.len() as u64 {
            return Err(EngineError::InputSizeMismatch {
                expected: index.len(),
                got: values.len() as u64,
            });
        }
        Ok(Self { index, values })
    }

    /// The domain index.
    #[must_use]
    pub fn index(&self) -> &'a DomainIndex {
        self.index
    }

    /// The flat values, rank order.
    #[must_use]
    pub fn values(&self) -> &'a [f64] {
        self.values
    }

    /// The value at point `p`, if inside the domain. `None` also covers
    /// in-domain points whose rank cannot address `values` — a rank past
    /// `usize` (32-bit targets) or past the buffer end (hand-built
    /// indexes with inconsistent bases) — rather than truncating the
    /// rank and silently reading the wrong element.
    #[must_use]
    pub fn value_at(&self, p: &Point) -> Option<f64> {
        if self.index.contains(p) {
            let rank = usize::try_from(self.index.rank_lt(p)).ok()?;
            self.values.get(rank).copied()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_polyhedral::Polyhedron;

    #[test]
    fn size_is_validated() {
        let idx = Polyhedron::grid(&[3, 3]).index().unwrap();
        let short = vec![0.0; 5];
        assert_eq!(
            InputGrid::new(&idx, &short).unwrap_err(),
            EngineError::InputSizeMismatch {
                expected: 9,
                got: 5
            }
        );
        let full = vec![0.0; 9];
        assert!(InputGrid::new(&idx, &full).is_ok());
    }

    #[test]
    fn value_lookup() {
        let idx = Polyhedron::grid(&[2, 3]).index().unwrap();
        let vals: Vec<f64> = (0..6).map(f64::from).collect();
        let g = InputGrid::new(&idx, &vals).unwrap();
        assert_eq!(g.value_at(&Point::new(&[1, 2])), Some(5.0));
        assert_eq!(g.value_at(&Point::new(&[2, 0])), None);
        assert_eq!(g.values().len(), 6);
        assert_eq!(g.index().len(), 6);
    }
}
