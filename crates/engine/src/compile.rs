//! Plan-time kernel compilation: [`stencil_kernels::KernelExpr`] →
//! flat stack bytecode → vectorized row sweeps.
//!
//! The closure datapath costs one indirect `Fn(&[f64]) -> f64` call and
//! one window gather *per output element*. This module removes both:
//!
//! * **compile** — the expression tree is lowered once per run to a
//!   flat postorder bytecode ([`Op`] sequence) with constant folding
//!   (pure-constant subtrees collapse to literals), common-subexpression
//!   elimination (structurally equal non-leaf subtrees evaluate once
//!   into a slot), and mul-add fusion (`x + a*b` dispatches as one
//!   [`Op::MulAdd`] — a *dispatch* fusion that still rounds the product
//!   and the sum separately, so results stay bit-identical);
//! * **validate** — [`CompiledKernel::compile_checked`] replays the
//!   bytecode against the reference closure on a battery of windows at
//!   construction, so a mis-transcribed expression fails loudly before
//!   any output is produced;
//! * **sweep** — [`CompiledKernel::sweep`] evaluates the bytecode over
//!   [`LANES`]-wide chunks of a whole output row, each tap bound to a
//!   column-shifted contiguous slice of the resident input rows. One
//!   opcode dispatch covers [`LANES`] elements and the per-lane loops
//!   run over fixed-width arrays the autovectorizer turns into SIMD.
//!
//! Evaluation order is exactly the expression's association order, which
//! the suite expressions in turn copy from their closures — the chain
//! that keeps `Compiled` and `Closure` backends bit-identical.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use stencil_kernels::{Benchmark, KernelExpr};

use crate::error::EngineError;

/// Selects how the engine evaluates the kernel datapath.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum KernelBackend {
    /// Evaluate compiled bytecode with vectorized row sweeps on interior
    /// rows (the default when a [`CompiledKernel`] is supplied).
    #[default]
    Compiled,
    /// Evaluate one element at a time through the per-window call — the
    /// original path, kept selectable for cross-checks and baselines.
    Closure,
}

impl KernelBackend {
    /// The backend's wire/CLI name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            KernelBackend::Compiled => "compiled",
            KernelBackend::Closure => "closure",
        }
    }
}

impl fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for KernelBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "compiled" => Ok(KernelBackend::Compiled),
            "closure" => Ok(KernelBackend::Closure),
            other => Err(format!(
                "unknown kernel backend '{other}' (expected 'compiled' or 'closure')"
            )),
        }
    }
}

/// Arithmetic precision of the compiled sweep datapath.
///
/// `F64` is the bit-exact reference: every backend (closure, scalar
/// bytecode, vectorized sweep, unrolled sweep) produces identical bits.
/// `F32` narrows constants and taps to single precision at the kernel
/// boundary — grids stay `f64` in memory, values narrow on load and
/// widen on store — trading bit-exactness for double the arithmetic
/// lanes per vector op. `F32` runs verify against `F64` goldens with a
/// per-kernel relative tolerance instead of bit equality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Datapath {
    /// Double-precision arithmetic (bit-exact across backends).
    #[default]
    F64,
    /// Single-precision arithmetic (tolerance-verified against f64).
    F32,
}

impl Datapath {
    /// The datapath's wire/CLI name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Datapath::F64 => "f64",
            Datapath::F32 => "f32",
        }
    }
}

impl fmt::Display for Datapath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Datapath {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "f64" => Ok(Datapath::F64),
            "f32" => Ok(Datapath::F32),
            other => Err(format!(
                "unknown datapath '{other}' (expected 'f64' or 'f32')"
            )),
        }
    }
}

/// Lanes per bytecode dispatch in [`CompiledKernel::sweep`]: the
/// dispatch overhead of one op amortizes over 32 elements (four
/// AVX2 / two AVX-512 vectors per inner loop) while a full-depth lane
/// stack still fits L1. Measured on DENOISE 768×1024, 32 beats 8 by
/// ~40% and 64/128 regress as the lane stack outgrows the cache-hot
/// working set.
pub(crate) const LANES: usize = 32;

/// Maximum operand-stack depth a compiled kernel may need. Postorder
/// evaluation of left-leaning reduction chains needs depth ~2, fully
/// balanced trees depth `log2(taps)`; 32 leaves enormous headroom while
/// keeping the sweep's lane stack a fixed 8 KiB.
const MAX_STACK: usize = 32;

/// Maximum CSE slots (distinct shared subexpressions).
const MAX_SLOTS: usize = 16;

/// One bytecode operation. The machine is a pure postorder stack
/// evaluator: leaves push, operators pop their operands and push the
/// result, `Store`/`Load` spill shared subexpressions to slots.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Push the window value of tap `k`.
    Tap(u16),
    /// Push a literal.
    Const(f64),
    /// Push slot `s`.
    Load(u16),
    /// Copy the stack top into slot `s` (value stays on the stack).
    Store(u16),
    /// Pop `b`, `a`; push `a + b`.
    Add,
    /// Pop `b`, `a`; push `a - b`.
    Sub,
    /// Pop `b`, `a`; push `a * b`.
    Mul,
    /// Pop `b`, `a`; push `a / b`.
    Div,
    /// Replace the top with its square root.
    Sqrt,
    /// Replace the top with its absolute value.
    Abs,
    /// Pop `b`, `a`; replace the new top `acc` with `acc + a * b`,
    /// rounding the product and sum separately (no FMA contraction).
    MulAdd,
}

/// A kernel datapath lowered to stack bytecode, ready for per-window
/// evaluation ([`CompiledKernel::eval`]) or vectorized row sweeps (the
/// engine's `Compiled` backend).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    ops: Vec<Op>,
    taps: usize,
    slots: usize,
    max_stack: usize,
    /// The folded source expression — retained so the unrolled
    /// multi-output compiler ([`crate::unroll`]) can re-lower it across
    /// output positions without decompiling the bytecode.
    expr: KernelExpr,
}

// ---------------------------------------------------------------------
// Compilation: tree -> folded tree -> hash-consed DAG -> bytecode.
// ---------------------------------------------------------------------

/// A hash-consed expression node: children are arena ids, constants are
/// keyed by bit pattern so `-0.0` and `0.0` stay distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Node {
    Tap(usize),
    Const(u64),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Div(usize, usize),
    Sqrt(usize),
    Abs(usize),
    MulAdd(usize, usize, usize),
}

impl Node {
    fn is_leaf(self) -> bool {
        matches!(self, Node::Tap(_) | Node::Const(_))
    }
}

/// Collapses pure-constant subtrees to literals, evaluating them with
/// the same scalar semantics the bytecode uses — a constant subtree's
/// folded value is bit-identical to evaluating it at run time, so
/// folding never changes results. No algebraic identities are applied
/// (`x + 0.0` is *not* rewritten: it can flip `-0.0` to `+0.0`).
fn fold(e: &KernelExpr) -> KernelExpr {
    let folded = match e {
        KernelExpr::Tap(_) | KernelExpr::Const(_) => e.clone(),
        KernelExpr::Add(a, b) => fold(a) + fold(b),
        KernelExpr::Sub(a, b) => fold(a) - fold(b),
        KernelExpr::Mul(a, b) => fold(a) * fold(b),
        KernelExpr::Div(a, b) => fold(a) / fold(b),
        KernelExpr::Sqrt(a) => fold(a).sqrt(),
        KernelExpr::Abs(a) => fold(a).abs(),
        KernelExpr::MulAdd(a, b, c) => fold(a).mul_add(fold(b), fold(c)),
    };
    if matches!(folded, KernelExpr::Const(_) | KernelExpr::Tap(_)) {
        folded
    } else if folded.max_tap().is_none() {
        KernelExpr::Const(folded.eval(&[]))
    } else {
        folded
    }
}

/// The hash-consing arena: structurally equal subtrees intern to the
/// same id, turning the tree into a DAG whose shared nodes CSE finds by
/// in-degree. The unrolled multi-output compiler interns *several*
/// remapped roots into one arena, so subtrees shared across adjacent
/// output positions land on the same id.
#[derive(Default)]
pub(crate) struct Arena {
    pub(crate) nodes: Vec<Node>,
    ids: HashMap<Node, usize>,
}

impl Arena {
    fn intern(&mut self, node: Node) -> usize {
        if let Some(&id) = self.ids.get(&node) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(node);
        self.ids.insert(node, id);
        id
    }

    pub(crate) fn intern_expr(&mut self, e: &KernelExpr) -> usize {
        let node = match e {
            KernelExpr::Tap(k) => Node::Tap(*k),
            KernelExpr::Const(c) => Node::Const(c.to_bits()),
            KernelExpr::Add(a, b) => Node::Add(self.intern_expr(a), self.intern_expr(b)),
            KernelExpr::Sub(a, b) => Node::Sub(self.intern_expr(a), self.intern_expr(b)),
            KernelExpr::Mul(a, b) => Node::Mul(self.intern_expr(a), self.intern_expr(b)),
            KernelExpr::Div(a, b) => Node::Div(self.intern_expr(a), self.intern_expr(b)),
            KernelExpr::Sqrt(a) => Node::Sqrt(self.intern_expr(a)),
            KernelExpr::Abs(a) => Node::Abs(self.intern_expr(a)),
            KernelExpr::MulAdd(a, b, c) => {
                let (a, b, c) = (
                    self.intern_expr(a),
                    self.intern_expr(b),
                    self.intern_expr(c),
                );
                Node::MulAdd(a, b, c)
            }
        };
        self.intern(node)
    }

    /// Structural in-degree of every node (plus one for the root) — the
    /// number of places each value is consumed.
    fn use_counts(&self, root: usize) -> Vec<usize> {
        self.use_counts_multi(&[root])
    }

    /// In-degrees over a DAG with several roots (one per unrolled
    /// output position) — counts accumulate across all of them, so a
    /// subtree shared between outputs registers as multiply used.
    pub(crate) fn use_counts_multi(&self, roots: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for &root in roots {
            counts[root] += 1;
        }
        for node in &self.nodes {
            match *node {
                Node::Tap(_) | Node::Const(_) => {}
                Node::Sqrt(a) | Node::Abs(a) => counts[a] += 1,
                Node::Add(a, b) | Node::Sub(a, b) | Node::Mul(a, b) | Node::Div(a, b) => {
                    counts[a] += 1;
                    counts[b] += 1;
                }
                Node::MulAdd(a, b, c) => {
                    counts[a] += 1;
                    counts[b] += 1;
                    counts[c] += 1;
                }
            }
        }
        counts
    }
}

/// Bytecode emission over the DAG: shared nodes get `Store` on first
/// emission and `Load` afterwards; `x + a*b` with a singly-used product
/// fuses to [`Op::MulAdd`].
struct Emitter<'a> {
    arena: &'a Arena,
    counts: &'a [usize],
    slot_of: Vec<Option<u16>>,
    emitted: Vec<bool>,
    ops: Vec<Op>,
}

impl Emitter<'_> {
    /// True when `id` is a product consumed exactly once — safe to fuse
    /// into its parent addition without bypassing a CSE slot.
    fn fusible_mul(&self, id: usize) -> Option<(usize, usize)> {
        match self.arena.nodes[id] {
            Node::Mul(a, b) if self.counts[id] == 1 => Some((a, b)),
            _ => None,
        }
    }

    fn emit(&mut self, id: usize) {
        if self.emitted[id] {
            if let Some(slot) = self.slot_of[id] {
                self.ops.push(Op::Load(slot));
                return;
            }
        }
        match self.arena.nodes[id] {
            Node::Tap(k) => self
                .ops
                .push(Op::Tap(u16::try_from(k).expect("tap range validated"))),
            Node::Const(bits) => self.ops.push(Op::Const(f64::from_bits(bits))),
            Node::Add(a, b) => {
                // Addition commutes bit-exactly in IEEE-754, so either
                // operand's product may take the fused slot.
                if let Some((x, y)) = self.fusible_mul(b) {
                    self.emit(a);
                    self.emit(x);
                    self.emit(y);
                    self.ops.push(Op::MulAdd);
                } else if let Some((x, y)) = self.fusible_mul(a) {
                    self.emit(b);
                    self.emit(x);
                    self.emit(y);
                    self.ops.push(Op::MulAdd);
                } else {
                    self.emit(a);
                    self.emit(b);
                    self.ops.push(Op::Add);
                }
            }
            Node::Sub(a, b) => {
                self.emit(a);
                self.emit(b);
                self.ops.push(Op::Sub);
            }
            Node::Mul(a, b) => {
                self.emit(a);
                self.emit(b);
                self.ops.push(Op::Mul);
            }
            Node::Div(a, b) => {
                self.emit(a);
                self.emit(b);
                self.ops.push(Op::Div);
            }
            Node::Sqrt(a) => {
                self.emit(a);
                self.ops.push(Op::Sqrt);
            }
            Node::Abs(a) => {
                self.emit(a);
                self.ops.push(Op::Abs);
            }
            Node::MulAdd(a, b, c) => {
                self.emit(c);
                self.emit(a);
                self.emit(b);
                self.ops.push(Op::MulAdd);
            }
        }
        if let Some(slot) = self.slot_of[id] {
            self.ops.push(Op::Store(slot));
        }
        self.emitted[id] = true;
    }
}

impl CompiledKernel {
    /// Lowers `expr` to bytecode for a `taps`-point window, running the
    /// constant-folding, CSE, and mul-add-fusion passes.
    ///
    /// # Errors
    ///
    /// [`EngineError::KernelCompile`] if the expression taps outside the
    /// window or exceeds the evaluator's fixed stack/slot capacity.
    pub fn compile(expr: &KernelExpr, taps: usize) -> Result<Self, EngineError> {
        if let Some(k) = expr.max_tap() {
            if k >= taps {
                return Err(EngineError::KernelCompile {
                    detail: format!("expression taps v[{k}] but the window has {taps} points"),
                });
            }
            if k > usize::from(u16::MAX) {
                return Err(EngineError::KernelCompile {
                    detail: format!("tap position {k} exceeds the bytecode's 16-bit operand"),
                });
            }
        }

        let folded = fold(expr);
        let mut arena = Arena::default();
        let root = arena.intern_expr(&folded);
        let counts = arena.use_counts(root);

        // Shared non-leaf values evaluate once into a slot.
        let mut slots = 0u16;
        let mut slot_of = vec![None; arena.nodes.len()];
        for (id, node) in arena.nodes.iter().enumerate() {
            if counts[id] >= 2 && !node.is_leaf() {
                if usize::from(slots) >= MAX_SLOTS {
                    return Err(EngineError::KernelCompile {
                        detail: format!("expression needs more than {MAX_SLOTS} CSE slots"),
                    });
                }
                slot_of[id] = Some(slots);
                slots += 1;
            }
        }

        let mut emitter = Emitter {
            arena: &arena,
            counts: &counts,
            slot_of,
            emitted: vec![false; arena.nodes.len()],
            ops: Vec::new(),
        };
        emitter.emit(root);
        let ops = emitter.ops;

        // Simulate the stack to size it (and catch emitter bugs).
        let mut sp = 0usize;
        let mut max_stack = 0usize;
        for op in &ops {
            match op {
                Op::Tap(_) | Op::Const(_) | Op::Load(_) => {
                    sp += 1;
                    max_stack = max_stack.max(sp);
                }
                Op::Add | Op::Sub | Op::Mul | Op::Div => sp -= 1,
                Op::MulAdd => sp -= 2,
                Op::Store(_) | Op::Sqrt | Op::Abs => {}
            }
        }
        debug_assert_eq!(sp, 1, "bytecode must leave exactly the result on the stack");
        if max_stack > MAX_STACK {
            return Err(EngineError::KernelCompile {
                detail: format!(
                    "expression needs operand stack depth {max_stack}, more than the \
                     evaluator's {MAX_STACK}"
                ),
            });
        }

        Ok(CompiledKernel {
            ops,
            taps,
            slots: usize::from(slots),
            max_stack,
            expr: folded,
        })
    }

    /// Compiles and validates: the bytecode is replayed against the
    /// reference closure on a battery of deterministic windows (edge
    /// values plus pseudo-random fills) and must agree bit-for-bit.
    ///
    /// # Errors
    ///
    /// As [`CompiledKernel::compile`], plus
    /// [`EngineError::KernelMismatch`] when any window diverges.
    pub fn compile_checked<C>(
        expr: &KernelExpr,
        taps: usize,
        reference: &C,
    ) -> Result<Self, EngineError>
    where
        C: Fn(&[f64]) -> f64 + ?Sized,
    {
        let ck = Self::compile(expr, taps)?;
        let mut window = vec![0.0f64; taps];
        let check = |window: &[f64]| -> Result<(), EngineError> {
            let got = ck.eval(window);
            let want = reference(window);
            if got == want || (got.is_nan() && want.is_nan()) {
                Ok(())
            } else {
                Err(EngineError::KernelMismatch {
                    detail: format!("window {window:?}: bytecode {got:?} vs closure {want:?}"),
                })
            }
        };
        for fill in [0.0, 1.0, -1.0, 0.5] {
            window.iter_mut().for_each(|w| *w = fill);
            check(&window)?;
        }
        let mut state = 0x0BAD_C0DE_CAFE_u64;
        for _ in 0..60 {
            for w in &mut window {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *w = ((state >> 33) as f64) / 1e8 - 42.0;
            }
            check(&window)?;
        }
        Ok(ck)
    }

    /// Compiles a [`Benchmark`]'s expression, validated against its own
    /// closure — `Ok(None)` when the benchmark carries no expression.
    ///
    /// # Errors
    ///
    /// As [`CompiledKernel::compile_checked`].
    pub fn for_benchmark(bench: &Benchmark) -> Result<Option<Self>, EngineError> {
        match bench.expr() {
            None => Ok(None),
            Some(expr) => {
                let reference = bench.compute_fn();
                Self::compile_checked(expr, bench.window().len(), &reference).map(Some)
            }
        }
    }

    /// The window size the bytecode was compiled for.
    #[must_use]
    pub fn taps(&self) -> usize {
        self.taps
    }

    /// Number of bytecode operations (after folding, CSE, and fusion).
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of CSE slots the bytecode uses.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots
    }

    /// The constant-folded source expression this bytecode was lowered
    /// from — the unrolled compiler's input.
    pub(crate) fn folded_expr(&self) -> &KernelExpr {
        &self.expr
    }

    /// Evaluates the bytecode on one window in declared offset order —
    /// bit-identical to the source expression's
    /// [`KernelExpr::eval`].
    ///
    /// # Panics
    ///
    /// Panics if `window` is shorter than [`CompiledKernel::taps`].
    #[must_use]
    pub fn eval(&self, window: &[f64]) -> f64 {
        self.eval_with(|k| window[k])
    }

    /// Scalar evaluation with an arbitrary tap binding — shared by the
    /// per-window path and the sweep's row remainder.
    fn eval_with(&self, tap: impl Fn(usize) -> f64) -> f64 {
        let mut stack = [0.0f64; MAX_STACK];
        let mut slots = [0.0f64; MAX_SLOTS];
        let mut sp = 0usize;
        for op in &self.ops {
            match *op {
                Op::Tap(k) => {
                    stack[sp] = tap(usize::from(k));
                    sp += 1;
                }
                Op::Const(c) => {
                    stack[sp] = c;
                    sp += 1;
                }
                Op::Load(s) => {
                    stack[sp] = slots[usize::from(s)];
                    sp += 1;
                }
                Op::Store(s) => slots[usize::from(s)] = stack[sp - 1],
                Op::Add => {
                    sp -= 1;
                    stack[sp - 1] += stack[sp];
                }
                Op::Sub => {
                    sp -= 1;
                    stack[sp - 1] -= stack[sp];
                }
                Op::Mul => {
                    sp -= 1;
                    stack[sp - 1] *= stack[sp];
                }
                Op::Div => {
                    sp -= 1;
                    stack[sp - 1] /= stack[sp];
                }
                Op::Sqrt => stack[sp - 1] = stack[sp - 1].sqrt(),
                Op::Abs => stack[sp - 1] = stack[sp - 1].abs(),
                Op::MulAdd => {
                    sp -= 2;
                    stack[sp - 1] += stack[sp] * stack[sp + 1];
                }
            }
        }
        stack[0]
    }

    /// Evaluates the bytecode on one window in single precision: taps
    /// and constants narrow to `f32` on entry, every operation rounds in
    /// `f32`, and the result widens back to `f64` (exact). This is the
    /// scalar reference for the [`Datapath::F32`] sweep — gather rows
    /// and construction-time replay both use it, so every f32 path
    /// computes identical bits.
    #[must_use]
    pub fn eval32(&self, window: &[f64]) -> f64 {
        self.eval32_with(|k| window[k])
    }

    /// Single-precision evaluation with an arbitrary tap binding (see
    /// [`CompiledKernel::eval32`]).
    // The narrowing casts are the entire point of this datapath.
    #[allow(clippy::cast_possible_truncation)]
    pub(crate) fn eval32_with(&self, tap: impl Fn(usize) -> f64) -> f64 {
        let mut stack = [0.0f32; MAX_STACK];
        let mut slots = [0.0f32; MAX_SLOTS];
        let mut sp = 0usize;
        for op in &self.ops {
            match *op {
                Op::Tap(k) => {
                    stack[sp] = tap(usize::from(k)) as f32;
                    sp += 1;
                }
                Op::Const(c) => {
                    stack[sp] = c as f32;
                    sp += 1;
                }
                Op::Load(s) => {
                    stack[sp] = slots[usize::from(s)];
                    sp += 1;
                }
                Op::Store(s) => slots[usize::from(s)] = stack[sp - 1],
                Op::Add => {
                    sp -= 1;
                    stack[sp - 1] += stack[sp];
                }
                Op::Sub => {
                    sp -= 1;
                    stack[sp - 1] -= stack[sp];
                }
                Op::Mul => {
                    sp -= 1;
                    stack[sp - 1] *= stack[sp];
                }
                Op::Div => {
                    sp -= 1;
                    stack[sp - 1] /= stack[sp];
                }
                Op::Sqrt => stack[sp - 1] = stack[sp - 1].sqrt(),
                Op::Abs => stack[sp - 1] = stack[sp - 1].abs(),
                Op::MulAdd => {
                    sp -= 2;
                    stack[sp - 1] += stack[sp] * stack[sp + 1];
                }
            }
        }
        f64::from(stack[0])
    }

    /// The scalar row remainder: evaluates columns `from..out.len()`
    /// one window at a time. [`CompiledKernel::sweep`] delegates its
    /// tail here, keeping the remainder semantics in one place for the
    /// sweep and its callers.
    pub(crate) fn sweep_tail(&self, bases: &[usize], vals: &[f64], out: &mut [f64], from: usize) {
        for tt in from..out.len() {
            out[tt] = self.eval_with(|k| vals[bases[k] + tt]);
        }
    }

    /// The vectorized row sweep: writes `out[t] = kernel(window at t)`
    /// for a whole output row, with tap `k` reading the contiguous input
    /// run starting at `vals[bases[k]]`. The bytecode runs over
    /// [`LANES`]-wide chunks (fixed-size lane arrays, one dispatch per
    /// op per chunk); the row remainder evaluates scalar.
    ///
    /// Callers guarantee `vals[bases[k] .. bases[k] + out.len()]` is in
    /// range for every tap — the fast-row predicate of the row executor.
    pub(crate) fn sweep(&self, bases: &[usize], vals: &[f64], out: &mut [f64]) {
        debug_assert_eq!(bases.len(), self.taps);
        let len = out.len();
        let mut stack = [[0.0f64; LANES]; MAX_STACK];
        let mut slots = [[0.0f64; LANES]; MAX_SLOTS];
        let mut t = 0usize;
        while t + LANES <= len {
            let mut sp = 0usize;
            for op in &self.ops {
                match *op {
                    Op::Tap(k) => {
                        let b = bases[usize::from(k)] + t;
                        stack[sp].copy_from_slice(&vals[b..b + LANES]);
                        sp += 1;
                    }
                    Op::Const(c) => {
                        stack[sp] = [c; LANES];
                        sp += 1;
                    }
                    Op::Load(s) => {
                        stack[sp] = slots[usize::from(s)];
                        sp += 1;
                    }
                    Op::Store(s) => slots[usize::from(s)] = stack[sp - 1],
                    Op::Add => {
                        sp -= 1;
                        let (lo, hi) = stack.split_at_mut(sp);
                        let (a, b) = (&mut lo[sp - 1], &hi[0]);
                        for i in 0..LANES {
                            a[i] += b[i];
                        }
                    }
                    Op::Sub => {
                        sp -= 1;
                        let (lo, hi) = stack.split_at_mut(sp);
                        let (a, b) = (&mut lo[sp - 1], &hi[0]);
                        for i in 0..LANES {
                            a[i] -= b[i];
                        }
                    }
                    Op::Mul => {
                        sp -= 1;
                        let (lo, hi) = stack.split_at_mut(sp);
                        let (a, b) = (&mut lo[sp - 1], &hi[0]);
                        for i in 0..LANES {
                            a[i] *= b[i];
                        }
                    }
                    Op::Div => {
                        sp -= 1;
                        let (lo, hi) = stack.split_at_mut(sp);
                        let (a, b) = (&mut lo[sp - 1], &hi[0]);
                        for i in 0..LANES {
                            a[i] /= b[i];
                        }
                    }
                    Op::Sqrt => {
                        for v in &mut stack[sp - 1] {
                            *v = v.sqrt();
                        }
                    }
                    Op::Abs => {
                        for v in &mut stack[sp - 1] {
                            *v = v.abs();
                        }
                    }
                    Op::MulAdd => {
                        sp -= 2;
                        let (lo, hi) = stack.split_at_mut(sp);
                        let acc = &mut lo[sp - 1];
                        let (a, b) = (&hi[0], &hi[1]);
                        for i in 0..LANES {
                            acc[i] += a[i] * b[i];
                        }
                    }
                }
            }
            out[t..t + LANES].copy_from_slice(&stack[0]);
            t += LANES;
        }
        self.sweep_tail(bases, vals, out, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_kernels::{extra_suite, paper_suite};

    fn tap(k: usize) -> KernelExpr {
        KernelExpr::tap(k)
    }

    #[test]
    fn backend_parse_and_display() {
        assert_eq!(
            "compiled".parse::<KernelBackend>(),
            Ok(KernelBackend::Compiled)
        );
        assert_eq!(
            "CLOSURE".parse::<KernelBackend>(),
            Ok(KernelBackend::Closure)
        );
        assert!("simd".parse::<KernelBackend>().is_err());
        assert_eq!(KernelBackend::Compiled.to_string(), "compiled");
        assert_eq!(KernelBackend::default(), KernelBackend::Compiled);
    }

    #[test]
    fn datapath_parse_and_display() {
        assert_eq!("f64".parse::<Datapath>(), Ok(Datapath::F64));
        assert_eq!("F32".parse::<Datapath>(), Ok(Datapath::F32));
        assert!("f16".parse::<Datapath>().is_err());
        assert_eq!(Datapath::F32.to_string(), "f32");
        assert_eq!(Datapath::default(), Datapath::F64);
    }

    #[test]
    fn eval32_narrows_taps_and_constants() {
        // 0.1 rounds differently in f32 and f64, so the narrowed
        // datapath must produce the widened f32 sum, not the f64 one.
        let e = tap(0) + KernelExpr::constant(0.1);
        let ck = CompiledKernel::compile(&e, 1).unwrap();
        let got = ck.eval32(&[1.0]);
        assert_eq!(got, f64::from(1.0f32 + 0.1f32));
        assert_ne!(got, 1.0f64 + 0.1f64);
        assert_eq!(ck.eval(&[1.0]), 1.0f64 + 0.1f64);
    }

    #[test]
    fn sweep_tail_matches_eval() {
        let e = tap(0) * tap(1) + 3.0;
        let ck = CompiledKernel::compile(&e, 2).unwrap();
        let vals: Vec<f64> = (0..12).map(f64::from).collect();
        let bases = [0usize, 1];
        let mut out = vec![0.0f64; 8];
        ck.sweep_tail(&bases, &vals, &mut out, 3);
        assert_eq!(out[..3], [0.0; 3]); // untouched below `from`
        for t in 3..8 {
            assert_eq!(out[t], ck.eval(&[vals[t], vals[t + 1]]));
        }
    }

    #[test]
    fn constant_subtrees_fold_to_literals() {
        // (2 + 3) * t0: the constant sum folds, leaving Const(5), Tap, Mul.
        let e = (KernelExpr::constant(2.0) + KernelExpr::constant(3.0)) * tap(0);
        let ck = CompiledKernel::compile(&e, 1).unwrap();
        assert_eq!(ck.op_count(), 3);
        assert_eq!(ck.eval(&[7.0]), 35.0);
    }

    #[test]
    fn cse_shares_repeated_subexpressions() {
        // (t0 + t1) appears three times; with CSE it evaluates once.
        let s = tap(0) + tap(1);
        let e = s.clone() / s.clone() + s.sqrt();
        let ck = CompiledKernel::compile(&e, 2).unwrap();
        assert_eq!(ck.slot_count(), 1);
        // Tap Tap Add Store Load Div Load Sqrt Add -> 9 ops (vs 11 unshared).
        assert_eq!(ck.op_count(), 9);
        let w = [2.0, 7.0];
        assert_eq!(ck.eval(&w), 9.0f64 / 9.0 + 9.0f64.sqrt());
    }

    #[test]
    fn mul_add_fuses_without_changing_rounding() {
        // t0*t1 + t2: fusible product; result must keep two roundings.
        let e = tap(0) * tap(1) + tap(2);
        let ck = CompiledKernel::compile(&e, 3).unwrap();
        // Tap2 Tap0 Tap1 MulAdd — 4 ops instead of 5.
        assert_eq!(ck.op_count(), 4);
        // 0.1 * 10.0 rounds to exactly 1.0 in binary64, so two-rounding
        // evaluation cancels to 0.0; a *contracted* FMA keeps the exact
        // product's residue and does not. The fused opcode must cancel.
        let w = [0.1, 10.0, -1.0];
        assert_eq!(ck.eval(&w), 0.0);
        assert_ne!(ck.eval(&w), 0.1f64.mul_add(10.0, -1.0));
    }

    #[test]
    fn shared_products_are_not_fused() {
        // p = t0 * t1 is shared: fusing p into one of its uses would
        // bypass the slot. Both uses must see the same stored value.
        let p = tap(0) * tap(1);
        let e = (p.clone() + tap(2)) + (p + tap(3));
        let ck = CompiledKernel::compile(&e, 4).unwrap();
        assert_eq!(ck.slot_count(), 1);
        let w = [3.0, 5.0, 1.0, 2.0];
        assert_eq!(ck.eval(&w), (15.0 + 1.0) + (15.0 + 2.0));
    }

    #[test]
    fn explicit_mul_add_form_compiles() {
        let e = tap(0).mul_add(tap(1), tap(2));
        let ck = CompiledKernel::compile(&e, 3).unwrap();
        let w = [0.1, 10.0, -1.0];
        assert_eq!(ck.eval(&w), 0.1f64 * 10.0 + -1.0);
    }

    #[test]
    fn out_of_window_tap_is_a_compile_error() {
        let e = tap(5);
        let err = CompiledKernel::compile(&e, 3).unwrap_err();
        assert!(matches!(err, EngineError::KernelCompile { .. }), "{err}");
    }

    #[test]
    fn overdeep_expression_is_a_compile_error() {
        // A fully right-nested chain needs stack depth = chain length.
        let mut e = tap(0);
        for _ in 0..MAX_STACK {
            e = tap(0) * e; // right operand nests, depth grows per level
        }
        let err = CompiledKernel::compile(&e, 1).unwrap_err();
        assert!(matches!(err, EngineError::KernelCompile { .. }), "{err}");
    }

    #[test]
    fn compile_checked_accepts_faithful_and_rejects_wrong() {
        let e = tap(0) + 2.0 * tap(1);
        let faithful = |v: &[f64]| v[0] + 2.0 * v[1];
        assert!(CompiledKernel::compile_checked(&e, 2, &faithful).is_ok());
        let wrong = |v: &[f64]| v[0] + 2.5 * v[1];
        let err = CompiledKernel::compile_checked(&e, 2, &wrong).unwrap_err();
        assert!(matches!(err, EngineError::KernelMismatch { .. }), "{err}");
    }

    #[test]
    fn every_suite_benchmark_compiles_checked() -> Result<(), EngineError> {
        // Typed propagation, not panics: a failing benchmark surfaces
        // as the same `EngineError::KernelCompile` a serving worker
        // would report instead of dying.
        for b in paper_suite().into_iter().chain(extra_suite()) {
            let ck =
                CompiledKernel::for_benchmark(&b)?.ok_or_else(|| EngineError::KernelCompile {
                    detail: format!("{} has no expression", b.name()),
                })?;
            assert_eq!(ck.taps(), b.window().len());
            assert!(ck.max_stack <= MAX_STACK);
        }
        Ok(())
    }

    #[test]
    fn rician_cse_finds_the_shared_average() {
        let b = stencil_kernels::rician();
        let ck = CompiledKernel::for_benchmark(&b).unwrap().unwrap();
        // avg is used three times; exactly one slot expected.
        assert_eq!(ck.slot_count(), 1);
    }

    #[test]
    fn sweep_matches_per_window_eval() {
        // A synthetic 3-tap row: taps read at column shifts 0, 1, 2 of a
        // flat buffer; row lengths exercise chunks plus remainders.
        let e = tap(0) + 2.0 * tap(1) - tap(2).abs().sqrt();
        let ck = CompiledKernel::compile(&e, 3).unwrap();
        let vals: Vec<f64> = (0..64).map(|i| f64::from(i) * 0.75 - 11.0).collect();
        for len in [1usize, 7, 8, 9, 16, 30] {
            let bases = [0usize, 1, 2];
            let mut out = vec![0.0f64; len];
            ck.sweep(&bases, &vals, &mut out);
            for (t, &got) in out.iter().enumerate() {
                let window = [vals[t], vals[1 + t], vals[2 + t]];
                assert_eq!(got, ck.eval(&window), "len={len} t={t}");
            }
        }
    }
}
