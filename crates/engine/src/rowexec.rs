//! The shared per-row executor behind every engine path.
//!
//! Both the in-core tiled runner ([`crate::run_plan`]) and the
//! bounded-memory streaming runner ([`crate::run_streaming`]) reduce to
//! the same inner problem: given a contiguous run of iteration rows and
//! a resident window of the input stream, produce one output per
//! iteration. This module is that single integration point — the
//! rank-window view, the batched-tap predicate, and the row loop with
//! its three row classes:
//!
//! * **sweep rows** — every tap is one contiguous resident run *and*
//!   the kernel is compiled: the row evaluates through the vectorized
//!   [`CompiledKernel::sweep`] bytecode sweep;
//! * **fast rows** — taps are contiguous and resident but the kernel is
//!   a closure (or the `Closure` backend is forced): a batched
//!   per-element loop gathers each window from tap bases;
//! * **gather rows** — some tap is non-contiguous or non-resident: the
//!   defensive per-point fallback with exact error reporting.

use stencil_polyhedral::{DomainIndex, Point, Row};

use crate::compile::CompiledKernel;
use crate::error::EngineError;

/// How the row executor evaluates the kernel datapath — implemented by
/// closure adapters and by compiled bytecode, so one generic executor
/// serves both backends.
pub(crate) trait RowKernel: Sync {
    /// Evaluates one window in declared offset order.
    fn eval_window(&self, window: &[f64]) -> f64;

    /// The compiled form to row-sweep with, when this kernel has one
    /// and the backend allows it. `None` keeps the per-element path.
    fn sweeper(&self) -> Option<&CompiledKernel> {
        None
    }
}

/// A closure datapath: always per-element.
pub(crate) struct ClosureKernel<'a, C>(pub &'a C);

impl<C: Fn(&[f64]) -> f64 + Sync> RowKernel for ClosureKernel<'_, C> {
    fn eval_window(&self, window: &[f64]) -> f64 {
        (self.0)(window)
    }
}

/// Compiled bytecode with row sweeps enabled (the `Compiled` backend).
pub(crate) struct SweepKernel<'a>(pub &'a CompiledKernel);

impl RowKernel for SweepKernel<'_> {
    fn eval_window(&self, window: &[f64]) -> f64 {
        self.0.eval(window)
    }

    fn sweeper(&self) -> Option<&CompiledKernel> {
        Some(self.0)
    }
}

/// Compiled bytecode forced onto the per-element path (the `Closure`
/// backend selected with a compiled kernel) — used by cross-checks to
/// isolate the sweep from the bytecode semantics.
pub(crate) struct ScalarKernel<'a>(pub &'a CompiledKernel);

impl RowKernel for ScalarKernel<'_> {
    fn eval_window(&self, window: &[f64]) -> f64 {
        self.0.eval(window)
    }
}

/// A rank-windowed view of the input stream: `vals` holds the values of
/// lexicographic ranks `[base, base + vals.len())` of the full input
/// domain indexed by `idx`. The in-core paths use a full window
/// (`base == 0`, every rank resident); the streaming path keeps only
/// the current band's halo rows resident.
pub(crate) struct RankWindow<'a> {
    /// Index of the *full* input domain (rank queries stay global).
    pub idx: &'a DomainIndex,
    /// Values of the resident rank range, in rank order.
    pub vals: &'a [f64],
    /// Global rank of `vals[0]`.
    pub base: u64,
}

impl RankWindow<'_> {
    /// Window offset of global rank `b`, if `b..b + len` is resident.
    fn resident_run(&self, b: u64, len: usize) -> Option<usize> {
        let off = usize::try_from(b.checked_sub(self.base)?).ok()?;
        let end = off.checked_add(len)?;
        (end <= self.vals.len()).then_some(off)
    }

    /// The resident value at point `p`: `Err(false)` if `p` is outside
    /// the input domain, `Err(true)` if in-domain but not resident.
    fn value_at(&self, p: &Point) -> Result<f64, bool> {
        if !self.idx.contains(p) {
            return Err(false);
        }
        self.resident_run(self.idx.rank_lt(p), 1)
            .map(|off| self.vals[off])
            .ok_or(true)
    }
}

/// Row tallies of [`execute_rows`], by row class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct RowStats {
    /// Rows evaluated by the vectorized bytecode sweep.
    pub sweep: u64,
    /// Rows on the batched per-element fast path.
    pub fast: u64,
    /// Rows that fell back to per-point gathers.
    pub gather: u64,
}

impl RowStats {
    /// Accumulates another tally (e.g. across parallel row chunks).
    pub fn merge(&mut self, other: RowStats) {
        self.sweep += other.sweep;
        self.fast += other.fast;
        self.gather += other.gather;
    }
}

/// Runs the iteration rows `rows` (a contiguous slice of one band's
/// index, whose `base` ranks start at `out_base`) against the resident
/// input window, writing `out` (one slot per iteration).
///
/// Per output row, every window tap becomes a base rank into the flat
/// input stream; resident contiguous rows then either sweep compiled
/// bytecode over the whole row or run the batched per-element loop,
/// while rows whose taps are not contiguous (or not fully resident)
/// fall back to per-point gathers.
pub(crate) fn execute_rows<K: RowKernel>(
    rows: &[Row],
    out_base: u64,
    offsets: &[Point],
    win: &RankWindow<'_>,
    kernel: &K,
    out: &mut [f64],
) -> Result<RowStats, EngineError> {
    let n = offsets.len();
    let mut window = vec![0.0f64; n];
    let mut bases = vec![0usize; n];
    let mut stats = RowStats::default();

    for row in rows {
        let len = usize::try_from(row.len())
            .map_err(|_| EngineError::DomainTooLarge { points: row.len() })?;
        let start = row
            .base
            .checked_sub(out_base)
            .and_then(|s| usize::try_from(s).ok())
            .ok_or_else(|| inconsistent_row(row, out_base))?;
        let out_row = out
            .get_mut(start..)
            .and_then(|o| o.get_mut(..len))
            .ok_or_else(|| inconsistent_row(row, out_base))?;

        let mut all_fast = true;
        for (k, f) in offsets.iter().enumerate() {
            let start = tap_point(&row.prefix, row.lo, f);
            let end = tap_point(&row.prefix, row.hi, f);
            match contiguous_base(win.idx, &start, &end, len).and_then(|b| win.resident_run(b, len))
            {
                Some(off) => bases[k] = off,
                None => {
                    all_fast = false;
                    break;
                }
            }
        }

        if all_fast {
            if let Some(ck) = kernel.sweeper() {
                // Vectorized row sweep: each tap is a column-shifted
                // contiguous slice; the bytecode runs over lane chunks.
                stats.sweep += 1;
                ck.sweep(&bases, win.vals, out_row);
            } else {
                stats.fast += 1;
                for (t, slot) in out_row.iter_mut().enumerate() {
                    for (w, &b) in window.iter_mut().zip(&bases) {
                        *w = win.vals[b + t];
                    }
                    *slot = kernel.eval_window(&window);
                }
            }
        } else {
            // Defensive fallback: gather taps point by point. A convex
            // input domain keeps every shifted row contiguous, so
            // plan-derived inputs never land here; custom input indexes
            // that break contiguity still execute correctly (or report
            // the exact missing point).
            stats.gather += 1;
            for (t, slot) in out_row.iter_mut().enumerate() {
                let t_inner = i64::try_from(t)
                    .map_err(|_| EngineError::DomainTooLarge { points: row.len() })?;
                let i = row.prefix.pushed(row.lo + t_inner);
                for (w, f) in window.iter_mut().zip(offsets) {
                    let h = i + *f;
                    *w = match win.value_at(&h) {
                        Ok(v) => v,
                        Err(false) => {
                            return Err(EngineError::MissingInput {
                                point: h.to_string(),
                            })
                        }
                        Err(true) => {
                            return Err(EngineError::InconsistentIndex {
                                detail: format!(
                                    "tap {h} is in the input domain but outside the \
                                     resident window [{}, {})",
                                    win.base,
                                    win.base + win.vals.len() as u64
                                ),
                            })
                        }
                    };
                }
                *slot = kernel.eval_window(&window);
            }
        }
    }

    Ok(stats)
}

fn inconsistent_row(row: &Row, out_base: u64) -> EngineError {
    EngineError::InconsistentIndex {
        detail: format!(
            "iteration row at {} (base {}) does not fit its band's output \
             slice starting at rank {out_base}",
            row.prefix, row.base
        ),
    }
}

/// The input point read by tap `f` at iteration `(prefix, inner)`.
fn tap_point(prefix: &Point, inner: i64, f: &Point) -> Point {
    prefix.pushed(inner) + *f
}

/// The batched-tap predicate: `Some(start rank)` iff the shifted row
/// `start..=end` is one contiguous run of the input stream — both ends
/// in-domain and exactly `len - 1` ranks apart.
///
/// The rank difference is taken with `checked_sub`: an index produced
/// by [`DomainIndex::build`] ranks monotonically, but the engine also
/// accepts hand-built indexes ([`DomainIndex::from_rows`]) whose base
/// values may invert rank order, and the fast path must degrade to the
/// gather fallback there instead of panicking on underflow.
fn contiguous_base(in_idx: &DomainIndex, start: &Point, end: &Point, len: usize) -> Option<u64> {
    if !in_idx.contains(start) || !in_idx.contains(end) {
        return None;
    }
    let base = in_idx.rank_lt(start);
    match in_idx.rank_lt(end).checked_sub(base) {
        Some(span) if span == (len - 1) as u64 => Some(base),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrambled_rank_order_degrades_to_gather_not_panic() {
        // Hand-built index with inverted bases: the prefix-[1] row
        // ranks *before* the prefix-[0] row, so rank_lt(end) <
        // rank_lt(start) for a span crossing the two. The old unchecked
        // subtraction panicked with overflow here; the predicate must
        // report "not contiguous" instead.
        let idx = DomainIndex::from_rows(
            2,
            vec![
                Row {
                    prefix: Point::new(&[0]),
                    lo: 0,
                    hi: 4,
                    base: 5,
                },
                Row {
                    prefix: Point::new(&[1]),
                    lo: 0,
                    hi: 4,
                    base: 0,
                },
            ],
        );
        let start = Point::new(&[0, 0]); // rank 5
        let end = Point::new(&[1, 4]); // rank 4 — inverted
        assert!(idx.rank_lt(&end) < idx.rank_lt(&start));
        assert_eq!(contiguous_base(&idx, &start, &end, 10), None);
        // Sanity: a consistent span on the same index still batches.
        let lo = Point::new(&[1, 0]);
        let hi = Point::new(&[1, 4]);
        assert_eq!(contiguous_base(&idx, &lo, &hi, 5), Some(0));
    }

    #[test]
    fn row_stats_merge_accumulates() {
        let mut a = RowStats {
            sweep: 1,
            fast: 2,
            gather: 3,
        };
        a.merge(RowStats {
            sweep: 10,
            fast: 20,
            gather: 30,
        });
        assert_eq!(
            a,
            RowStats {
                sweep: 11,
                fast: 22,
                gather: 33,
            }
        );
    }
}
