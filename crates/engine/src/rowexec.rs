//! The shared per-row executor behind every engine path.
//!
//! The session's in-core tiled modes and its bounded-memory streaming
//! mode ([`crate::ExecMode`]) reduce to
//! the same inner problem: given a contiguous run of iteration rows and
//! a resident window of the input stream, produce one output per
//! iteration. This module is that single integration point — the
//! rank-window view, the batched-tap predicate, and the row loop with
//! its three row classes:
//!
//! * **sweep rows** — every tap is one contiguous resident run *and*
//!   the kernel is compiled: the row evaluates through the vectorized
//!   [`CompiledKernel::sweep`] bytecode sweep;
//! * **fast rows** — taps are contiguous and resident but the kernel is
//!   a closure (or the `Closure` backend is forced): a batched
//!   per-element loop gathers each window from tap bases;
//! * **gather rows** — some tap is non-contiguous or non-resident: the
//!   defensive per-point fallback with exact error reporting.

use std::sync::Mutex;
use std::time::Instant;

use stencil_core::{MemorySystemPlan, Tile, TilePlan};
use stencil_polyhedral::{DomainIndex, Point, Row};

use crate::compile::{CompiledKernel, Datapath};
use crate::error::EngineError;
use crate::input::InputGrid;
use crate::report::{RunReport, TileReport};
use crate::unroll::UnrolledProgram;

/// Locks `m`, recovering from poisoning: a panicked worker already
/// surfaces as [`EngineError::WorkerPanic`] through the scope join, and
/// the guarded collections stay consistent (push/pop only), so a
/// poisoned lock must not turn into a second panic on the submit path.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Consumes `m`, recovering its value even when poisoned (see
/// [`lock_recover`]).
fn into_inner_recover<T>(m: Mutex<T>) -> T {
    m.into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How the row executor evaluates the kernel datapath — implemented by
/// closure adapters and by compiled bytecode, so one generic executor
/// serves both backends.
pub(crate) trait RowKernel: Sync {
    /// Evaluates one window in declared offset order.
    fn eval_window(&self, window: &[f64]) -> f64;

    /// The compiled form to row-sweep with, when this kernel has one
    /// and the backend allows it. `None` keeps the per-element path.
    fn sweeper(&self) -> Option<&CompiledKernel> {
        None
    }

    /// The unrolled multi-output register program, when this kernel
    /// executes through the unrolled sweep (`Session::unroll` above 1
    /// or a non-default datapath). `None` keeps the stack-bytecode
    /// sweep.
    fn unrolled(&self) -> Option<&UnrolledProgram> {
        None
    }

    /// The arithmetic precision this kernel evaluates in — reports
    /// derive their `datapath` field from here.
    fn datapath(&self) -> Datapath {
        Datapath::F64
    }
}

/// A closure datapath: always per-element. `C` may be unsized (a
/// `dyn Fn` behind the reference), so heterogeneous session stages can
/// hold their kernels as trait objects.
pub(crate) struct ClosureKernel<'a, C: ?Sized>(pub &'a C);

impl<C: Fn(&[f64]) -> f64 + Sync + ?Sized> RowKernel for ClosureKernel<'_, C> {
    fn eval_window(&self, window: &[f64]) -> f64 {
        (self.0)(window)
    }
}

/// Compiled bytecode with row sweeps enabled (the `Compiled` backend).
pub(crate) struct SweepKernel<'a>(pub &'a CompiledKernel);

impl RowKernel for SweepKernel<'_> {
    fn eval_window(&self, window: &[f64]) -> f64 {
        self.0.eval(window)
    }

    fn sweeper(&self) -> Option<&CompiledKernel> {
        Some(self.0)
    }
}

/// Compiled bytecode forced onto the per-element path (the `Closure`
/// backend selected with a compiled kernel) — used by cross-checks to
/// isolate the sweep from the bytecode semantics.
pub(crate) struct ScalarKernel<'a>(pub &'a CompiledKernel);

impl RowKernel for ScalarKernel<'_> {
    fn eval_window(&self, window: &[f64]) -> f64 {
        self.0.eval(window)
    }
}

/// Compiled bytecode executing through the unrolled register sweep:
/// grouped runs of adjacent aligned rows evaluate the multi-output
/// `group` program (one dispatch per U rows), leftover sweep rows run
/// the single-output sibling, and gather rows evaluate the scalar
/// bytecode in the program's datapath.
pub(crate) struct UnrolledKernel<'a> {
    pub ck: &'a CompiledKernel,
    pub prog: UnrolledProgram,
}

impl RowKernel for UnrolledKernel<'_> {
    fn eval_window(&self, window: &[f64]) -> f64 {
        match self.prog.datapath() {
            Datapath::F64 => self.ck.eval(window),
            Datapath::F32 => self.ck.eval32(window),
        }
    }

    fn unrolled(&self) -> Option<&UnrolledProgram> {
        Some(&self.prog)
    }

    fn datapath(&self) -> Datapath {
        self.prog.datapath()
    }
}

/// Compiled bytecode forced onto the per-element path in single
/// precision — the `Closure` backend under [`Datapath::F32`], used by
/// cross-checks to isolate the unrolled f32 sweep from the scalar f32
/// bytecode semantics.
pub(crate) struct Scalar32Kernel<'a>(pub &'a CompiledKernel);

impl RowKernel for Scalar32Kernel<'_> {
    fn eval_window(&self, window: &[f64]) -> f64 {
        self.0.eval32(window)
    }

    fn datapath(&self) -> Datapath {
        Datapath::F32
    }
}

/// A rank-windowed view of the input stream: `vals` holds the values of
/// lexicographic ranks `[base, base + vals.len())` of the full input
/// domain indexed by `idx`. The in-core paths use a full window
/// (`base == 0`, every rank resident); the streaming path keeps only
/// the current band's halo rows resident.
pub(crate) struct RankWindow<'a> {
    /// Index of the *full* input domain (rank queries stay global).
    pub idx: &'a DomainIndex,
    /// Values of the resident rank range, in rank order.
    pub vals: &'a [f64],
    /// Global rank of `vals[0]`.
    pub base: u64,
}

impl RankWindow<'_> {
    /// Window offset of global rank `b`, if `b..b + len` is resident.
    fn resident_run(&self, b: u64, len: usize) -> Option<usize> {
        let off = usize::try_from(b.checked_sub(self.base)?).ok()?;
        let end = off.checked_add(len)?;
        (end <= self.vals.len()).then_some(off)
    }

    /// The resident value at point `p`: `Err(false)` if `p` is outside
    /// the input domain, `Err(true)` if in-domain but not resident.
    fn value_at(&self, p: &Point) -> Result<f64, bool> {
        if !self.idx.contains(p) {
            return Err(false);
        }
        self.resident_run(self.idx.rank_lt(p), 1)
            .map(|off| self.vals[off])
            .ok_or(true)
    }
}

/// Row tallies of [`execute_rows`], by row class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct RowStats {
    /// Rows evaluated by the vectorized bytecode sweep.
    pub sweep: u64,
    /// Rows on the batched per-element fast path.
    pub fast: u64,
    /// Rows that fell back to per-point gathers.
    pub gather: u64,
}

impl RowStats {
    /// Accumulates another tally (e.g. across parallel row chunks).
    pub fn merge(&mut self, other: RowStats) {
        self.sweep += other.sweep;
        self.fast += other.fast;
        self.gather += other.gather;
    }
}

/// Runs the iteration rows `rows` (a contiguous slice of one band's
/// index, whose `base` ranks start at `out_base`) against the resident
/// input window, writing `out` (one slot per iteration).
///
/// Per output row, every window tap becomes a base rank into the flat
/// input stream; resident contiguous rows then either sweep compiled
/// bytecode over the whole row or run the batched per-element loop,
/// while rows whose taps are not contiguous (or not fully resident)
/// fall back to per-point gathers.
pub(crate) fn execute_rows<K: RowKernel + ?Sized>(
    rows: &[Row],
    out_base: u64,
    offsets: &[Point],
    win: &RankWindow<'_>,
    kernel: &K,
    out: &mut [f64],
) -> Result<RowStats, EngineError> {
    let n = offsets.len();
    let mut window = vec![0.0f64; n];
    let mut bases = vec![0usize; n];
    let mut ubases: Vec<usize> = Vec::new();
    let mut stats = RowStats::default();
    let unrolled = kernel.unrolled();

    let mut i = 0usize;
    while i < rows.len() {
        // Grouped unrolled dispatch: U adjacent rows with identical
        // extent, stepping +1 in the unroll axis, writing contiguous
        // output — one multi-output register sweep covers them all.
        if let Some(up) = unrolled.filter(|up| up.unroll() > 1) {
            if let Some(len) = unroll_group_bases(rows, i, up, offsets, win, &mut ubases) {
                let start = rows[i]
                    .base
                    .checked_sub(out_base)
                    .and_then(|s| usize::try_from(s).ok())
                    .ok_or_else(|| inconsistent_row(&rows[i], out_base))?;
                let group_len = len * up.unroll();
                if let Some(group_out) = out.get_mut(start..).and_then(|o| o.get_mut(..group_len)) {
                    up.sweep_group(&ubases, win.vals, group_out, len);
                    stats.sweep += up.unroll() as u64;
                    i += up.unroll();
                    continue;
                }
            }
        }

        let row = &rows[i];
        i += 1;
        let len = usize::try_from(row.len())
            .map_err(|_| EngineError::DomainTooLarge { points: row.len() })?;
        let start = row
            .base
            .checked_sub(out_base)
            .and_then(|s| usize::try_from(s).ok())
            .ok_or_else(|| inconsistent_row(row, out_base))?;
        let out_row = out
            .get_mut(start..)
            .and_then(|o| o.get_mut(..len))
            .ok_or_else(|| inconsistent_row(row, out_base))?;

        let mut all_fast = true;
        for (k, f) in offsets.iter().enumerate() {
            let start = tap_point(&row.prefix, row.lo, f);
            let end = tap_point(&row.prefix, row.hi, f);
            match contiguous_base(win.idx, &start, &end, len).and_then(|b| win.resident_run(b, len))
            {
                Some(off) => bases[k] = off,
                None => {
                    all_fast = false;
                    break;
                }
            }
        }

        if all_fast {
            if let Some(up) = unrolled {
                // Leftover row of an unrolled kernel (group remainder
                // or alignment miss): the single-output register
                // program keeps the datapath identical to the group.
                stats.sweep += 1;
                up.sweep_single(&bases, win.vals, out_row, &mut ubases);
            } else if let Some(ck) = kernel.sweeper() {
                // Vectorized row sweep: each tap is a column-shifted
                // contiguous slice; the bytecode runs over lane chunks.
                stats.sweep += 1;
                ck.sweep(&bases, win.vals, out_row);
            } else {
                stats.fast += 1;
                for (t, slot) in out_row.iter_mut().enumerate() {
                    for (w, &b) in window.iter_mut().zip(&bases) {
                        *w = win.vals[b + t];
                    }
                    *slot = kernel.eval_window(&window);
                }
            }
        } else {
            // Defensive fallback: gather taps point by point. A convex
            // input domain keeps every shifted row contiguous, so
            // plan-derived inputs never land here; custom input indexes
            // that break contiguity still execute correctly (or report
            // the exact missing point).
            stats.gather += 1;
            for (t, slot) in out_row.iter_mut().enumerate() {
                let t_inner = i64::try_from(t)
                    .map_err(|_| EngineError::DomainTooLarge { points: row.len() })?;
                let i = row.prefix.pushed(row.lo + t_inner);
                for (w, f) in window.iter_mut().zip(offsets) {
                    let h = i + *f;
                    *w = match win.value_at(&h) {
                        Ok(v) => v,
                        Err(false) => {
                            return Err(EngineError::MissingInput {
                                point: h.to_string(),
                            })
                        }
                        Err(true) => {
                            return Err(EngineError::InconsistentIndex {
                                detail: format!(
                                    "tap {h} is in the input domain but outside the \
                                     resident window [{}, {})",
                                    win.base,
                                    win.base + win.vals.len() as u64
                                ),
                            })
                        }
                    };
                }
                *slot = kernel.eval_window(&window);
            }
        }
    }

    Ok(stats)
}

/// Probes whether rows `i..i + U` form an unrollable group: identical
/// inner extent, prefixes equal except the last coordinate stepping
/// +1 per row, contiguous output ranks, and every shared tap of the
/// group resident as one contiguous run. On success fills `ubases`
/// with the window offset of each group utap and returns the row
/// length; any miss returns `None` and the caller falls back to
/// single-row dispatch for `rows[i]`.
fn unroll_group_bases(
    rows: &[Row],
    i: usize,
    up: &UnrolledProgram,
    offsets: &[Point],
    win: &RankWindow<'_>,
    ubases: &mut Vec<usize>,
) -> Option<usize> {
    let group = rows.get(i..i + up.unroll())?;
    let first = &group[0];
    let len = usize::try_from(first.len()).ok()?;
    if len == 0 {
        return None;
    }
    let pdims = first.prefix.dims();
    if pdims == 0 {
        return None;
    }
    for (d, row) in group.iter().enumerate().skip(1) {
        let step = u64::try_from(d).ok()?;
        if row.lo != first.lo
            || row.hi != first.hi
            || row.base != first.base.checked_add(step.checked_mul(len as u64)?)?
        {
            return None;
        }
        if (0..pdims - 1).any(|c| row.prefix[c] != first.prefix[c])
            || row.prefix[pdims - 1] != first.prefix[pdims - 1].checked_add(d as i64)?
        {
            return None;
        }
    }
    ubases.clear();
    for &(u, k) in up.group_utaps() {
        let row = &group[usize::from(u)];
        let f = &offsets[usize::from(k)];
        let start = tap_point(&row.prefix, row.lo, f);
        let end = tap_point(&row.prefix, row.hi, f);
        let b = contiguous_base(win.idx, &start, &end, len)?;
        ubases.push(win.resident_run(b, len)?);
    }
    Some(len)
}

/// Window offsets in the user's declared reference order — the order
/// the kernel consumes (`FilterPlan.user_index` inverts the chain's
/// descending sort).
pub(crate) fn plan_offsets(plan: &MemorySystemPlan) -> Vec<Point> {
    let mut offsets = vec![Point::zero(plan.iteration_domain().dims()); plan.port_count()];
    for f in plan.filters() {
        offsets[f.user_index] = f.offset;
    }
    offsets
}

/// Rejects a compiled kernel whose tap count does not match the plan's
/// window.
pub(crate) fn check_kernel_window(
    plan: &MemorySystemPlan,
    kernel: &CompiledKernel,
) -> Result<(), EngineError> {
    if kernel.taps() != plan.port_count() {
        return Err(EngineError::KernelCompile {
            detail: format!(
                "kernel compiled for {} taps but the plan's window has {} points",
                kernel.taps(),
                plan.port_count()
            ),
        });
    }
    Ok(())
}

/// Resolves the worker count: `0` requests the machine's parallelism,
/// and no run uses more workers than it has bands (or rows).
pub(crate) fn threads_for(requested: usize, tiles: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, tiles.max(1))
}

/// The in-core tiled executor: validates the input, splits the output
/// buffer into disjoint per-band slices, and runs the bands on a scoped
/// worker pool pulling from a shared queue. This is the single real
/// implementation behind the session's `InCore`/`Tiled` modes.
pub(crate) fn execute_tiled<K: RowKernel + ?Sized>(
    plan: &MemorySystemPlan,
    tile_plan: &TilePlan,
    input: &InputGrid<'_>,
    kernel: &K,
    threads: usize,
    backend: crate::compile::KernelBackend,
) -> Result<(Vec<f64>, RunReport), EngineError> {
    let expected = input.index().len();
    let declared = plan
        .input_domain()
        .count()
        .map_err(|e| EngineError::Plan(e.into()))?;
    if expected != declared {
        return Err(EngineError::InputSizeMismatch {
            expected: declared,
            got: expected,
        });
    }

    let offsets = plan_offsets(plan);
    let started = Instant::now();
    let total =
        usize::try_from(tile_plan.total_outputs()).map_err(|_| EngineError::DomainTooLarge {
            points: tile_plan.total_outputs(),
        })?;
    let mut outputs = vec![0.0f64; total];

    // Disjoint per-band output slices: bands are contiguous rank ranges.
    let mut work: Vec<(&Tile, &mut [f64])> = Vec::with_capacity(tile_plan.tile_count());
    let mut rest: &mut [f64] = &mut outputs;
    for tile in tile_plan.tiles() {
        let len = usize::try_from(tile.len)
            .map_err(|_| EngineError::DomainTooLarge { points: tile.len })?;
        if len > rest.len() {
            return Err(EngineError::InconsistentIndex {
                detail: format!(
                    "band {} claims {len} outputs but only {} remain unassigned",
                    tile.id,
                    rest.len()
                ),
            });
        }
        let (head, tail) = rest.split_at_mut(len);
        work.push((tile, head));
        rest = tail;
    }
    // Shared work queue; idle workers steal the next unclaimed band.
    work.reverse(); // pop() hands out bands in rank order
    let queue = Mutex::new(work);
    let results: Mutex<Vec<TileReport>> = Mutex::new(Vec::with_capacity(tile_plan.tile_count()));
    let failure: Mutex<Option<EngineError>> = Mutex::new(None);

    let worker_count = threads_for(threads, tile_plan.tile_count());
    crossbeam::scope(|s| {
        for _ in 0..worker_count {
            s.spawn(|_| loop {
                let item = lock_recover(&queue).pop();
                let Some((tile, out)) = item else { break };
                match execute_tile(tile, &offsets, input, kernel, out) {
                    Ok(report) => lock_recover(&results).push(report),
                    Err(e) => {
                        lock_recover(&failure).get_or_insert(e);
                        break;
                    }
                }
            });
        }
    })
    .map_err(|_| EngineError::WorkerPanic)?;

    if let Some(e) = into_inner_recover(failure) {
        return Err(e);
    }
    let mut per_tile = into_inner_recover(results);
    per_tile.sort_by_key(|t| t.id);

    let report = RunReport {
        outputs: tile_plan.total_outputs(),
        tiles: tile_plan.tile_count(),
        threads: worker_count,
        backend,
        unroll: kernel.unrolled().map_or(1, UnrolledProgram::unroll),
        datapath: kernel.datapath(),
        halo_elements: per_tile.iter().map(|t| t.halo_elements).sum(),
        elapsed: started.elapsed(),
        per_tile,
    };
    Ok((outputs, report))
}

/// Runs one band against the full in-core input.
fn execute_tile<K: RowKernel + ?Sized>(
    tile: &Tile,
    offsets: &[Point],
    input: &InputGrid<'_>,
    kernel: &K,
    out: &mut [f64],
) -> Result<TileReport, EngineError> {
    let tile_started = Instant::now();
    let idx = tile
        .iter_domain
        .index()
        .map_err(|e| EngineError::Plan(e.into()))?;
    let win = RankWindow {
        idx: input.index(),
        vals: input.values(),
        base: 0,
    };
    let stats = execute_rows(idx.rows(), 0, offsets, &win, kernel, out)?;

    Ok(TileReport {
        id: tile.id,
        outputs: tile.len,
        halo_elements: tile
            .halo_domain
            .count()
            .map_err(|e| EngineError::Plan(e.into()))?,
        sweep_rows: stats.sweep,
        fast_rows: stats.fast,
        gather_rows: stats.gather,
        elapsed: tile_started.elapsed(),
    })
}

/// Splits a band's iteration rows into contiguous per-worker chunks
/// writing disjoint slices of the band buffer.
pub(crate) fn execute_band_parallel<K: RowKernel + ?Sized>(
    band_rows: &[Row],
    offsets: &[Point],
    win: &RankWindow<'_>,
    kernel: &K,
    out: &mut [f64],
    workers: usize,
) -> Result<RowStats, EngineError> {
    // Chunk boundaries in row space; output slices follow row bases.
    let per = band_rows.len().div_ceil(workers);
    let mut chunks: Vec<(&[Row], &mut [f64])> = Vec::with_capacity(workers);
    let mut rest_rows = band_rows;
    let mut rest_out: &mut [f64] = out;
    let mut consumed = 0u64;
    while !rest_rows.is_empty() {
        let take = per.min(rest_rows.len());
        let (head, tail) = rest_rows.split_at(take);
        let chunk_vals: u64 = head.iter().map(Row::len).sum();
        let chunk_len = usize::try_from(chunk_vals)
            .map_err(|_| EngineError::DomainTooLarge { points: chunk_vals })?;
        if head.first().map(|r| r.base) != Some(consumed) || chunk_len > rest_out.len() {
            return Err(EngineError::InconsistentIndex {
                detail: "band iteration rows are not in contiguous rank order".into(),
            });
        }
        let (o_head, o_tail) = rest_out.split_at_mut(chunk_len);
        chunks.push((head, o_head));
        rest_rows = tail;
        rest_out = o_tail;
        consumed += chunk_vals;
    }

    let queue = Mutex::new(chunks);
    let results: Mutex<Vec<RowChunkResult>> = Mutex::new(Vec::with_capacity(workers));
    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let item = lock_recover(&queue).pop();
                let Some((rows, out)) = item else { break };
                let out_base = rows.first().map_or(0, |r| r.base);
                let r = execute_rows(rows, out_base, offsets, win, kernel, out);
                let failed = r.is_err();
                lock_recover(&results).push(r);
                if failed {
                    break;
                }
            });
        }
    })
    .map_err(|_| EngineError::WorkerPanic)?;

    let mut stats = RowStats::default();
    for r in into_inner_recover(results) {
        stats.merge(r?);
    }
    Ok(stats)
}

type RowChunkResult = Result<RowStats, EngineError>;

fn inconsistent_row(row: &Row, out_base: u64) -> EngineError {
    EngineError::InconsistentIndex {
        detail: format!(
            "iteration row at {} (base {}) does not fit its band's output \
             slice starting at rank {out_base}",
            row.prefix, row.base
        ),
    }
}

/// The input point read by tap `f` at iteration `(prefix, inner)`.
fn tap_point(prefix: &Point, inner: i64, f: &Point) -> Point {
    prefix.pushed(inner) + *f
}

/// The batched-tap predicate: `Some(start rank)` iff the shifted row
/// `start..=end` is one contiguous run of the input stream — both ends
/// in-domain and exactly `len - 1` ranks apart.
///
/// The rank difference is taken with `checked_sub`: an index produced
/// by [`DomainIndex::build`] ranks monotonically, but the engine also
/// accepts hand-built indexes ([`DomainIndex::from_rows`]) whose base
/// values may invert rank order, and the fast path must degrade to the
/// gather fallback there instead of panicking on underflow.
fn contiguous_base(in_idx: &DomainIndex, start: &Point, end: &Point, len: usize) -> Option<u64> {
    if !in_idx.contains(start) || !in_idx.contains(end) {
        return None;
    }
    let base = in_idx.rank_lt(start);
    match in_idx.rank_lt(end).checked_sub(base) {
        Some(span) if span == (len - 1) as u64 => Some(base),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrambled_rank_order_degrades_to_gather_not_panic() {
        // Hand-built index with inverted bases: the prefix-[1] row
        // ranks *before* the prefix-[0] row, so rank_lt(end) <
        // rank_lt(start) for a span crossing the two. The old unchecked
        // subtraction panicked with overflow here; the predicate must
        // report "not contiguous" instead.
        let idx = DomainIndex::from_rows(
            2,
            vec![
                Row {
                    prefix: Point::new(&[0]),
                    lo: 0,
                    hi: 4,
                    base: 5,
                },
                Row {
                    prefix: Point::new(&[1]),
                    lo: 0,
                    hi: 4,
                    base: 0,
                },
            ],
        );
        let start = Point::new(&[0, 0]); // rank 5
        let end = Point::new(&[1, 4]); // rank 4 — inverted
        assert!(idx.rank_lt(&end) < idx.rank_lt(&start));
        assert_eq!(contiguous_base(&idx, &start, &end, 10), None);
        // Sanity: a consistent span on the same index still batches.
        let lo = Point::new(&[1, 0]);
        let hi = Point::new(&[1, 4]);
        assert_eq!(contiguous_base(&idx, &lo, &hi, 5), Some(0));
    }

    #[test]
    fn row_stats_merge_accumulates() {
        let mut a = RowStats {
            sweep: 1,
            fast: 2,
            gather: 3,
        };
        a.merge(RowStats {
            sweep: 10,
            fast: 20,
            gather: 30,
        });
        assert_eq!(
            a,
            RowStats {
                sweep: 11,
                fast: 22,
                gather: 33,
            }
        );
    }
}
