//! Streaming endpoints: the row sources and sinks the unified
//! [`crate::Session`] layer pulls from and pushes to out of core.
//!
//! The in-core modes hold the whole input and output grids in RAM, so
//! domain size and memory footprint are coupled. The paper's central
//! observation (Sec. 2.3) is that a stencil only ever needs the *reuse
//! window* — the data between the first and last use of an element —
//! resident at once. Streaming is the software form of that bound:
//!
//! * a [`RowSource`] delivers input values in lexicographic stream
//!   order, one input index row per pull — the same order the
//!   accelerator's off-chip interface consumes;
//! * the session's stage machine ([`crate::ExecMode::Streaming`]) walks
//!   the bands of a [`stencil_core::TilePlan`] in rank order, keeping
//!   exactly the rows of the current band's `halo_band` resident
//!   (evicting before pulling, so peak residency never exceeds one
//!   band's halo: `halo rows × widest row`);
//! * finished bands execute through the same sweep/fast/gather row
//!   executor as the in-core path and push their output rows to a
//!   [`RowSink`] before the next band's rows are pulled — the sink and
//!   source are therefore never more than one band apart (bounded
//!   backpressure).
//!
//! Residency is telemetry-tracked with a [`stencil_telemetry::HighWater`]
//! gauge; the report's `peak_resident` and its planned `resident_bound`
//! feed the validator rule `peak_resident <= resident_bound`.

/// Supplies input values in lexicographic stream order.
///
/// [`crate::Session::run_streaming`] pulls one input index row per
/// call, in row order; rows before the first band's halo are pulled and
/// discarded (the stream has no seek), rows after the last band's halo
/// are never pulled. A source therefore needs no random access — a
/// growing file, a generator, or a network stream all fit.
pub trait RowSource {
    /// Appends the next `len` values of the input stream to `buf`.
    ///
    /// # Errors
    ///
    /// A message describing why the row could not be produced
    /// (exhausted stream, I/O failure, ...) — surfaced to the caller as
    /// [`crate::EngineError::Source`].
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), String>;
}

/// Receives finished output rows in lexicographic stream order.
pub trait RowSink {
    /// Consumes the next output row.
    ///
    /// # Errors
    ///
    /// A message describing why the row was rejected — surfaced as
    /// [`crate::EngineError::Sink`].
    fn push_row(&mut self, row: &[f64]) -> Result<(), String>;
}

/// A [`RowSource`] over an in-memory slice in rank order — the
/// streaming equivalent of [`crate::InputGrid`]'s value buffer.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    vals: &'a [f64],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Streams `vals` front to back.
    #[must_use]
    pub fn new(vals: &'a [f64]) -> Self {
        Self { vals, pos: 0 }
    }
}

impl RowSource for SliceSource<'_> {
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), String> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.vals.len());
        let Some(end) = end else {
            return Err(format!(
                "slice exhausted: {len} values requested at position {} of {}",
                self.pos,
                self.vals.len()
            ));
        };
        buf.extend_from_slice(&self.vals[self.pos..end]);
        self.pos = end;
        Ok(())
    }
}

/// A [`RowSource`] that generates each value from its stream rank — an
/// out-of-core input that never exists in memory at full size.
pub struct FnSource<F> {
    gen: F,
    next_rank: u64,
}

impl<F: FnMut(u64) -> f64> FnSource<F> {
    /// Generates the value of rank `r` as `gen(r)`.
    pub fn new(gen: F) -> Self {
        Self { gen, next_rank: 0 }
    }
}

impl<F> std::fmt::Debug for FnSource<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSource")
            .field("next_rank", &self.next_rank)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(u64) -> f64> RowSource for FnSource<F> {
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), String> {
        buf.reserve(len);
        for _ in 0..len {
            buf.push((self.gen)(self.next_rank));
            self.next_rank += 1;
        }
        Ok(())
    }
}

/// A file-backed [`RowSource`]: reads consecutive little-endian `f64`
/// values from any [`std::io::Read`].
#[derive(Debug)]
pub struct ReadSource<R> {
    reader: R,
}

impl<R: std::io::Read> ReadSource<R> {
    /// Streams little-endian `f64` values from `reader`.
    pub fn new(reader: R) -> Self {
        Self { reader }
    }
}

impl<R: std::io::Read> RowSource for ReadSource<R> {
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), String> {
        let mut bytes = [0u8; 8];
        buf.reserve(len);
        for k in 0..len {
            self.reader
                .read_exact(&mut bytes)
                .map_err(|e| format!("read failed at value {k} of {len}: {e}"))?;
            buf.push(f64::from_le_bytes(bytes));
        }
        Ok(())
    }
}

/// A [`RowSink`] that collects every output row into one vector —
/// useful for tests and for comparing against in-core runs.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// All received values, in arrival (= rank) order.
    pub values: Vec<f64>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl RowSink for VecSink {
    fn push_row(&mut self, row: &[f64]) -> Result<(), String> {
        self.values.extend_from_slice(row);
        Ok(())
    }
}

/// A file-backed [`RowSink`]: writes consecutive little-endian `f64`
/// values to any [`std::io::Write`].
#[derive(Debug)]
pub struct WriteSink<W> {
    writer: W,
}

impl<W: std::io::Write> WriteSink<W> {
    /// Streams little-endian `f64` values to `writer`.
    pub fn new(writer: W) -> Self {
        Self { writer }
    }

    /// Unwraps the writer (e.g. to flush or inspect it).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: std::io::Write> RowSink for WriteSink<W> {
    fn push_row(&mut self, row: &[f64]) -> Result<(), String> {
        for v in row {
            self.writer
                .write_all(&v.to_le_bytes())
                .map_err(|e| format!("write failed: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_source_reports_exhaustion() {
        let vals = [1.0, 2.0];
        let mut s = SliceSource::new(&vals);
        let mut buf = Vec::new();
        s.fill_row(2, &mut buf).unwrap();
        assert_eq!(buf, vals);
        let e = s.fill_row(1, &mut buf).unwrap_err();
        assert!(e.contains("slice exhausted"), "{e}");
    }

    #[test]
    fn read_source_and_write_sink_round_trip_values() {
        let vals = [3.5f64, -2.25, 0.125];
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut source = ReadSource::new(&bytes[..]);
        let mut buf = Vec::new();
        source.fill_row(3, &mut buf).unwrap();
        assert_eq!(buf, vals);
        let mut sink = WriteSink::new(Vec::<u8>::new());
        sink.push_row(&vals).unwrap();
        assert_eq!(sink.into_inner(), bytes);
    }
}
