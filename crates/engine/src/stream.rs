//! Streaming endpoints and the legacy out-of-core entry points, kept
//! as thin delegates over the unified [`Session`] layer.
//!
//! The in-core paths ([`crate::run_plan`]) hold the whole input and
//! output grids in RAM, so domain size and memory footprint are
//! coupled. The paper's central observation (Sec. 2.3) is that a
//! stencil only ever needs the *reuse window* — the data between the
//! first and last use of an element — resident at once. Streaming is
//! the software form of that bound:
//!
//! * a [`RowSource`] delivers input values in lexicographic stream
//!   order, one input index row per pull — the same order the
//!   accelerator's off-chip interface consumes;
//! * the session's stage machine ([`crate::ExecMode::Streaming`]) walks
//!   the bands of a [`stencil_core::TilePlan`] in rank order, keeping
//!   exactly the rows of the current band's `halo_band` resident
//!   (evicting before pulling, so peak residency never exceeds one
//!   band's halo: `halo rows × widest row`);
//! * finished bands execute through the same sweep/fast/gather row
//!   executor as the in-core path and push their output rows to a
//!   [`RowSink`] before the next band's rows are pulled — the sink and
//!   source are therefore never more than one band apart (bounded
//!   backpressure).
//!
//! Residency is telemetry-tracked with a [`stencil_telemetry::HighWater`]
//! gauge; the report's `peak_resident` and its planned `resident_bound`
//! feed the validator rule `peak_resident <= resident_bound`.

use stencil_core::MemorySystemPlan;

use crate::compile::{CompiledKernel, KernelBackend};
use crate::error::EngineError;
use crate::report::StreamReport;
use crate::session::{ExecMode, Session, SessionKernel};

/// Supplies input values in lexicographic stream order.
///
/// [`run_streaming`] pulls one input index row per call, in row order;
/// rows before the first band's halo are pulled and discarded (the
/// stream has no seek), rows after the last band's halo are never
/// pulled. A source therefore needs no random access — a growing file,
/// a generator, or a network stream all fit.
pub trait RowSource {
    /// Appends the next `len` values of the input stream to `buf`.
    ///
    /// # Errors
    ///
    /// A message describing why the row could not be produced
    /// (exhausted stream, I/O failure, ...) — surfaced to the caller of
    /// [`run_streaming`] as [`EngineError::Source`].
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), String>;
}

/// Receives finished output rows in lexicographic stream order.
pub trait RowSink {
    /// Consumes the next output row.
    ///
    /// # Errors
    ///
    /// A message describing why the row was rejected — surfaced as
    /// [`EngineError::Sink`].
    fn push_row(&mut self, row: &[f64]) -> Result<(), String>;
}

/// A [`RowSource`] over an in-memory slice in rank order — the
/// streaming equivalent of [`crate::InputGrid`]'s value buffer.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    vals: &'a [f64],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Streams `vals` front to back.
    #[must_use]
    pub fn new(vals: &'a [f64]) -> Self {
        Self { vals, pos: 0 }
    }
}

impl RowSource for SliceSource<'_> {
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), String> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.vals.len());
        let Some(end) = end else {
            return Err(format!(
                "slice exhausted: {len} values requested at position {} of {}",
                self.pos,
                self.vals.len()
            ));
        };
        buf.extend_from_slice(&self.vals[self.pos..end]);
        self.pos = end;
        Ok(())
    }
}

/// A [`RowSource`] that generates each value from its stream rank — an
/// out-of-core input that never exists in memory at full size.
pub struct FnSource<F> {
    gen: F,
    next_rank: u64,
}

impl<F: FnMut(u64) -> f64> FnSource<F> {
    /// Generates the value of rank `r` as `gen(r)`.
    pub fn new(gen: F) -> Self {
        Self { gen, next_rank: 0 }
    }
}

impl<F> std::fmt::Debug for FnSource<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSource")
            .field("next_rank", &self.next_rank)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(u64) -> f64> RowSource for FnSource<F> {
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), String> {
        buf.reserve(len);
        for _ in 0..len {
            buf.push((self.gen)(self.next_rank));
            self.next_rank += 1;
        }
        Ok(())
    }
}

/// A file-backed [`RowSource`]: reads consecutive little-endian `f64`
/// values from any [`std::io::Read`].
#[derive(Debug)]
pub struct ReadSource<R> {
    reader: R,
}

impl<R: std::io::Read> ReadSource<R> {
    /// Streams little-endian `f64` values from `reader`.
    pub fn new(reader: R) -> Self {
        Self { reader }
    }
}

impl<R: std::io::Read> RowSource for ReadSource<R> {
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), String> {
        let mut bytes = [0u8; 8];
        buf.reserve(len);
        for k in 0..len {
            self.reader
                .read_exact(&mut bytes)
                .map_err(|e| format!("read failed at value {k} of {len}: {e}"))?;
            buf.push(f64::from_le_bytes(bytes));
        }
        Ok(())
    }
}

/// A [`RowSink`] that collects every output row into one vector —
/// useful for tests and for comparing against in-core runs.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// All received values, in arrival (= rank) order.
    pub values: Vec<f64>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl RowSink for VecSink {
    fn push_row(&mut self, row: &[f64]) -> Result<(), String> {
        self.values.extend_from_slice(row);
        Ok(())
    }
}

/// A file-backed [`RowSink`]: writes consecutive little-endian `f64`
/// values to any [`std::io::Write`].
#[derive(Debug)]
pub struct WriteSink<W> {
    writer: W,
}

impl<W: std::io::Write> WriteSink<W> {
    /// Streams little-endian `f64` values to `writer`.
    pub fn new(writer: W) -> Self {
        Self { writer }
    }

    /// Unwraps the writer (e.g. to flush or inspect it).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: std::io::Write> RowSink for WriteSink<W> {
    fn push_row(&mut self, row: &[f64]) -> Result<(), String> {
        for v in row {
            self.writer
                .write_all(&v.to_le_bytes())
                .map_err(|e| format!("write failed: {e}"))?;
        }
        Ok(())
    }
}

/// Streaming tuning knobs.
///
/// Build with the uniform chained builder:
/// `StreamConfig::new().chunk_rows(4).threads(2)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamConfig {
    /// Band height in distinct outermost-dimension values. `None`
    /// applies the plan's Appendix 9.4 sharding (one band per off-chip
    /// stream); smaller chunks shrink peak residency at the cost of
    /// more halo re-reads.
    pub chunk_rows: Option<u64>,
    /// Worker threads per band; `0` uses the machine's parallelism.
    pub threads: usize,
    /// How the kernel datapath executes on the compiled entry point
    /// ([`run_streaming_compiled`]); the closure entry point ignores it.
    pub backend: KernelBackend,
}

impl StreamConfig {
    /// The all-defaults config — the anchor of the chained builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an explicit band height.
    #[must_use]
    pub fn chunk_rows(mut self, chunk_rows: u64) -> Self {
        self.chunk_rows = Some(chunk_rows);
        self
    }

    /// Sets the worker thread count (`0` = machine parallelism).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the kernel backend for the compiled entry point.
    #[must_use]
    pub fn backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// A config with an explicit band height.
    #[deprecated(note = "use the uniform builder: `StreamConfig::new().chunk_rows(n)`")]
    #[must_use]
    pub fn with_chunk_rows(chunk_rows: u64) -> Self {
        Self::new().chunk_rows(chunk_rows)
    }
}

/// Executes `plan`'s kernel out of core: input rows are pulled from
/// `source` in stream order, only the current band's halo window is
/// kept resident, and finished output rows are pushed to `sink` band by
/// band. Outputs arrive at the sink in lexicographic rank order — the
/// concatenated sink stream is bit-identical to [`crate::run_plan`]'s
/// output buffer.
///
/// # Errors
///
/// * [`EngineError::Plan`] on tiling failures.
/// * [`EngineError::Source`] / [`EngineError::Sink`] when the endpoints
///   fail.
/// * [`EngineError::InconsistentIndex`] if the input domain's index is
///   not in contiguous stream order (streaming requires monotone row
///   bases), or a band's arithmetic contradicts it.
/// * [`EngineError::DomainTooLarge`] if a single band (not the whole
///   domain) exceeds addressable memory.
/// * [`EngineError::MissingInput`] / [`EngineError::WorkerPanic`] as in
///   [`crate::run_plan`].
#[deprecated(
    note = "use `Session::new(plan).kernel(..).mode(ExecMode::Streaming{..}).run_streaming(source, sink)`"
)]
pub fn run_streaming<C>(
    plan: &MemorySystemPlan,
    source: &mut dyn RowSource,
    sink: &mut dyn RowSink,
    compute: &C,
    config: &StreamConfig,
) -> Result<StreamReport, EngineError>
where
    C: Fn(&[f64]) -> f64 + Sync,
{
    Session::new(plan)
        .kernel(SessionKernel::Closure(compute))
        .mode(ExecMode::Streaming {
            chunk_rows: config.chunk_rows,
        })
        .threads(config.threads)
        .run_streaming(source, sink)?
        .into_stream_report()
}

/// [`run_streaming`] through pre-compiled bytecode: interior rows run
/// the vectorized row sweep when `config.backend` is
/// [`KernelBackend::Compiled`], or the per-element bytecode interpreter
/// under [`KernelBackend::Closure`].
///
/// # Errors
///
/// As [`run_streaming`], plus [`EngineError::KernelCompile`] when the
/// kernel's tap count does not match the plan's window.
#[deprecated(
    note = "use `Session::new(plan).kernel(SessionKernel::Compiled(kernel)).mode(ExecMode::Streaming{..}).run_streaming(source, sink)`"
)]
pub fn run_streaming_compiled(
    plan: &MemorySystemPlan,
    source: &mut dyn RowSource,
    sink: &mut dyn RowSink,
    kernel: &CompiledKernel,
    config: &StreamConfig,
) -> Result<StreamReport, EngineError> {
    Session::new(plan)
        .kernel(SessionKernel::Compiled(kernel))
        .backend(config.backend)
        .mode(ExecMode::Streaming {
            chunk_rows: config.chunk_rows,
        })
        .threads(config.threads)
        .run_streaming(source, sink)?
        .into_stream_report()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use stencil_core::StencilSpec;
    use stencil_kernels::KernelExpr;
    use stencil_polyhedral::{Point, Polyhedron};

    fn plan_5pt(rows: i64, cols: i64) -> MemorySystemPlan {
        let spec = StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, rows - 2), (1, cols - 2)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap();
        MemorySystemPlan::generate(&spec).unwrap()
    }

    fn ramp(len: u64) -> Vec<f64> {
        (0..len).map(|r| (r % 97) as f64 * 0.5 - 11.0).collect()
    }

    fn compute(w: &[f64]) -> f64 {
        w[2] + 0.25 * (w[0] + w[1] + w[3] + w[4] - 4.0 * w[2])
    }

    #[test]
    fn deprecated_with_chunk_rows_still_builds_the_same_config() {
        let old = StreamConfig::with_chunk_rows(6).threads(3);
        let new = StreamConfig::new().chunk_rows(6).threads(3);
        assert_eq!(old.chunk_rows, new.chunk_rows);
        assert_eq!(old.threads, new.threads);
        assert_eq!(old.backend, new.backend);
    }

    #[test]
    fn legacy_streaming_delegates_match_the_session() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = crate::InputGrid::new(&in_idx, &vals).unwrap();
        let session = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .mode(ExecMode::Streaming {
                chunk_rows: Some(3),
            })
            .run(&input)
            .unwrap();

        let mut source = SliceSource::new(&vals);
        let mut sink = VecSink::new();
        let report = run_streaming(
            &plan,
            &mut source,
            &mut sink,
            &compute,
            &StreamConfig::new().chunk_rows(3),
        )
        .unwrap();
        assert_eq!(sink.values, session.outputs);
        assert_eq!(report.chunk_rows, 3);
        assert_eq!(report.backend, KernelBackend::Closure);

        let [t0, t1, t2, t3, t4] = KernelExpr::taps::<5>();
        let expr = t2.clone() + 0.25 * (t0 + t1 + t3 + t4 - 4.0 * t2);
        let kernel = CompiledKernel::compile_checked(&expr, 5, &compute).unwrap();
        let mut source = SliceSource::new(&vals);
        let mut sink = VecSink::new();
        let report = run_streaming_compiled(
            &plan,
            &mut source,
            &mut sink,
            &kernel,
            &StreamConfig::new().chunk_rows(3),
        )
        .unwrap();
        assert_eq!(sink.values, session.outputs);
        assert_eq!(report.backend, KernelBackend::Compiled);
        assert_eq!(report.sweep_rows, 18);
    }

    #[test]
    fn slice_source_reports_exhaustion() {
        let vals = [1.0, 2.0];
        let mut s = SliceSource::new(&vals);
        let mut buf = Vec::new();
        s.fill_row(2, &mut buf).unwrap();
        assert_eq!(buf, vals);
        let e = s.fill_row(1, &mut buf).unwrap_err();
        assert!(e.contains("slice exhausted"), "{e}");
    }

    #[test]
    fn read_source_and_write_sink_round_trip_values() {
        let vals = [3.5f64, -2.25, 0.125];
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut source = ReadSource::new(&bytes[..]);
        let mut buf = Vec::new();
        source.fill_row(3, &mut buf).unwrap();
        assert_eq!(buf, vals);
        let mut sink = WriteSink::new(Vec::<u8>::new());
        sink.push_row(&vals).unwrap();
        assert_eq!(sink.into_inner(), bytes);
    }
}
