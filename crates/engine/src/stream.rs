//! Bounded-memory streaming execution: out-of-core runs that keep only
//! the current band's halo window resident.
//!
//! The in-core paths ([`crate::run_plan`]) hold the whole input and
//! output grids in RAM, so domain size and memory footprint are
//! coupled. The paper's central observation (Sec. 2.3) is that a
//! stencil only ever needs the *reuse window* — the data between the
//! first and last use of an element — resident at once. This module is
//! the software form of that bound:
//!
//! * a [`RowSource`] delivers input values in lexicographic stream
//!   order, one input index row per pull — the same order the
//!   accelerator's off-chip interface consumes;
//! * [`run_streaming`] walks the bands of a [`stencil_core::TilePlan`]
//!   in rank order, keeping exactly the rows of the current band's
//!   `halo_band` resident (evicting before pulling, so peak residency
//!   never exceeds one band's halo: `halo rows × widest row`);
//! * finished bands execute through the same sweep/fast/gather row
//!   executor as the in-core path and push their output rows to a
//!   [`RowSink`] before the next band's rows are pulled — the sink and
//!   source are therefore never more than one band apart (bounded
//!   backpressure).
//!
//! Residency is telemetry-tracked with a [`stencil_telemetry::HighWater`]
//! gauge; the report's `peak_resident` and its planned `resident_bound`
//! feed the validator rule `peak_resident <= resident_bound`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

use stencil_core::{row_outer_span, MemorySystemPlan};
use stencil_polyhedral::{Point, Row};
use stencil_telemetry::HighWater;

use crate::compile::{CompiledKernel, KernelBackend};
use crate::error::EngineError;
use crate::exec::{check_kernel_window, threads_for};
use crate::report::StreamReport;
use crate::rowexec::{
    execute_rows, ClosureKernel, RankWindow, RowKernel, RowStats, ScalarKernel, SweepKernel,
};

/// Supplies input values in lexicographic stream order.
///
/// [`run_streaming`] pulls one input index row per call, in row order;
/// rows before the first band's halo are pulled and discarded (the
/// stream has no seek), rows after the last band's halo are never
/// pulled. A source therefore needs no random access — a growing file,
/// a generator, or a network stream all fit.
pub trait RowSource {
    /// Appends the next `len` values of the input stream to `buf`.
    ///
    /// # Errors
    ///
    /// A message describing why the row could not be produced
    /// (exhausted stream, I/O failure, ...) — surfaced to the caller of
    /// [`run_streaming`] as [`EngineError::Source`].
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), String>;
}

/// Receives finished output rows in lexicographic stream order.
pub trait RowSink {
    /// Consumes the next output row.
    ///
    /// # Errors
    ///
    /// A message describing why the row was rejected — surfaced as
    /// [`EngineError::Sink`].
    fn push_row(&mut self, row: &[f64]) -> Result<(), String>;
}

/// A [`RowSource`] over an in-memory slice in rank order — the
/// streaming equivalent of [`crate::InputGrid`]'s value buffer.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    vals: &'a [f64],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Streams `vals` front to back.
    #[must_use]
    pub fn new(vals: &'a [f64]) -> Self {
        Self { vals, pos: 0 }
    }
}

impl RowSource for SliceSource<'_> {
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), String> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.vals.len());
        let Some(end) = end else {
            return Err(format!(
                "slice exhausted: {len} values requested at position {} of {}",
                self.pos,
                self.vals.len()
            ));
        };
        buf.extend_from_slice(&self.vals[self.pos..end]);
        self.pos = end;
        Ok(())
    }
}

/// A [`RowSource`] that generates each value from its stream rank — an
/// out-of-core input that never exists in memory at full size.
pub struct FnSource<F> {
    gen: F,
    next_rank: u64,
}

impl<F: FnMut(u64) -> f64> FnSource<F> {
    /// Generates the value of rank `r` as `gen(r)`.
    pub fn new(gen: F) -> Self {
        Self { gen, next_rank: 0 }
    }
}

impl<F> std::fmt::Debug for FnSource<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSource")
            .field("next_rank", &self.next_rank)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(u64) -> f64> RowSource for FnSource<F> {
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), String> {
        buf.reserve(len);
        for _ in 0..len {
            buf.push((self.gen)(self.next_rank));
            self.next_rank += 1;
        }
        Ok(())
    }
}

/// A file-backed [`RowSource`]: reads consecutive little-endian `f64`
/// values from any [`std::io::Read`].
#[derive(Debug)]
pub struct ReadSource<R> {
    reader: R,
}

impl<R: std::io::Read> ReadSource<R> {
    /// Streams little-endian `f64` values from `reader`.
    pub fn new(reader: R) -> Self {
        Self { reader }
    }
}

impl<R: std::io::Read> RowSource for ReadSource<R> {
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), String> {
        let mut bytes = [0u8; 8];
        buf.reserve(len);
        for k in 0..len {
            self.reader
                .read_exact(&mut bytes)
                .map_err(|e| format!("read failed at value {k} of {len}: {e}"))?;
            buf.push(f64::from_le_bytes(bytes));
        }
        Ok(())
    }
}

/// A [`RowSink`] that collects every output row into one vector —
/// useful for tests and for comparing against in-core runs.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// All received values, in arrival (= rank) order.
    pub values: Vec<f64>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl RowSink for VecSink {
    fn push_row(&mut self, row: &[f64]) -> Result<(), String> {
        self.values.extend_from_slice(row);
        Ok(())
    }
}

/// A file-backed [`RowSink`]: writes consecutive little-endian `f64`
/// values to any [`std::io::Write`].
#[derive(Debug)]
pub struct WriteSink<W> {
    writer: W,
}

impl<W: std::io::Write> WriteSink<W> {
    /// Streams little-endian `f64` values to `writer`.
    pub fn new(writer: W) -> Self {
        Self { writer }
    }

    /// Unwraps the writer (e.g. to flush or inspect it).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: std::io::Write> RowSink for WriteSink<W> {
    fn push_row(&mut self, row: &[f64]) -> Result<(), String> {
        for v in row {
            self.writer
                .write_all(&v.to_le_bytes())
                .map_err(|e| format!("write failed: {e}"))?;
        }
        Ok(())
    }
}

/// Streaming tuning knobs.
///
/// Build with the uniform chained builder:
/// `StreamConfig::new().chunk_rows(4).threads(2)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamConfig {
    /// Band height in distinct outermost-dimension values. `None`
    /// applies the plan's Appendix 9.4 sharding (one band per off-chip
    /// stream); smaller chunks shrink peak residency at the cost of
    /// more halo re-reads.
    pub chunk_rows: Option<u64>,
    /// Worker threads per band; `0` uses the machine's parallelism.
    pub threads: usize,
    /// How the kernel datapath executes on the compiled entry point
    /// ([`run_streaming_compiled`]); the closure entry point ignores it.
    pub backend: KernelBackend,
}

impl StreamConfig {
    /// The all-defaults config — the anchor of the chained builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an explicit band height.
    #[must_use]
    pub fn chunk_rows(mut self, chunk_rows: u64) -> Self {
        self.chunk_rows = Some(chunk_rows);
        self
    }

    /// Sets the worker thread count (`0` = machine parallelism).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the kernel backend for the compiled entry point.
    #[must_use]
    pub fn backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// A config with an explicit band height.
    #[deprecated(note = "use the uniform builder: `StreamConfig::new().chunk_rows(n)`")]
    #[must_use]
    pub fn with_chunk_rows(chunk_rows: u64) -> Self {
        Self::new().chunk_rows(chunk_rows)
    }
}

/// Executes `plan`'s kernel out of core: input rows are pulled from
/// `source` in stream order, only the current band's halo window is
/// kept resident, and finished output rows are pushed to `sink` band by
/// band. Outputs arrive at the sink in lexicographic rank order — the
/// concatenated sink stream is bit-identical to [`crate::run_plan`]'s
/// output buffer.
///
/// # Errors
///
/// * [`EngineError::Plan`] on tiling failures.
/// * [`EngineError::Source`] / [`EngineError::Sink`] when the endpoints
///   fail.
/// * [`EngineError::InconsistentIndex`] if the input domain's index is
///   not in contiguous stream order (streaming requires monotone row
///   bases), or a band's arithmetic contradicts it.
/// * [`EngineError::DomainTooLarge`] if a single band (not the whole
///   domain) exceeds addressable memory.
/// * [`EngineError::MissingInput`] / [`EngineError::WorkerPanic`] as in
///   [`crate::run_plan`].
pub fn run_streaming<C>(
    plan: &MemorySystemPlan,
    source: &mut dyn RowSource,
    sink: &mut dyn RowSink,
    compute: &C,
    config: &StreamConfig,
) -> Result<StreamReport, EngineError>
where
    C: Fn(&[f64]) -> f64 + Sync,
{
    run_streaming_inner(
        plan,
        source,
        sink,
        &ClosureKernel(compute),
        config,
        KernelBackend::Closure,
    )
}

/// [`run_streaming`] through pre-compiled bytecode: interior rows run
/// the vectorized row sweep when `config.backend` is
/// [`KernelBackend::Compiled`], or the per-element bytecode interpreter
/// under [`KernelBackend::Closure`].
///
/// # Errors
///
/// As [`run_streaming`], plus [`EngineError::KernelCompile`] when the
/// kernel's tap count does not match the plan's window.
pub fn run_streaming_compiled(
    plan: &MemorySystemPlan,
    source: &mut dyn RowSource,
    sink: &mut dyn RowSink,
    kernel: &CompiledKernel,
    config: &StreamConfig,
) -> Result<StreamReport, EngineError> {
    check_kernel_window(plan, kernel)?;
    match config.backend {
        KernelBackend::Compiled => run_streaming_inner(
            plan,
            source,
            sink,
            &SweepKernel(kernel),
            config,
            KernelBackend::Compiled,
        ),
        KernelBackend::Closure => run_streaming_inner(
            plan,
            source,
            sink,
            &ScalarKernel(kernel),
            config,
            KernelBackend::Closure,
        ),
    }
}

fn run_streaming_inner<K: RowKernel>(
    plan: &MemorySystemPlan,
    source: &mut dyn RowSource,
    sink: &mut dyn RowSink,
    kernel: &K,
    config: &StreamConfig,
    backend: KernelBackend,
) -> Result<StreamReport, EngineError> {
    let started = Instant::now();
    let tile_plan = match config.chunk_rows {
        Some(n) => plan.tile_plan_chunked(n)?,
        None => plan.tile_plan_from_streams()?,
    };
    let in_idx = plan
        .input_domain()
        .index()
        .map_err(|e| EngineError::Plan(e.into()))?;
    let dims = in_idx.dims();
    let rows = in_idx.rows();

    // Streaming addresses residents by rank offset from the window
    // base, which requires the input stream to be exactly the rows in
    // order — i.e. contiguous monotone bases.
    let mut expect_base = 0u64;
    for row in rows {
        if row.base != expect_base {
            return Err(EngineError::InconsistentIndex {
                detail: format!(
                    "input row at {} has base {} but the stream is at rank {expect_base}; \
                     streaming requires contiguous rank order",
                    row.prefix, row.base
                ),
            });
        }
        expect_base += row.len();
    }

    // Window offsets in the user's declared reference order.
    let mut offsets = vec![Point::zero(plan.iteration_domain().dims()); plan.port_count()];
    for f in plan.filters() {
        offsets[f.user_index] = f.offset;
    }

    let mut window: Vec<f64> = Vec::new();
    let mut scratch: Vec<f64> = Vec::new();
    let mut resident = 0usize..0usize; // row indices currently resident
    let mut gauge = HighWater::new();
    let mut resident_bound = 0u64;
    let mut rows_in = 0u64;
    let mut values_in = 0u64;
    let mut rows_out = 0u64;
    let mut stats = RowStats::default();
    let mut out_buf: Vec<f64> = Vec::new();
    let worker_count = threads_for(config.threads, usize::MAX);

    for tile in tile_plan.tiles() {
        // 1. Evict rows entirely below this band's halo. Evicting
        // before pulling keeps the peak at one band's halo window.
        while resident.start < resident.end
            && tile.row_below_halo(row_outer_span(&rows[resident.start], dims))
        {
            let n = usize::try_from(rows[resident.start].len()).map_err(|_| {
                EngineError::DomainTooLarge {
                    points: rows[resident.start].len(),
                }
            })?;
            window.drain(0..n);
            resident.start += 1;
        }

        // 2. Pull rows up to the halo's top edge. Rows still entirely
        // below the halo were never needed (they precede the first
        // band); pull them into scratch to honor stream order, then
        // drop them without ever being resident.
        while resident.end < rows.len()
            && !tile.row_above_halo(row_outer_span(&rows[resident.end], dims))
        {
            let row = &rows[resident.end];
            let len = usize::try_from(row.len())
                .map_err(|_| EngineError::DomainTooLarge { points: row.len() })?;
            let pulled = if tile.row_below_halo(row_outer_span(row, dims)) {
                scratch.clear();
                source
                    .fill_row(len, &mut scratch)
                    .map_err(|detail| EngineError::Source { detail })?;
                resident.start = resident.end + 1;
                scratch.len()
            } else {
                let before = window.len();
                source
                    .fill_row(len, &mut window)
                    .map_err(|detail| EngineError::Source { detail })?;
                window.len() - before
            };
            if pulled != len {
                return Err(EngineError::Source {
                    detail: format!("source produced {pulled} of {len} requested values"),
                });
            }
            resident.end += 1;
            rows_in += 1;
            values_in += row.len();
        }

        gauge.observe(window.len() as u64);
        let widest = rows[resident.clone()]
            .iter()
            .map(Row::len)
            .max()
            .unwrap_or(0);
        resident_bound = resident_bound.max(resident.len() as u64 * widest);

        // 3. Execute the band through the shared sweep/fast/gather
        // executor.
        let band_idx = tile
            .iter_domain
            .index()
            .map_err(|e| EngineError::Plan(e.into()))?;
        let band_len = usize::try_from(tile.len)
            .map_err(|_| EngineError::DomainTooLarge { points: tile.len })?;
        out_buf.clear();
        out_buf.resize(band_len, 0.0);
        let win = RankWindow {
            idx: &in_idx,
            vals: &window,
            base: rows.get(resident.start).map_or(0, |r| r.base),
        };
        let band_rows = band_idx.rows();
        let workers = threads_for(worker_count, band_rows.len());
        let band_stats = if workers <= 1 {
            catch_unwind(AssertUnwindSafe(|| {
                execute_rows(band_rows, 0, &offsets, &win, kernel, &mut out_buf)
            }))
            .map_err(|_| EngineError::WorkerPanic)??
        } else {
            execute_band_parallel(band_rows, &offsets, &win, kernel, &mut out_buf, workers)?
        };
        stats.merge(band_stats);

        // 4. Push the band's finished rows before touching the source
        // again — sink and source stay at most one band apart.
        for row in band_rows {
            let start = usize::try_from(row.base)
                .map_err(|_| EngineError::DomainTooLarge { points: row.base })?;
            let len = usize::try_from(row.len())
                .map_err(|_| EngineError::DomainTooLarge { points: row.len() })?;
            let slice = out_buf
                .get(start..)
                .and_then(|s| s.get(..len))
                .ok_or_else(|| EngineError::InconsistentIndex {
                    detail: format!(
                        "band {} output row at {} exceeds the band buffer",
                        tile.id, row.prefix
                    ),
                })?;
            sink.push_row(slice)
                .map_err(|detail| EngineError::Sink { detail })?;
            rows_out += 1;
        }
    }

    Ok(StreamReport {
        outputs: tile_plan.total_outputs(),
        bands: tile_plan.tile_count(),
        threads: worker_count,
        backend,
        chunk_rows: config.chunk_rows.unwrap_or(0),
        rows_in,
        values_in,
        rows_out,
        peak_resident: gauge.get(),
        resident_bound,
        sweep_rows: stats.sweep,
        fast_rows: stats.fast,
        gather_rows: stats.gather,
        elapsed: started.elapsed(),
    })
}

/// Splits a band's iteration rows into contiguous per-worker chunks
/// writing disjoint slices of the band buffer.
fn execute_band_parallel<K: RowKernel>(
    band_rows: &[Row],
    offsets: &[Point],
    win: &RankWindow<'_>,
    kernel: &K,
    out: &mut [f64],
    workers: usize,
) -> Result<RowStats, EngineError> {
    // Chunk boundaries in row space; output slices follow row bases.
    let per = band_rows.len().div_ceil(workers);
    let mut chunks: Vec<(&[Row], &mut [f64])> = Vec::with_capacity(workers);
    let mut rest_rows = band_rows;
    let mut rest_out: &mut [f64] = out;
    let mut consumed = 0u64;
    while !rest_rows.is_empty() {
        let take = per.min(rest_rows.len());
        let (head, tail) = rest_rows.split_at(take);
        let chunk_vals: u64 = head.iter().map(Row::len).sum();
        let chunk_len = usize::try_from(chunk_vals)
            .map_err(|_| EngineError::DomainTooLarge { points: chunk_vals })?;
        if head.first().map(|r| r.base) != Some(consumed) || chunk_len > rest_out.len() {
            return Err(EngineError::InconsistentIndex {
                detail: "band iteration rows are not in contiguous rank order".into(),
            });
        }
        let (o_head, o_tail) = rest_out.split_at_mut(chunk_len);
        chunks.push((head, o_head));
        rest_rows = tail;
        rest_out = o_tail;
        consumed += chunk_vals;
    }

    let queue = Mutex::new(chunks);
    let results: Mutex<Vec<RowChunkResult>> = Mutex::new(Vec::with_capacity(workers));
    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let item = queue.lock().expect("queue lock").pop();
                let Some((rows, out)) = item else { break };
                let out_base = rows.first().map_or(0, |r| r.base);
                let r = execute_rows(rows, out_base, offsets, win, kernel, out);
                let failed = r.is_err();
                results.lock().expect("results lock").push(r);
                if failed {
                    break;
                }
            });
        }
    })
    .map_err(|_| EngineError::WorkerPanic)?;

    let mut stats = RowStats::default();
    for r in results.into_inner().expect("results lock") {
        stats.merge(r?);
    }
    Ok(stats)
}

type RowChunkResult = Result<RowStats, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_plan, EngineConfig};
    use crate::input::InputGrid;
    use stencil_core::StencilSpec;
    use stencil_kernels::KernelExpr;
    use stencil_polyhedral::Polyhedron;

    fn plan_5pt(rows: i64, cols: i64) -> MemorySystemPlan {
        let spec = StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, rows - 2), (1, cols - 2)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap();
        MemorySystemPlan::generate(&spec).unwrap()
    }

    fn ramp(len: u64) -> Vec<f64> {
        (0..len).map(|r| (r % 97) as f64 * 0.5 - 11.0).collect()
    }

    fn compute(w: &[f64]) -> f64 {
        w[2] + 0.25 * (w[0] + w[1] + w[3] + w[4] - 4.0 * w[2])
    }

    fn compiled_5pt() -> CompiledKernel {
        let [t0, t1, t2, t3, t4] = KernelExpr::taps::<5>();
        let expr = t2.clone() + 0.25 * (t0 + t1 + t3 + t4 - 4.0 * t2);
        CompiledKernel::compile_checked(&expr, 5, &compute).unwrap()
    }

    #[test]
    fn streaming_matches_in_core_at_every_chunk_size() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let reference = run_plan(&plan, &input, &compute, &EngineConfig::default())
            .unwrap()
            .outputs;
        for chunk in [1u64, 3, 18, 100] {
            for threads in [1usize, 3] {
                let mut source = SliceSource::new(&vals);
                let mut sink = VecSink::new();
                let report = run_streaming(
                    &plan,
                    &mut source,
                    &mut sink,
                    &compute,
                    &StreamConfig::new().chunk_rows(chunk).threads(threads),
                )
                .unwrap();
                assert_eq!(sink.values, reference, "chunk={chunk} threads={threads}");
                assert_eq!(report.outputs, 18 * 22);
                assert_eq!(report.backend, KernelBackend::Closure);
                assert_eq!(report.sweep_rows, 0);
                assert!(
                    report.within_residency_bound(),
                    "chunk={chunk}: peak {} > bound {}",
                    report.peak_resident,
                    report.resident_bound
                );
            }
        }
    }

    #[test]
    fn compiled_streaming_matches_closure_streaming_bit_exact() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let kernel = compiled_5pt();
        for chunk in [1u64, 3, 18] {
            for threads in [1usize, 3] {
                let mut source = SliceSource::new(&vals);
                let mut closure_sink = VecSink::new();
                run_streaming(
                    &plan,
                    &mut source,
                    &mut closure_sink,
                    &compute,
                    &StreamConfig::new().chunk_rows(chunk).threads(threads),
                )
                .unwrap();
                let mut source = SliceSource::new(&vals);
                let mut compiled_sink = VecSink::new();
                let report = run_streaming_compiled(
                    &plan,
                    &mut source,
                    &mut compiled_sink,
                    &kernel,
                    &StreamConfig::new().chunk_rows(chunk).threads(threads),
                )
                .unwrap();
                assert_eq!(
                    compiled_sink.values, closure_sink.values,
                    "chunk={chunk} threads={threads}"
                );
                assert_eq!(report.backend, KernelBackend::Compiled);
                // Rectangular grid: every output row sweeps.
                assert_eq!(report.sweep_rows, 18, "chunk={chunk} threads={threads}");
                assert_eq!(report.fast_rows, 0);
                assert_eq!(report.gather_rows, 0);
            }
        }
    }

    #[test]
    fn forced_closure_backend_interprets_without_sweeping() {
        let plan = plan_5pt(14, 14);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let kernel = compiled_5pt();
        let mut source = SliceSource::new(&vals);
        let mut sink = VecSink::new();
        let report = run_streaming_compiled(
            &plan,
            &mut source,
            &mut sink,
            &kernel,
            &StreamConfig::new()
                .chunk_rows(4)
                .backend(KernelBackend::Closure),
        )
        .unwrap();
        assert_eq!(report.backend, KernelBackend::Closure);
        assert_eq!(report.sweep_rows, 0);
        assert_eq!(report.fast_rows, 12);
        let mut source = SliceSource::new(&vals);
        let mut swept = VecSink::new();
        run_streaming_compiled(
            &plan,
            &mut source,
            &mut swept,
            &kernel,
            &StreamConfig::new().chunk_rows(4),
        )
        .unwrap();
        assert_eq!(sink.values, swept.values);
    }

    #[test]
    fn mismatched_kernel_window_is_rejected() {
        let plan = plan_5pt(12, 12);
        let kernel = CompiledKernel::compile(&KernelExpr::window_sum(3), 3).unwrap();
        let mut source = SliceSource::new(&[]);
        let mut sink = VecSink::new();
        let e = run_streaming_compiled(
            &plan,
            &mut source,
            &mut sink,
            &kernel,
            &StreamConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(e, EngineError::KernelCompile { .. }), "{e}");
    }

    #[test]
    fn deprecated_with_chunk_rows_still_builds_the_same_config() {
        #[allow(deprecated)]
        let old = StreamConfig::with_chunk_rows(6).threads(3);
        let new = StreamConfig::new().chunk_rows(6).threads(3);
        assert_eq!(old.chunk_rows, new.chunk_rows);
        assert_eq!(old.threads, new.threads);
        assert_eq!(old.backend, new.backend);
    }

    #[test]
    fn residency_stays_at_one_halo_window() {
        // 18 output rows in 1-row bands: halo = 3 input rows of 24.
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let mut source = SliceSource::new(&vals);
        let mut sink = VecSink::new();
        let report = run_streaming(
            &plan,
            &mut source,
            &mut sink,
            &compute,
            &StreamConfig::new().chunk_rows(1),
        )
        .unwrap();
        assert_eq!(report.peak_resident, 3 * 24);
        assert_eq!(report.resident_bound, 3 * 24);
        assert_eq!(report.bands, 18);
        // Every input value crosses the window exactly once.
        assert_eq!(report.values_in, in_idx.len());
        assert_eq!(report.rows_in, 20);
        assert_eq!(report.rows_out, 18);
    }

    #[test]
    fn generated_source_never_materializes_input() {
        let plan = plan_5pt(30, 16);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let reference = run_plan(&plan, &input, &compute, &EngineConfig::default())
            .unwrap()
            .outputs;
        let mut source = FnSource::new(|r| (r % 97) as f64 * 0.5 - 11.0);
        let mut sink = VecSink::new();
        run_streaming(
            &plan,
            &mut source,
            &mut sink,
            &compute,
            &StreamConfig::new().chunk_rows(4),
        )
        .unwrap();
        assert_eq!(sink.values, reference);
    }

    #[test]
    fn read_source_and_write_sink_round_trip_bytes() {
        let plan = plan_5pt(12, 12);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut source = ReadSource::new(&bytes[..]);
        let mut sink = WriteSink::new(Vec::<u8>::new());
        run_streaming(
            &plan,
            &mut source,
            &mut sink,
            &compute,
            &StreamConfig::default(),
        )
        .unwrap();
        let out_bytes = sink.into_inner();
        let streamed: Vec<f64> = out_bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let reference = run_plan(&plan, &input, &compute, &EngineConfig::default())
            .unwrap()
            .outputs;
        assert_eq!(streamed, reference);
    }

    #[test]
    fn exhausted_source_is_an_error_not_a_panic() {
        let plan = plan_5pt(12, 12);
        let short = ramp(10);
        let mut source = SliceSource::new(&short);
        let mut sink = VecSink::new();
        let e = run_streaming(
            &plan,
            &mut source,
            &mut sink,
            &compute,
            &StreamConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(e, EngineError::Source { .. }), "{e}");
    }

    #[test]
    fn failing_sink_is_an_error_not_a_panic() {
        struct FullSink;
        impl RowSink for FullSink {
            fn push_row(&mut self, _row: &[f64]) -> Result<(), String> {
                Err("disk full".into())
            }
        }
        let plan = plan_5pt(12, 12);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let mut source = SliceSource::new(&vals);
        let e = run_streaming(
            &plan,
            &mut source,
            &mut FullSink,
            &compute,
            &StreamConfig::default(),
        )
        .unwrap_err();
        assert_eq!(
            e,
            EngineError::Sink {
                detail: "disk full".into()
            }
        );
    }

    #[test]
    fn compute_panic_is_reported_single_and_multi_thread() {
        let plan = plan_5pt(14, 14);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let boom = |_: &[f64]| -> f64 { panic!("datapath bug") };
        for threads in [1usize, 4] {
            let mut source = SliceSource::new(&vals);
            let mut sink = VecSink::new();
            let e = run_streaming(
                &plan,
                &mut source,
                &mut sink,
                &boom,
                &StreamConfig::new().chunk_rows(6).threads(threads),
            )
            .unwrap_err();
            assert_eq!(e, EngineError::WorkerPanic, "threads={threads}");
        }
    }

    #[test]
    fn one_dimensional_stream() {
        let spec = StencilSpec::new(
            "blur1d",
            Polyhedron::rect(&[(1, 40)]),
            vec![Point::new(&[-1]), Point::new(&[0]), Point::new(&[1])],
        )
        .unwrap();
        let plan = MemorySystemPlan::generate(&spec).unwrap();
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let blur = |w: &[f64]| (w[0] + w[1] + w[2]) / 3.0;
        let reference = run_plan(&plan, &input, &blur, &EngineConfig::default())
            .unwrap()
            .outputs;
        let mut source = SliceSource::new(&vals);
        let mut sink = VecSink::new();
        let report = run_streaming(
            &plan,
            &mut source,
            &mut sink,
            &blur,
            &StreamConfig::new().chunk_rows(8),
        )
        .unwrap();
        assert_eq!(sink.values, reference);
        // A 1D domain is one index row: the whole grid is the window.
        assert_eq!(report.peak_resident, in_idx.len());
        assert!(report.within_residency_bound());
    }
}
