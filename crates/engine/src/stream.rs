//! Streaming endpoints: the row sources and sinks the unified
//! [`crate::Session`] layer pulls from and pushes to out of core.
//!
//! The in-core modes hold the whole input and output grids in RAM, so
//! domain size and memory footprint are coupled. The paper's central
//! observation (Sec. 2.3) is that a stencil only ever needs the *reuse
//! window* — the data between the first and last use of an element —
//! resident at once. Streaming is the software form of that bound:
//!
//! * a [`RowSource`] delivers input values in lexicographic stream
//!   order, one input index row per pull — the same order the
//!   accelerator's off-chip interface consumes;
//! * the session's stage machine ([`crate::ExecMode::Streaming`]) walks
//!   the bands of a [`stencil_core::TilePlan`] in rank order, keeping
//!   exactly the rows of the current band's `halo_band` resident
//!   (evicting before pulling, so peak residency never exceeds one
//!   band's halo: `halo rows × widest row`);
//! * finished bands execute through the same sweep/fast/gather row
//!   executor as the in-core path and push their output rows to a
//!   [`RowSink`] before the next band's rows are pulled — the sink and
//!   source are therefore never more than one band apart (bounded
//!   backpressure);
//! * a source backed by an `.sgrid` file ([`MmapSource`]) can skip the
//!   pull/copy cycle entirely: it advertises the whole payload as a
//!   [`MappedGrid`] and the stage machine executes bands as slices of
//!   the mapped pages — zero parse, zero copy.
//!
//! Residency is telemetry-tracked with a [`stencil_telemetry::HighWater`]
//! gauge; the report's `peak_resident` and its planned `resident_bound`
//! feed the validator rule `peak_resident <= resident_bound`.

use std::path::Path;

use memmap2::MmapMut;

use crate::error::EngineError;
use crate::format::{GridFormatError, GridHeader, MappedGrid};

/// Supplies input values in lexicographic stream order.
///
/// [`crate::Session::run_streaming`] pulls one input index row per
/// call, in row order; rows before the first band's halo are pulled and
/// discarded (the stream has no seek), rows after the last band's halo
/// are never pulled. A source therefore needs no random access — a
/// growing file, a generator, or a network stream all fit.
pub trait RowSource {
    /// Appends the next `len` values of the input stream to `buf`.
    ///
    /// # Errors
    ///
    /// A typed [`EngineError`] describing why the row could not be
    /// produced (exhausted stream, truncated input, I/O failure, ...).
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), EngineError>;

    /// The whole input as one contiguous mapped payload, when this
    /// source is backed by memory-mapped storage. The streaming stage
    /// machine uses this to execute bands as slices of the mapping
    /// instead of pulling row copies through [`fill_row`].
    ///
    /// The default (`None`) keeps plain sources on the copying path.
    ///
    /// [`fill_row`]: RowSource::fill_row
    fn mapped(&self) -> Option<MappedGrid> {
        None
    }
}

/// Receives finished output rows in lexicographic stream order.
pub trait RowSink {
    /// Consumes the next output row.
    ///
    /// # Errors
    ///
    /// A typed [`EngineError`] describing why the row was rejected.
    fn push_row(&mut self, row: &[f64]) -> Result<(), EngineError>;

    /// Finalizes the sink after the last row: flush buffered bytes,
    /// sync mapped pages, verify completeness. The streaming endpoints
    /// call this exactly once at end-of-run; the default is a no-op for
    /// sinks with nothing buffered.
    ///
    /// # Errors
    ///
    /// A typed [`EngineError`] when finalization fails — a failed flush
    /// here means tail rows were lost, so it must not be ignored.
    fn finish(&mut self) -> Result<(), EngineError> {
        Ok(())
    }
}

impl<S: RowSource + ?Sized> RowSource for Box<S> {
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), EngineError> {
        (**self).fill_row(len, buf)
    }

    fn mapped(&self) -> Option<MappedGrid> {
        (**self).mapped()
    }
}

impl<S: RowSink + ?Sized> RowSink for Box<S> {
    fn push_row(&mut self, row: &[f64]) -> Result<(), EngineError> {
        (**self).push_row(row)
    }

    fn finish(&mut self) -> Result<(), EngineError> {
        (**self).finish()
    }
}

/// A [`RowSource`] over an in-memory slice in rank order — the
/// streaming equivalent of [`crate::InputGrid`]'s value buffer.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    vals: &'a [f64],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Streams `vals` front to back.
    #[must_use]
    pub fn new(vals: &'a [f64]) -> Self {
        Self { vals, pos: 0 }
    }
}

impl RowSource for SliceSource<'_> {
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), EngineError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.vals.len());
        let Some(end) = end else {
            return Err(EngineError::Source {
                detail: format!(
                    "slice exhausted: {len} values requested at position {} of {}",
                    self.pos,
                    self.vals.len()
                ),
            });
        };
        buf.extend_from_slice(&self.vals[self.pos..end]);
        self.pos = end;
        Ok(())
    }
}

/// A [`RowSource`] that generates each value from its stream rank — an
/// out-of-core input that never exists in memory at full size.
pub struct FnSource<F> {
    gen: F,
    next_rank: u64,
}

impl<F: FnMut(u64) -> f64> FnSource<F> {
    /// Generates the value of rank `r` as `gen(r)`.
    pub fn new(gen: F) -> Self {
        Self { gen, next_rank: 0 }
    }
}

impl<F> std::fmt::Debug for FnSource<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSource")
            .field("next_rank", &self.next_rank)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(u64) -> f64> RowSource for FnSource<F> {
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), EngineError> {
        buf.reserve(len);
        for _ in 0..len {
            buf.push((self.gen)(self.next_rank));
            self.next_rank += 1;
        }
        Ok(())
    }
}

/// A file-backed [`RowSource`]: reads consecutive little-endian `f64`
/// values from any [`std::io::Read`].
///
/// Each pull issues (at most a handful of) bulk reads for the whole
/// row's bytes and decodes in place — one syscall per row against a raw
/// [`std::fs::File`], not one per value. A stream that ends mid-row
/// surfaces as [`EngineError::TruncatedInput`] with the partial-value
/// byte count, so a torn file is distinguishable from a short one.
#[derive(Debug)]
pub struct ReadSource<R> {
    reader: R,
    scratch: Vec<u8>,
}

impl<R: std::io::Read> ReadSource<R> {
    /// Streams little-endian `f64` values from `reader`.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            scratch: Vec::new(),
        }
    }
}

impl<R: std::io::Read> RowSource for ReadSource<R> {
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), EngineError> {
        let need = len
            .checked_mul(8)
            .ok_or(EngineError::DomainTooLarge { points: len as u64 })?;
        self.scratch.clear();
        self.scratch.resize(need, 0);
        let mut got = 0;
        while got < need {
            match self.reader.read(&mut self.scratch[got..]) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(EngineError::Source {
                        detail: format!("read failed at byte {got} of {need}: {e}"),
                    })
                }
            }
        }
        if got < need {
            return Err(EngineError::TruncatedInput {
                values_expected: len,
                values_got: got / 8,
                trailing_bytes: got % 8,
            });
        }
        buf.reserve(len);
        for chunk in self.scratch.chunks_exact(8) {
            buf.push(f64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        Ok(())
    }
}

/// A [`RowSink`] that collects every output row into one vector —
/// useful for tests and for comparing against in-core runs.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// All received values, in arrival (= rank) order.
    pub values: Vec<f64>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl RowSink for VecSink {
    fn push_row(&mut self, row: &[f64]) -> Result<(), EngineError> {
        self.values.extend_from_slice(row);
        Ok(())
    }
}

/// A file-backed [`RowSink`]: writes consecutive little-endian `f64`
/// values to any [`std::io::Write`].
///
/// Each row is encoded into a reusable byte buffer and written with one
/// `write_all`; [`finish`](RowSink::finish) flushes the writer, so tail
/// rows buffered by a [`std::io::BufWriter`] reach the file without the
/// caller having to remember [`into_inner`](WriteSink::into_inner).
#[derive(Debug)]
pub struct WriteSink<W> {
    writer: W,
    scratch: Vec<u8>,
}

impl<W: std::io::Write> WriteSink<W> {
    /// Streams little-endian `f64` values to `writer`.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            scratch: Vec::new(),
        }
    }

    /// Unwraps the writer (e.g. to inspect it). Prefer letting the
    /// streaming run call [`RowSink::finish`] for flushing.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: std::io::Write> RowSink for WriteSink<W> {
    fn push_row(&mut self, row: &[f64]) -> Result<(), EngineError> {
        self.scratch.clear();
        self.scratch.reserve(row.len() * 8);
        for v in row {
            self.scratch.extend_from_slice(&v.to_le_bytes());
        }
        self.writer
            .write_all(&self.scratch)
            .map_err(|e| EngineError::Sink {
                detail: format!("write failed: {e}"),
            })
    }

    fn finish(&mut self) -> Result<(), EngineError> {
        self.writer.flush().map_err(|e| EngineError::Sink {
            detail: format!("flush failed: {e}"),
        })
    }
}

/// A [`RowSource`] over a memory-mapped `.sgrid` file.
///
/// `fill_row` copies out of the mapping (the fallback for non-streaming
/// consumers), but the streaming stage machine asks
/// [`mapped`](RowSource::mapped) first and, finding the whole payload
/// resident, executes bands directly over the mapped pages — the
/// zero-copy fast path the format exists for.
#[derive(Debug, Clone)]
pub struct MmapSource {
    grid: MappedGrid,
    pos: usize,
}

impl MmapSource {
    /// Opens and maps `path`, validating the `.sgrid` header.
    ///
    /// # Errors
    ///
    /// [`EngineError::GridFormat`] for a missing or malformed file.
    pub fn open(path: &Path) -> Result<MmapSource, EngineError> {
        Ok(Self::from_grid(MappedGrid::open(path)?))
    }

    /// Wraps an already-opened mapping.
    #[must_use]
    pub fn from_grid(grid: MappedGrid) -> MmapSource {
        MmapSource { grid, pos: 0 }
    }

    /// The underlying mapping.
    #[must_use]
    pub fn grid(&self) -> &MappedGrid {
        &self.grid
    }
}

impl RowSource for MmapSource {
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), EngineError> {
        let vals = self.grid.values();
        let end = self.pos.checked_add(len).filter(|&e| e <= vals.len());
        let Some(end) = end else {
            return Err(EngineError::TruncatedInput {
                values_expected: len,
                values_got: vals.len().saturating_sub(self.pos),
                trailing_bytes: 0,
            });
        };
        buf.extend_from_slice(&vals[self.pos..end]);
        self.pos = end;
        Ok(())
    }

    fn mapped(&self) -> Option<MappedGrid> {
        Some(self.grid.clone())
    }
}

/// A [`RowSink`] writing an `.sgrid` file through a shared writable
/// mapping: the file is sized up front from the output extents, the
/// header written once, and each pushed row stored directly into the
/// mapped payload. [`finish`](RowSink::finish) verifies every declared
/// value arrived and syncs the pages to disk.
#[derive(Debug)]
pub struct MmapSink {
    map: MmapMut,
    header: GridHeader,
    /// Values written so far (= payload write cursor / 8).
    cursor: u64,
}

impl MmapSink {
    /// Creates (truncating) `path` as an `.sgrid` file of the given
    /// extents, sized for the full payload and ready to receive rows.
    ///
    /// # Errors
    ///
    /// [`EngineError::GridFormat`] for invalid extents, a payload too
    /// large to map on this target, or filesystem failures.
    pub fn create(path: &Path, extents: &[u64]) -> Result<MmapSink, EngineError> {
        let header = GridHeader::new(extents).map_err(EngineError::GridFormat)?;
        let file_len = header.payload_offset() as u64 + header.payload_bytes();
        usize::try_from(file_len)
            .map_err(|_| EngineError::GridFormat(GridFormatError::ExtentOverflow))?;
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| EngineError::GridFormat(e.into()))?;
        file.set_len(file_len)
            .map_err(|e| EngineError::GridFormat(e.into()))?;
        let mut map = MmapMut::map_mut(&file).map_err(|e| EngineError::GridFormat(e.into()))?;
        let encoded = header.encode();
        map[..encoded.len()].copy_from_slice(&encoded);
        Ok(MmapSink {
            map,
            header,
            cursor: 0,
        })
    }

    /// The declared output header.
    #[must_use]
    pub fn header(&self) -> &GridHeader {
        &self.header
    }
}

impl RowSink for MmapSink {
    fn push_row(&mut self, row: &[f64]) -> Result<(), EngineError> {
        let end = self
            .cursor
            .checked_add(row.len() as u64)
            .filter(|&e| e <= self.header.elements());
        let Some(end) = end else {
            return Err(EngineError::Sink {
                detail: format!(
                    "row of {} values overflows the declared {}-element grid at value {}",
                    row.len(),
                    self.header.elements(),
                    self.cursor
                ),
            });
        };
        let offset = self.header.payload_offset()
            + usize::try_from(self.cursor * 8).expect("file length fits usize (checked at create)");
        let bytes = &mut self.map[offset..offset + row.len() * 8];
        for (slot, v) in bytes.chunks_exact_mut(8).zip(row) {
            slot.copy_from_slice(&v.to_le_bytes());
        }
        self.cursor = end;
        Ok(())
    }

    fn finish(&mut self) -> Result<(), EngineError> {
        if self.cursor != self.header.elements() {
            return Err(EngineError::Sink {
                detail: format!(
                    "finalized with {} of {} declared values written",
                    self.cursor,
                    self.header.elements()
                ),
            });
        }
        self.map.flush().map_err(|e| EngineError::Sink {
            detail: format!("msync failed: {e}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("stream_{name}_{}.sgrid", std::process::id()))
    }

    #[test]
    fn slice_source_reports_exhaustion() {
        let vals = [1.0, 2.0];
        let mut s = SliceSource::new(&vals);
        let mut buf = Vec::new();
        s.fill_row(2, &mut buf).unwrap();
        assert_eq!(buf, vals);
        let e = s.fill_row(1, &mut buf).unwrap_err();
        assert!(e.to_string().contains("slice exhausted"), "{e}");
    }

    #[test]
    fn read_source_and_write_sink_round_trip_values() {
        let vals = [3.5f64, -2.25, 0.125];
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut source = ReadSource::new(&bytes[..]);
        let mut buf = Vec::new();
        source.fill_row(3, &mut buf).unwrap();
        assert_eq!(buf, vals);
        let mut sink = WriteSink::new(Vec::<u8>::new());
        sink.push_row(&vals).unwrap();
        sink.finish().unwrap();
        assert_eq!(sink.into_inner(), bytes);
    }

    #[test]
    fn read_source_types_truncation_with_partial_value_bytes() {
        let vals = [1.0f64, 2.0, 3.0];
        let mut bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        bytes.truncate(21); // 2 whole values + 5 bytes of the third
        let mut source = ReadSource::new(&bytes[..]);
        let mut buf = Vec::new();
        let err = source.fill_row(3, &mut buf).unwrap_err();
        assert_eq!(
            err,
            EngineError::TruncatedInput {
                values_expected: 3,
                values_got: 2,
                trailing_bytes: 5,
            }
        );
        assert!(buf.is_empty(), "no values delivered from a torn row");
    }

    #[test]
    fn write_sink_finish_flushes_a_bufwriter() {
        let p = temp("flush");
        {
            let file = std::fs::File::create(&p).unwrap();
            let mut sink = WriteSink::new(std::io::BufWriter::new(file));
            sink.push_row(&[42.0, -1.0]).unwrap();
            sink.finish().unwrap();
            // Read while the BufWriter is still alive: finish() must
            // already have flushed, not rely on Drop.
            let on_disk = std::fs::read(&p).unwrap();
            assert_eq!(on_disk.len(), 16);
            assert_eq!(&on_disk[..8], &42.0f64.to_le_bytes());
        }
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn mmap_source_reads_and_advertises_the_mapping() {
        let p = temp("mmsrc");
        let vals: Vec<f64> = (0..12).map(f64::from).collect();
        crate::format::pack_grid(&p, &[3, 4], &vals).unwrap();
        let mut src = MmapSource::open(&p).unwrap();
        assert_eq!(src.grid().header().extents(), &[3, 4]);
        assert_eq!(src.mapped().unwrap().values(), &vals[..]);
        let mut buf = Vec::new();
        src.fill_row(4, &mut buf).unwrap();
        src.fill_row(8, &mut buf).unwrap();
        assert_eq!(buf, vals);
        let err = src.fill_row(1, &mut buf).unwrap_err();
        assert!(matches!(err, EngineError::TruncatedInput { .. }));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn mmap_sink_round_trips_and_rejects_incomplete_finish() {
        let p = temp("mmsink");
        let mut sink = MmapSink::create(&p, &[2, 3]).unwrap();
        sink.push_row(&[1.0, 2.0, 3.0]).unwrap();
        let err = sink.finish().unwrap_err();
        assert!(err.to_string().contains("3 of 6"), "{err}");
        sink.push_row(&[4.0, 5.0, 6.0]).unwrap();
        sink.finish().unwrap();
        let overflow = sink.push_row(&[7.0]).unwrap_err();
        assert!(overflow.to_string().contains("overflows"), "{overflow}");
        drop(sink);
        let grid = MappedGrid::open(&p).unwrap();
        assert_eq!(grid.values(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let _ = std::fs::remove_file(&p);
    }
}
