//! Unrolled multi-output compilation: one program body produces `U`
//! adjacent output rows per dispatch.
//!
//! The single-output sweep ([`CompiledKernel::sweep`]) reloads every
//! tap for every output row even though vertically adjacent rows share
//! most of their stencil windows — DENOISE's north tap of row `r+1` is
//! the center tap of row `r`. This module removes that redundancy the
//! way the paper's non-uniform reuse buffers do in hardware, by
//! *binding* coinciding taps once per group:
//!
//! * **shared-tap slots** — for output positions `u in 0..U` (adjacent
//!   in the next-to-innermost dimension, the one iteration rows step
//!   through), tap `k` of output `u` reads offset `offsets[k] + u·e`.
//!   Taps whose shifted offsets coincide are deduplicated into one
//!   *utap* loaded exactly once per lane chunk;
//! * **cross-output CSE** — each output's folded expression is remapped
//!   onto utap ids and interned into one shared hash-consing arena, so
//!   subexpressions common to several outputs (SOBEL's column sums)
//!   evaluate once per group;
//! * **register form** — the group body is emitted as a register
//!   machine ([`RegOp`]) instead of stack bytecode: every DAG node gets
//!   an SSA register, so a shared value is reused by naming its
//!   register — no `Store`/`Load` traffic and no slot limit. Mul-add
//!   fusion keeps the stack machine's rule (singly-used products only)
//!   and its two-rounding semantics, so f64 results stay bit-identical
//!   to the closure.
//!
//! The interpreter is generic over the lane type: [`Datapath::F64`]
//! keeps the bit-exact reference semantics, [`Datapath::F32`] narrows
//! constants and taps to single precision (grids stay `f64` in memory)
//! and doubles the arithmetic lanes per vector op.
//!
//! Construction replays the register program against the scalar
//! bytecode on synthetic windows (the same discipline as
//! [`CompiledKernel::compile_checked`]) and rejects any divergence, so
//! a mis-emitted program fails loudly before producing output.

use std::collections::HashMap;

use stencil_kernels::KernelExpr;
use stencil_polyhedral::Point;

use crate::compile::{Arena, CompiledKernel, Datapath, Node, LANES};
use crate::error::EngineError;

/// The default unroll factor of the compiled sweep, picked empirically
/// from {2, 4, 8} the way [`LANES`] was: on DENOISE 768×1024 in-core,
/// U=4 cuts tap loads from 5 to 3.5 per output and op dispatches by
/// ~25%, beating U=2 (less sharing) and U=8 (marginal extra sharing,
/// larger register file working set) — see EXPERIMENTS.md.
pub const DEFAULT_UNROLL: usize = 4;

/// Upper bound on the accepted unroll factor — beyond this the
/// register file outgrows cache long before sharing pays.
const MAX_UNROLL: usize = 16;

/// Rejects unroll factors outside `1..=MAX_UNROLL`. Shared by
/// [`UnrolledProgram::build`] and the session builder so the closure
/// backend (which never constructs a program) still surfaces a bad
/// knob instead of silently running single-row.
pub(crate) fn check_unroll(unroll: usize) -> Result<(), EngineError> {
    if unroll == 0 || unroll > MAX_UNROLL {
        return Err(EngineError::Config {
            detail: format!("unroll must be in 1..={MAX_UNROLL}, got {unroll}"),
        });
    }
    Ok(())
}

/// Arithmetic lane abstraction: the register interpreter is written
/// once and monomorphized per [`Datapath`]. Grids stay `f64`, so lanes
/// narrow on load and widen on store.
pub(crate) trait Lane:
    Copy
    + PartialEq
    + Send
    + Sync
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
{
    const ZERO: Self;
    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn lane_sqrt(self) -> Self;
    fn lane_abs(self) -> Self;
}

impl Lane for f64 {
    const ZERO: Self = 0.0;
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn lane_sqrt(self) -> Self {
        self.sqrt()
    }
    #[inline(always)]
    fn lane_abs(self) -> Self {
        self.abs()
    }
}

impl Lane for f32 {
    const ZERO: Self = 0.0;
    // The narrowing cast is the entire point of this datapath.
    #[allow(clippy::cast_possible_truncation)]
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline(always)]
    fn lane_sqrt(self) -> Self {
        self.sqrt()
    }
    #[inline(always)]
    fn lane_abs(self) -> Self {
        self.abs()
    }
}

/// One register operation. Registers are SSA: `dst` is always a fresh
/// register greater than every operand, so the interpreter can split
/// the register file at `dst` without aliasing.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RegOp {
    Add {
        dst: u16,
        a: u16,
        b: u16,
    },
    Sub {
        dst: u16,
        a: u16,
        b: u16,
    },
    Mul {
        dst: u16,
        a: u16,
        b: u16,
    },
    Div {
        dst: u16,
        a: u16,
        b: u16,
    },
    Sqrt {
        dst: u16,
        a: u16,
    },
    Abs {
        dst: u16,
        a: u16,
    },
    /// `dst = c + a * b`, rounding the product and the sum separately
    /// (dispatch fusion, never a contracted FMA).
    MulAdd {
        dst: u16,
        a: u16,
        b: u16,
        c: u16,
    },
}

/// A register program producing `roots.len()` outputs per column from
/// `utaps.len()` deduplicated tap loads. Register layout:
/// `[0, utaps.len())` tap loads, then constants, then op results.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RegProgram {
    /// Representative `(output position, tap index)` per distinct
    /// shared tap — the executor derives each utap's input base rank
    /// from this pair.
    utaps: Vec<(u16, u16)>,
    /// Distinct literal values, preloaded once per sweep call.
    consts: Vec<f64>,
    ops: Vec<RegOp>,
    /// Result register of each output position.
    roots: Vec<u16>,
    /// Total registers (taps + consts + op results).
    regs: usize,
}

/// Remaps every tap index of `e` through `map` (tap `k` of one output
/// position becomes the group-wide utap id `map[k]`).
fn remap_taps(e: &KernelExpr, map: &[usize]) -> KernelExpr {
    match e {
        KernelExpr::Tap(k) => KernelExpr::tap(map[*k]),
        KernelExpr::Const(c) => KernelExpr::constant(*c),
        KernelExpr::Add(a, b) => remap_taps(a, map) + remap_taps(b, map),
        KernelExpr::Sub(a, b) => remap_taps(a, map) - remap_taps(b, map),
        KernelExpr::Mul(a, b) => remap_taps(a, map) * remap_taps(b, map),
        KernelExpr::Div(a, b) => remap_taps(a, map) / remap_taps(b, map),
        KernelExpr::Sqrt(a) => remap_taps(a, map).sqrt(),
        KernelExpr::Abs(a) => remap_taps(a, map).abs(),
        KernelExpr::MulAdd(a, b, c) => {
            remap_taps(a, map).mul_add(remap_taps(b, map), remap_taps(c, map))
        }
    }
}

/// Register emission over the shared DAG: nodes are memoized, so a
/// subtree shared across output positions is computed once and its
/// register reused.
struct RegEmitter<'a> {
    arena: &'a Arena,
    counts: &'a [usize],
    const_reg: &'a HashMap<u64, u16>,
    reg_of: Vec<Option<u16>>,
    next: usize,
    ops: Vec<RegOp>,
}

impl RegEmitter<'_> {
    /// Same fusion rule as the stack emitter: only a product consumed
    /// exactly once may fuse into its parent addition — a shared
    /// product must materialize so every consumer reads one value.
    fn fusible_mul(&self, id: usize) -> Option<(usize, usize)> {
        match self.arena.nodes[id] {
            Node::Mul(a, b) if self.counts[id] == 1 => Some((a, b)),
            _ => None,
        }
    }

    fn fresh(&mut self) -> u16 {
        let r = u16::try_from(self.next).expect("register budget validated before emission");
        self.next += 1;
        r
    }

    fn emit(&mut self, id: usize) -> u16 {
        if let Some(r) = self.reg_of[id] {
            return r;
        }
        let r = match self.arena.nodes[id] {
            Node::Tap(u) => u16::try_from(u).expect("utap ids fit the register budget"),
            Node::Const(bits) => self.const_reg[&bits],
            Node::Add(a, b) => {
                // Addition commutes bit-exactly in IEEE-754, so either
                // operand's product may take the fused slot.
                if let Some((x, y)) = self.fusible_mul(b) {
                    self.emit_mul_add(a, x, y)
                } else if let Some((x, y)) = self.fusible_mul(a) {
                    self.emit_mul_add(b, x, y)
                } else {
                    let (ra, rb) = (self.emit(a), self.emit(b));
                    let dst = self.fresh();
                    self.ops.push(RegOp::Add { dst, a: ra, b: rb });
                    dst
                }
            }
            Node::Sub(a, b) => {
                let (ra, rb) = (self.emit(a), self.emit(b));
                let dst = self.fresh();
                self.ops.push(RegOp::Sub { dst, a: ra, b: rb });
                dst
            }
            Node::Mul(a, b) => {
                let (ra, rb) = (self.emit(a), self.emit(b));
                let dst = self.fresh();
                self.ops.push(RegOp::Mul { dst, a: ra, b: rb });
                dst
            }
            Node::Div(a, b) => {
                let (ra, rb) = (self.emit(a), self.emit(b));
                let dst = self.fresh();
                self.ops.push(RegOp::Div { dst, a: ra, b: rb });
                dst
            }
            Node::Sqrt(a) => {
                let ra = self.emit(a);
                let dst = self.fresh();
                self.ops.push(RegOp::Sqrt { dst, a: ra });
                dst
            }
            Node::Abs(a) => {
                let ra = self.emit(a);
                let dst = self.fresh();
                self.ops.push(RegOp::Abs { dst, a: ra });
                dst
            }
            Node::MulAdd(a, b, c) => {
                let rc = self.emit(c);
                self.emit_mul_add_regs(a, b, rc)
            }
        };
        self.reg_of[id] = Some(r);
        r
    }

    fn emit_mul_add(&mut self, acc: usize, x: usize, y: usize) -> u16 {
        let rc = self.emit(acc);
        self.emit_mul_add_regs(x, y, rc)
    }

    fn emit_mul_add_regs(&mut self, x: usize, y: usize, rc: u16) -> u16 {
        let (rx, ry) = (self.emit(x), self.emit(y));
        let dst = self.fresh();
        self.ops.push(RegOp::MulAdd {
            dst,
            a: rx,
            b: ry,
            c: rc,
        });
        dst
    }
}

impl RegProgram {
    /// Lowers `ck`'s folded expression to a `unroll`-output register
    /// program over `offsets`. Returns the program plus the utap table
    /// (`table[u][k]` = utap id read by tap `k` of output `u`), which
    /// validation and tests use to reconstruct per-output windows.
    ///
    /// The caller guarantees `unroll == 1` for windows with fewer than
    /// two dimensions (there is no adjacent-row axis to unroll along).
    pub(crate) fn build(
        ck: &CompiledKernel,
        offsets: &[Point],
        unroll: usize,
    ) -> Result<(Self, Vec<Vec<usize>>), EngineError> {
        let dims = offsets.first().map_or(0, Point::dims);
        debug_assert!(unroll == 1 || dims >= 2);
        // The unroll axis: iteration rows span the innermost dimension,
        // so adjacent rows step the next-to-innermost coordinate.
        let axis = dims.checked_sub(2);

        // Deduplicate taps across output positions by shifted offset.
        let mut key_ids: HashMap<Point, usize> = HashMap::new();
        let mut utaps: Vec<(u16, u16)> = Vec::new();
        let mut table = vec![vec![0usize; offsets.len()]; unroll];
        for (u, row) in table.iter_mut().enumerate() {
            for (k, f) in offsets.iter().enumerate() {
                let mut coords: Vec<i64> = (0..dims).map(|d| f[d]).collect();
                if let (Some(axis), true) = (axis, unroll > 1) {
                    coords[axis] += i64::try_from(u).expect("unroll fits i64");
                }
                let key = Point::new(&coords);
                let id = *key_ids.entry(key).or_insert_with(|| {
                    utaps.push((
                        u16::try_from(u).expect("unroll fits u16"),
                        u16::try_from(k).expect("tap count validated at compile"),
                    ));
                    utaps.len() - 1
                });
                row[k] = id;
            }
        }

        // One shared arena across all output expressions: subtrees
        // common to several outputs intern to the same id.
        let mut arena = Arena::default();
        let mut root_ids = Vec::with_capacity(unroll);
        for row in &table {
            let remapped = remap_taps(ck.folded_expr(), row);
            root_ids.push(arena.intern_expr(&remapped));
        }
        let counts = arena.use_counts_multi(&root_ids);

        // Constant registers, one per distinct bit pattern.
        let mut const_reg: HashMap<u64, u16> = HashMap::new();
        let mut consts: Vec<f64> = Vec::new();
        for node in &arena.nodes {
            if let Node::Const(bits) = *node {
                if let std::collections::hash_map::Entry::Vacant(e) = const_reg.entry(bits) {
                    e.insert(0); // placeholder, assigned below
                    consts.push(f64::from_bits(bits));
                }
            }
        }
        if utaps.len() + consts.len() + arena.nodes.len() > usize::from(u16::MAX) {
            return Err(EngineError::KernelCompile {
                detail: format!(
                    "unroll-by-{unroll} program needs more than {} registers",
                    u16::MAX
                ),
            });
        }
        for (j, c) in consts.iter().enumerate() {
            const_reg.insert(
                c.to_bits(),
                u16::try_from(utaps.len() + j).expect("checked above"),
            );
        }

        // Taps intern as Node::Tap(utap id); their register IS the id.
        let mut emitter = RegEmitter {
            arena: &arena,
            counts: &counts,
            const_reg: &const_reg,
            reg_of: vec![None; arena.nodes.len()],
            next: utaps.len() + consts.len(),
            ops: Vec::new(),
        };
        let roots: Vec<u16> = root_ids.iter().map(|&id| emitter.emit(id)).collect();

        let program = RegProgram {
            utaps,
            consts,
            ops: emitter.ops,
            roots,
            regs: emitter.next,
        };
        debug_assert!(program.ssa_well_formed());
        Ok((program, table))
    }

    /// SSA sanity: every operand register precedes its destination.
    fn ssa_well_formed(&self) -> bool {
        self.ops.iter().all(|op| match *op {
            RegOp::Add { dst, a, b }
            | RegOp::Sub { dst, a, b }
            | RegOp::Mul { dst, a, b }
            | RegOp::Div { dst, a, b } => a < dst && b < dst,
            RegOp::Sqrt { dst, a } | RegOp::Abs { dst, a } => a < dst,
            RegOp::MulAdd { dst, a, b, c } => a < dst && b < dst && c < dst,
        })
    }

    pub(crate) fn utaps(&self) -> &[(u16, u16)] {
        &self.utaps
    }

    /// Register operations in the group body (tap/const loads excluded).
    #[cfg(test)]
    pub(crate) fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The vectorized multi-output sweep: writes output position `u`,
    /// column `t` to `out[u * stride + t]` for `t in 0..stride`, with
    /// utap `j` reading the contiguous input run at `vals[bases[j]]`.
    /// Lane chunks run the register body; remainder columns evaluate
    /// through [`RegProgram::tail`] — the one scalar remainder
    /// implementation for every unrolled path.
    fn sweep<T: Lane>(&self, bases: &[usize], vals: &[f64], out: &mut [f64], stride: usize) {
        debug_assert_eq!(bases.len(), self.utaps.len());
        debug_assert_eq!(out.len(), stride * self.roots.len());
        let nu = self.utaps.len();
        let mut regs: Vec<[T; LANES]> = vec![[T::ZERO; LANES]; self.regs];
        for (j, &c) in self.consts.iter().enumerate() {
            regs[nu + j] = [T::from_f64(c); LANES];
        }
        let mut t = 0usize;
        while t + LANES <= stride {
            for (j, &b) in bases.iter().enumerate() {
                let src = &vals[b + t..b + t + LANES];
                let dst = &mut regs[j];
                for i in 0..LANES {
                    dst[i] = T::from_f64(src[i]);
                }
            }
            self.run_chunk(&mut regs);
            for (u, &r) in self.roots.iter().enumerate() {
                let src = &regs[usize::from(r)];
                let dst = &mut out[u * stride + t..u * stride + t + LANES];
                for i in 0..LANES {
                    dst[i] = src[i].to_f64();
                }
            }
            t += LANES;
        }
        self.tail::<T>(bases, vals, out, stride, t);
    }

    /// Scalar remainder columns `from..stride`, one register-machine
    /// evaluation per column producing all output positions at once.
    fn tail<T: Lane>(
        &self,
        bases: &[usize],
        vals: &[f64],
        out: &mut [f64],
        stride: usize,
        from: usize,
    ) {
        let nu = self.utaps.len();
        let mut regs: Vec<T> = vec![T::ZERO; self.regs];
        for (j, &c) in self.consts.iter().enumerate() {
            regs[nu + j] = T::from_f64(c);
        }
        for col in from..stride {
            for (j, &b) in bases.iter().enumerate() {
                regs[j] = T::from_f64(vals[b + col]);
            }
            self.run_scalar(&mut regs);
            for (u, &r) in self.roots.iter().enumerate() {
                out[u * stride + col] = regs[usize::from(r)].to_f64();
            }
        }
    }

    /// One register-body pass over lane-wide registers. SSA ordering
    /// (`dst` past every operand) lets `split_at_mut` hand out the
    /// destination without aliasing the sources.
    fn run_chunk<T: Lane>(&self, regs: &mut [[T; LANES]]) {
        for op in &self.ops {
            match *op {
                RegOp::Add { dst, a, b } => {
                    let (lo, hi) = regs.split_at_mut(usize::from(dst));
                    let d = &mut hi[0];
                    let (x, y) = (&lo[usize::from(a)], &lo[usize::from(b)]);
                    for i in 0..LANES {
                        d[i] = x[i] + y[i];
                    }
                }
                RegOp::Sub { dst, a, b } => {
                    let (lo, hi) = regs.split_at_mut(usize::from(dst));
                    let d = &mut hi[0];
                    let (x, y) = (&lo[usize::from(a)], &lo[usize::from(b)]);
                    for i in 0..LANES {
                        d[i] = x[i] - y[i];
                    }
                }
                RegOp::Mul { dst, a, b } => {
                    let (lo, hi) = regs.split_at_mut(usize::from(dst));
                    let d = &mut hi[0];
                    let (x, y) = (&lo[usize::from(a)], &lo[usize::from(b)]);
                    for i in 0..LANES {
                        d[i] = x[i] * y[i];
                    }
                }
                RegOp::Div { dst, a, b } => {
                    let (lo, hi) = regs.split_at_mut(usize::from(dst));
                    let d = &mut hi[0];
                    let (x, y) = (&lo[usize::from(a)], &lo[usize::from(b)]);
                    for i in 0..LANES {
                        d[i] = x[i] / y[i];
                    }
                }
                RegOp::Sqrt { dst, a } => {
                    let (lo, hi) = regs.split_at_mut(usize::from(dst));
                    let d = &mut hi[0];
                    let x = &lo[usize::from(a)];
                    for i in 0..LANES {
                        d[i] = x[i].lane_sqrt();
                    }
                }
                RegOp::Abs { dst, a } => {
                    let (lo, hi) = regs.split_at_mut(usize::from(dst));
                    let d = &mut hi[0];
                    let x = &lo[usize::from(a)];
                    for i in 0..LANES {
                        d[i] = x[i].lane_abs();
                    }
                }
                RegOp::MulAdd { dst, a, b, c } => {
                    let (lo, hi) = regs.split_at_mut(usize::from(dst));
                    let d = &mut hi[0];
                    let (x, y, z) = (
                        &lo[usize::from(a)],
                        &lo[usize::from(b)],
                        &lo[usize::from(c)],
                    );
                    for i in 0..LANES {
                        d[i] = z[i] + x[i] * y[i];
                    }
                }
            }
        }
    }

    /// One register-body pass over scalar registers — the tail, the
    /// gather-row replay, and construction-time validation all share
    /// this evaluator.
    fn run_scalar<T: Lane>(&self, regs: &mut [T]) {
        for op in &self.ops {
            match *op {
                RegOp::Add { dst, a, b } => {
                    regs[usize::from(dst)] = regs[usize::from(a)] + regs[usize::from(b)];
                }
                RegOp::Sub { dst, a, b } => {
                    regs[usize::from(dst)] = regs[usize::from(a)] - regs[usize::from(b)];
                }
                RegOp::Mul { dst, a, b } => {
                    regs[usize::from(dst)] = regs[usize::from(a)] * regs[usize::from(b)];
                }
                RegOp::Div { dst, a, b } => {
                    regs[usize::from(dst)] = regs[usize::from(a)] / regs[usize::from(b)];
                }
                RegOp::Sqrt { dst, a } => regs[usize::from(dst)] = regs[usize::from(a)].lane_sqrt(),
                RegOp::Abs { dst, a } => regs[usize::from(dst)] = regs[usize::from(a)].lane_abs(),
                RegOp::MulAdd { dst, a, b, c } => {
                    let p = regs[usize::from(a)] * regs[usize::from(b)];
                    regs[usize::from(dst)] = regs[usize::from(c)] + p;
                }
            }
        }
    }

    /// Evaluates all output positions on one synthetic per-utap value
    /// assignment (validation replay).
    fn eval_outputs<T: Lane>(&self, utap_vals: &[f64]) -> Vec<f64> {
        let nu = self.utaps.len();
        let mut regs: Vec<T> = vec![T::ZERO; self.regs];
        for (j, &v) in utap_vals.iter().enumerate() {
            regs[j] = T::from_f64(v);
        }
        for (j, &c) in self.consts.iter().enumerate() {
            regs[nu + j] = T::from_f64(c);
        }
        self.run_scalar(&mut regs);
        self.roots
            .iter()
            .map(|&r| regs[usize::from(r)].to_f64())
            .collect()
    }
}

/// A validated unroll-by-U program pair: the `group` program produces
/// `U` adjacent output rows per dispatch, the `single` program is its
/// one-output sibling for leftover rows (row count not divisible by
/// `U`, or rows whose group alignment check fails) — both proven
/// equivalent to the scalar bytecode at construction, so any mix of
/// grouped and single execution produces identical bits.
#[derive(Debug, Clone, PartialEq)]
pub struct UnrolledProgram {
    unroll: usize,
    datapath: Datapath,
    taps: usize,
    group: RegProgram,
    single: RegProgram,
}

impl UnrolledProgram {
    /// Builds and validates the program pair. `unroll` is clamped to 1
    /// for one-dimensional windows (no adjacent-row axis exists);
    /// [`UnrolledProgram::unroll`] reports the effective factor.
    ///
    /// # Errors
    ///
    /// * [`EngineError::Config`] for `unroll` of 0 or above the
    ///   supported maximum.
    /// * [`EngineError::KernelCompile`] if the window disagrees with
    ///   the kernel or the program exceeds the register budget.
    /// * [`EngineError::KernelMismatch`] if the emitted register
    ///   program diverges from the scalar bytecode on replay.
    pub(crate) fn build(
        ck: &CompiledKernel,
        offsets: &[Point],
        unroll: usize,
        datapath: Datapath,
    ) -> Result<Self, EngineError> {
        if offsets.len() != ck.taps() {
            return Err(EngineError::KernelCompile {
                detail: format!(
                    "kernel compiled for {} taps but the unroll window has {} offsets",
                    ck.taps(),
                    offsets.len()
                ),
            });
        }
        check_unroll(unroll)?;
        let dims = offsets.first().map_or(0, Point::dims);
        let eff = if dims >= 2 { unroll } else { 1 };

        let (group, group_table) = RegProgram::build(ck, offsets, eff)?;
        validate_against_bytecode(ck, &group, &group_table, datapath)?;
        let single = if eff == 1 {
            group.clone()
        } else {
            let (single, single_table) = RegProgram::build(ck, offsets, 1)?;
            validate_against_bytecode(ck, &single, &single_table, datapath)?;
            single
        };

        Ok(Self {
            unroll: eff,
            datapath,
            taps: offsets.len(),
            group,
            single,
        })
    }

    /// The effective unroll factor (output rows per grouped dispatch).
    #[must_use]
    pub fn unroll(&self) -> usize {
        self.unroll
    }

    /// The arithmetic precision this program evaluates in.
    #[must_use]
    pub fn datapath(&self) -> Datapath {
        self.datapath
    }

    /// Representative `(output position, tap)` of each shared tap of
    /// the grouped body — the row executor derives input bases from
    /// these.
    pub(crate) fn group_utaps(&self) -> &[(u16, u16)] {
        self.group.utaps()
    }

    /// The grouped sweep: `out` holds `unroll()` adjacent rows of
    /// `stride` columns each, `bases[j]` the input run of group utap
    /// `j`.
    pub(crate) fn sweep_group(
        &self,
        bases: &[usize],
        vals: &[f64],
        out: &mut [f64],
        stride: usize,
    ) {
        match self.datapath {
            Datapath::F64 => self.group.sweep::<f64>(bases, vals, out, stride),
            Datapath::F32 => self.group.sweep::<f32>(bases, vals, out, stride),
        }
    }

    /// The single-row sweep for leftover rows. `tap_bases` are per
    /// *tap* (the row executor's existing layout); the program maps
    /// them onto its deduplicated utap slots via `scratch`.
    pub(crate) fn sweep_single(
        &self,
        tap_bases: &[usize],
        vals: &[f64],
        out: &mut [f64],
        scratch: &mut Vec<usize>,
    ) {
        scratch.clear();
        scratch.extend(
            self.single
                .utaps()
                .iter()
                .map(|&(_, k)| tap_bases[usize::from(k)]),
        );
        let stride = out.len();
        match self.datapath {
            Datapath::F64 => self.single.sweep::<f64>(scratch, vals, out, stride),
            Datapath::F32 => self.single.sweep::<f32>(scratch, vals, out, stride),
        }
    }
}

/// Replays the register program against the scalar bytecode on the
/// same battery shape as [`CompiledKernel::compile_checked`]: edge
/// fills plus pseudo-random assignments of the deduplicated taps. Each
/// output position must agree bit-for-bit with evaluating the bytecode
/// on that position's reconstructed window.
fn validate_against_bytecode(
    ck: &CompiledKernel,
    prog: &RegProgram,
    table: &[Vec<usize>],
    datapath: Datapath,
) -> Result<(), EngineError> {
    let mut utap_vals = vec![0.0f64; prog.utaps.len()];
    let mut window = vec![0.0f64; ck.taps()];
    let check = |utap_vals: &[f64], window: &mut [f64]| -> Result<(), EngineError> {
        let got = match datapath {
            Datapath::F64 => prog.eval_outputs::<f64>(utap_vals),
            Datapath::F32 => prog.eval_outputs::<f32>(utap_vals),
        };
        for (u, row) in table.iter().enumerate() {
            for (k, &id) in row.iter().enumerate() {
                window[k] = utap_vals[id];
            }
            let want = match datapath {
                Datapath::F64 => ck.eval(window),
                Datapath::F32 => ck.eval32(window),
            };
            let g = got[u];
            if !(g == want || (g.is_nan() && want.is_nan())) {
                return Err(EngineError::KernelMismatch {
                    detail: format!(
                        "unrolled output {u} ({datapath}): register program {g:?} vs bytecode \
                         {want:?} on utap values {utap_vals:?}"
                    ),
                });
            }
        }
        Ok(())
    };
    for fill in [0.0, 1.0, -1.0, 0.5] {
        utap_vals.iter_mut().for_each(|v| *v = fill);
        check(&utap_vals, &mut window)?;
    }
    let mut state = 0x0BAD_5EED_0042_u64;
    for _ in 0..48 {
        for v in &mut utap_vals {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((state >> 33) as f64) / 1e8 - 42.0;
        }
        check(&utap_vals, &mut window)?;
    }
    Ok(())
}

/// Maximum scaled deviation between two output vectors:
/// `max |got - want| / max(1, max |want|)`. The global scale keeps
/// near-zero outputs from exploding the ratio while still measuring
/// f32 rounding drift against the f64 golden. Positions where both
/// sides are NaN agree; a one-sided NaN (or any non-finite deviation)
/// reports infinity.
#[must_use]
pub fn max_rel_error(got: &[f64], want: &[f64]) -> f64 {
    assert_eq!(got.len(), want.len(), "compared runs must align");
    let scale = want
        .iter()
        .filter(|w| w.is_finite())
        .fold(1.0f64, |m, w| m.max(w.abs()));
    let mut worst = 0.0f64;
    for (&g, &w) in got.iter().zip(want) {
        if g.is_nan() && w.is_nan() {
            continue;
        }
        let d = (g - w).abs();
        if d.is_nan() {
            return f64::INFINITY;
        }
        worst = worst.max(d / scale);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_kernels::{denoise, heat_1d, sobel};

    fn compiled(b: &stencil_kernels::Benchmark) -> CompiledKernel {
        CompiledKernel::for_benchmark(b).unwrap().unwrap()
    }

    #[test]
    fn one_dimensional_windows_clamp_to_single_output() {
        let b = heat_1d();
        let ck = compiled(&b);
        let up = UnrolledProgram::build(&ck, b.window(), 8, Datapath::F64).unwrap();
        assert_eq!(up.unroll(), 1);
        assert_eq!(up.group, up.single);
    }

    #[test]
    fn unroll_bounds_are_enforced() {
        let b = denoise();
        let ck = compiled(&b);
        for bad in [0, MAX_UNROLL + 1] {
            let err = UnrolledProgram::build(&ck, b.window(), bad, Datapath::F64).unwrap_err();
            assert!(matches!(err, EngineError::Config { .. }), "{err}");
        }
    }

    #[test]
    fn adjacent_outputs_share_coinciding_taps() {
        // DENOISE reads a 5-point cross; at U=4 the vertical taps of
        // adjacent rows coincide: 14 distinct loads instead of 20.
        let b = denoise();
        let ck = compiled(&b);
        let up = UnrolledProgram::build(&ck, b.window(), 4, Datapath::F64).unwrap();
        assert_eq!(up.unroll(), 4);
        assert_eq!(up.group_utaps().len(), 14);
        assert_eq!(up.single.utaps().len(), 5);
    }

    #[test]
    fn cross_output_cse_shares_subtrees() {
        // SOBEL's column sums are shared between horizontally adjacent
        // outputs... vertically here: a grouped body must cost less
        // than U independent single bodies.
        for b in [denoise(), sobel()] {
            let ck = compiled(&b);
            let up = UnrolledProgram::build(&ck, b.window(), 4, Datapath::F64).unwrap();
            assert!(
                up.group.op_count() <= 4 * up.single.op_count(),
                "{}: group {} vs 4x single {}",
                b.name(),
                up.group.op_count(),
                up.single.op_count()
            );
        }
    }

    #[test]
    fn group_sweep_matches_bytecode_per_output() {
        // Synthetic flat buffer with hand-picked utap bases: output u
        // column t must equal evaluating the bytecode on the window
        // reconstructed through the utap table.
        let b = denoise();
        let ck = compiled(&b);
        let (prog, table) = RegProgram::build(&ck, b.window(), 4).unwrap();
        let vals: Vec<f64> = (0..512).map(|i| f64::from(i) * 0.375 - 17.0).collect();
        // utap j reads vals starting at 3*j: arbitrary distinct runs.
        let bases: Vec<usize> = (0..prog.utaps().len()).map(|j| 3 * j).collect();
        for stride in [1usize, 31, 32, 33, 70] {
            let mut out = vec![0.0f64; 4 * stride];
            prog.sweep::<f64>(&bases, &vals, &mut out, stride);
            for (u, row) in table.iter().enumerate() {
                for t in 0..stride {
                    let window: Vec<f64> = row.iter().map(|&id| vals[bases[id] + t]).collect();
                    assert_eq!(
                        out[u * stride + t],
                        ck.eval(&window),
                        "stride={stride} u={u} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn f32_sweep_matches_eval32() {
        let b = sobel();
        let ck = compiled(&b);
        let (prog, table) = RegProgram::build(&ck, b.window(), 2).unwrap();
        let vals: Vec<f64> = (0..256).map(|i| f64::from(i) * 0.7 - 40.0).collect();
        let bases: Vec<usize> = (0..prog.utaps().len()).map(|j| 2 * j).collect();
        let stride = 45; // one chunk plus a remainder
        let mut out = vec![0.0f64; 2 * stride];
        prog.sweep::<f32>(&bases, &vals, &mut out, stride);
        for (u, row) in table.iter().enumerate() {
            for t in 0..stride {
                let window: Vec<f64> = row.iter().map(|&id| vals[bases[id] + t]).collect();
                assert_eq!(out[u * stride + t], ck.eval32(&window), "u={u} t={t}");
            }
        }
    }

    #[test]
    fn every_suite_kernel_builds_unrolled_checked() {
        for b in stencil_kernels::paper_suite()
            .into_iter()
            .chain(stencil_kernels::extra_suite())
        {
            let ck = compiled(&b);
            for u in [1usize, 2, 4, 8] {
                for dp in [Datapath::F64, Datapath::F32] {
                    let up = UnrolledProgram::build(&ck, b.window(), u, dp)
                        .unwrap_or_else(|e| panic!("{} u={u} {dp}: {e}", b.name()));
                    assert!(up.unroll() >= 1);
                }
            }
        }
    }

    #[test]
    fn max_rel_error_scales_and_handles_nan() {
        assert_eq!(max_rel_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        // Deviation 0.1 against a max-|want| of 100 scales to 1e-3.
        let e = max_rel_error(&[100.0, 0.1], &[100.0, 0.0]);
        assert!((e - 1e-3).abs() < 1e-12, "{e}");
        // Small outputs use the floor scale of 1.
        let e = max_rel_error(&[0.2], &[0.1]);
        assert!((e - 0.1).abs() < 1e-12, "{e}");
        // Matching NaNs agree; one-sided NaN is a hard mismatch.
        assert_eq!(max_rel_error(&[f64::NAN], &[f64::NAN]), 0.0);
        assert_eq!(max_rel_error(&[f64::NAN], &[1.0]), f64::INFINITY);
        assert_eq!(max_rel_error(&[1.0], &[f64::NAN]), f64::INFINITY);
    }
}
