//! Tiled parallel execution of a plan.

use std::sync::Mutex;
use std::time::Instant;

use stencil_core::{MemorySystemPlan, Tile, TilePlan};
use stencil_polyhedral::{DomainIndex, Point, Row};

use crate::error::EngineError;
use crate::input::InputGrid;
use crate::report::{RunReport, TileReport};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    /// Number of row bands. `None` applies the Appendix 9.4 sharding
    /// rule: one band per off-chip stream of the plan.
    pub tiles: Option<usize>,
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
}

impl EngineConfig {
    /// A config with an explicit band count.
    #[must_use]
    pub fn with_tiles(tiles: usize) -> Self {
        EngineConfig {
            tiles: Some(tiles),
            threads: 0,
        }
    }

    /// Sets the worker thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The result of an engine run.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Output values in lexicographic iteration order — directly
    /// comparable to `stencil_kernels::run_golden` and to the outputs
    /// reconstructed from the cycle-accurate machine.
    pub outputs: Vec<f64>,
    /// Throughput statistics.
    pub report: RunReport,
}

/// Executes `plan`'s kernel over `input` with the window datapath
/// `compute` (window values in the stencil's *declared/user* reference
/// order, as [`stencil_core::FilterPlan::user_index`] defines it).
///
/// # Errors
///
/// * [`EngineError::InputSizeMismatch`] if `input` does not cover the
///   plan's input domain.
/// * [`EngineError::MissingInput`] if a window tap leaves the input
///   domain (inconsistent input index).
/// * [`EngineError::Plan`] on tiling failures.
/// * [`EngineError::WorkerPanic`] if `compute` panicked on a worker.
pub fn run_plan<C>(
    plan: &MemorySystemPlan,
    input: &InputGrid<'_>,
    compute: &C,
    config: &EngineConfig,
) -> Result<EngineRun, EngineError>
where
    C: Fn(&[f64]) -> f64 + Sync,
{
    let tiles = config
        .tiles
        .unwrap_or_else(|| plan.offchip_streams().max(1));
    let tile_plan = plan.tile_plan(tiles.max(1))?;
    run_tiled(plan, &tile_plan, input, compute, config.threads)
}

/// Executes with a pre-computed tiling (e.g. to sweep band counts
/// without re-tiling, or to inspect the [`TilePlan`] first).
///
/// # Errors
///
/// As [`run_plan`], minus tiling failures.
pub fn run_tiled<C>(
    plan: &MemorySystemPlan,
    tile_plan: &TilePlan,
    input: &InputGrid<'_>,
    compute: &C,
    threads: usize,
) -> Result<EngineRun, EngineError>
where
    C: Fn(&[f64]) -> f64 + Sync,
{
    let expected = input.index().len();
    let declared = plan
        .input_domain()
        .count()
        .map_err(|e| EngineError::Plan(e.into()))?;
    if expected != declared {
        return Err(EngineError::InputSizeMismatch {
            expected: declared,
            got: expected,
        });
    }

    // Window offsets in the user's declared reference order — the order
    // `compute` consumes (`FilterPlan.user_index` inverts the chain's
    // descending sort).
    let mut offsets = vec![Point::zero(plan.iteration_domain().dims()); plan.port_count()];
    for f in plan.filters() {
        offsets[f.user_index] = f.offset;
    }

    let started = Instant::now();
    let total =
        usize::try_from(tile_plan.total_outputs()).map_err(|_| EngineError::DomainTooLarge {
            points: tile_plan.total_outputs(),
        })?;
    let mut outputs = vec![0.0f64; total];

    // Disjoint per-band output slices: bands are contiguous rank ranges.
    let mut work: Vec<(&Tile, &mut [f64])> = Vec::with_capacity(tile_plan.tile_count());
    let mut rest: &mut [f64] = &mut outputs;
    for tile in tile_plan.tiles() {
        let len = usize::try_from(tile.len)
            .map_err(|_| EngineError::DomainTooLarge { points: tile.len })?;
        if len > rest.len() {
            return Err(EngineError::InconsistentIndex {
                detail: format!(
                    "band {} claims {len} outputs but only {} remain unassigned",
                    tile.id,
                    rest.len()
                ),
            });
        }
        let (head, tail) = rest.split_at_mut(len);
        work.push((tile, head));
        rest = tail;
    }
    // Shared work queue; idle workers steal the next unclaimed band.
    work.reverse(); // pop() hands out bands in rank order
    let queue = Mutex::new(work);
    let results: Mutex<Vec<TileReport>> = Mutex::new(Vec::with_capacity(tile_plan.tile_count()));
    let failure: Mutex<Option<EngineError>> = Mutex::new(None);

    let worker_count = threads_for(threads, tile_plan.tile_count());
    crossbeam::scope(|s| {
        for _ in 0..worker_count {
            s.spawn(|_| loop {
                let item = queue.lock().expect("queue lock").pop();
                let Some((tile, out)) = item else { break };
                match execute_tile(tile, &offsets, input, compute, out) {
                    Ok(report) => results.lock().expect("results lock").push(report),
                    Err(e) => {
                        failure.lock().expect("failure lock").get_or_insert(e);
                        break;
                    }
                }
            });
        }
    })
    .map_err(|_| EngineError::WorkerPanic)?;

    if let Some(e) = failure.into_inner().expect("failure lock") {
        return Err(e);
    }
    let mut per_tile = results.into_inner().expect("results lock");
    per_tile.sort_by_key(|t| t.id);

    let report = RunReport {
        outputs: tile_plan.total_outputs(),
        tiles: tile_plan.tile_count(),
        threads: worker_count,
        halo_elements: per_tile.iter().map(|t| t.halo_elements).sum(),
        elapsed: started.elapsed(),
        per_tile,
    };
    Ok(EngineRun { outputs, report })
}

pub(crate) fn threads_for(requested: usize, tiles: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, tiles.max(1))
}

/// A rank-windowed view of the input stream: `vals` holds the values of
/// lexicographic ranks `[base, base + vals.len())` of the full input
/// domain indexed by `idx`. The in-core paths use a full window
/// (`base == 0`, every rank resident); the streaming path keeps only
/// the current band's halo rows resident.
pub(crate) struct RankWindow<'a> {
    /// Index of the *full* input domain (rank queries stay global).
    pub idx: &'a DomainIndex,
    /// Values of the resident rank range, in rank order.
    pub vals: &'a [f64],
    /// Global rank of `vals[0]`.
    pub base: u64,
}

impl RankWindow<'_> {
    /// Window offset of global rank `b`, if `b..b + len` is resident.
    fn resident_run(&self, b: u64, len: usize) -> Option<usize> {
        let off = usize::try_from(b.checked_sub(self.base)?).ok()?;
        let end = off.checked_add(len)?;
        (end <= self.vals.len()).then_some(off)
    }

    /// The resident value at point `p`: `Err(false)` if `p` is outside
    /// the input domain, `Err(true)` if in-domain but not resident.
    fn value_at(&self, p: &Point) -> Result<f64, bool> {
        if !self.idx.contains(p) {
            return Err(false);
        }
        self.resident_run(self.idx.rank_lt(p), 1)
            .map(|off| self.vals[off])
            .ok_or(true)
    }
}

/// Tallies of [`execute_rows`]: `(fast rows, gather rows)`.
pub(crate) type RowStats = (u64, u64);

/// The shared per-row executor behind both the in-core and streaming
/// paths: runs the iteration rows `rows` (a contiguous slice of one
/// band's index, whose `base` ranks start at `out_base`) against the
/// resident input window, writing `out` (one slot per iteration).
///
/// Per output row, every window tap becomes a base rank into the flat
/// input stream and the inner loop is pure indexed arithmetic; rows
/// whose taps are not contiguous (or not fully resident) fall back to
/// per-point gathers.
pub(crate) fn execute_rows<C>(
    rows: &[Row],
    out_base: u64,
    offsets: &[Point],
    win: &RankWindow<'_>,
    compute: &C,
    out: &mut [f64],
) -> Result<RowStats, EngineError>
where
    C: Fn(&[f64]) -> f64 + Sync,
{
    let n = offsets.len();
    let mut window = vec![0.0f64; n];
    let mut bases = vec![0usize; n];
    let mut fast_rows = 0u64;
    let mut gather_rows = 0u64;

    for row in rows {
        let len = usize::try_from(row.len())
            .map_err(|_| EngineError::DomainTooLarge { points: row.len() })?;
        let start = row
            .base
            .checked_sub(out_base)
            .and_then(|s| usize::try_from(s).ok())
            .ok_or_else(|| inconsistent_row(row, out_base))?;
        let out_row = out
            .get_mut(start..)
            .and_then(|o| o.get_mut(..len))
            .ok_or_else(|| inconsistent_row(row, out_base))?;

        let mut all_fast = true;
        for (k, f) in offsets.iter().enumerate() {
            let start = tap_point(&row.prefix, row.lo, f);
            let end = tap_point(&row.prefix, row.hi, f);
            match contiguous_base(win.idx, &start, &end, len).and_then(|b| win.resident_run(b, len))
            {
                Some(off) => bases[k] = off,
                None => {
                    all_fast = false;
                    break;
                }
            }
        }

        if all_fast {
            fast_rows += 1;
            for (t, slot) in out_row.iter_mut().enumerate() {
                for (w, &b) in window.iter_mut().zip(&bases) {
                    *w = win.vals[b + t];
                }
                *slot = compute(&window);
            }
        } else {
            // Defensive fallback: gather taps point by point. A convex
            // input domain keeps every shifted row contiguous, so
            // plan-derived inputs never land here; custom input indexes
            // that break contiguity still execute correctly (or report
            // the exact missing point).
            gather_rows += 1;
            for (t, slot) in out_row.iter_mut().enumerate() {
                let t_inner = i64::try_from(t)
                    .map_err(|_| EngineError::DomainTooLarge { points: row.len() })?;
                let i = row.prefix.pushed(row.lo + t_inner);
                for (w, f) in window.iter_mut().zip(offsets) {
                    let h = i + *f;
                    *w = match win.value_at(&h) {
                        Ok(v) => v,
                        Err(false) => {
                            return Err(EngineError::MissingInput {
                                point: h.to_string(),
                            })
                        }
                        Err(true) => {
                            return Err(EngineError::InconsistentIndex {
                                detail: format!(
                                    "tap {h} is in the input domain but outside the \
                                     resident window [{}, {})",
                                    win.base,
                                    win.base + win.vals.len() as u64
                                ),
                            })
                        }
                    };
                }
                *slot = compute(&window);
            }
        }
    }

    Ok((fast_rows, gather_rows))
}

fn inconsistent_row(row: &Row, out_base: u64) -> EngineError {
    EngineError::InconsistentIndex {
        detail: format!(
            "iteration row at {} (base {}) does not fit its band's output \
             slice starting at rank {out_base}",
            row.prefix, row.base
        ),
    }
}

/// Runs one band against the full in-core input.
fn execute_tile<C>(
    tile: &Tile,
    offsets: &[Point],
    input: &InputGrid<'_>,
    compute: &C,
    out: &mut [f64],
) -> Result<TileReport, EngineError>
where
    C: Fn(&[f64]) -> f64 + Sync,
{
    let tile_started = Instant::now();
    let idx = tile
        .iter_domain
        .index()
        .map_err(|e| EngineError::Plan(e.into()))?;
    let win = RankWindow {
        idx: input.index(),
        vals: input.values(),
        base: 0,
    };
    let (fast_rows, gather_rows) = execute_rows(idx.rows(), 0, offsets, &win, compute, out)?;

    Ok(TileReport {
        id: tile.id,
        outputs: tile.len,
        halo_elements: tile
            .halo_domain
            .count()
            .map_err(|e| EngineError::Plan(e.into()))?,
        fast_rows,
        gather_rows,
        elapsed: tile_started.elapsed(),
    })
}

/// The input point read by tap `f` at iteration `(prefix, inner)`.
fn tap_point(prefix: &Point, inner: i64, f: &Point) -> Point {
    prefix.pushed(inner) + *f
}

/// The batched-tap predicate: `Some(start rank)` iff the shifted row
/// `start..=end` is one contiguous run of the input stream — both ends
/// in-domain and exactly `len - 1` ranks apart.
///
/// The rank difference is taken with `checked_sub`: an index produced
/// by [`DomainIndex::build`] ranks monotonically, but the engine also
/// accepts hand-built indexes ([`DomainIndex::from_rows`]) whose base
/// values may invert rank order, and the fast path must degrade to the
/// gather fallback there instead of panicking on underflow.
fn contiguous_base(in_idx: &DomainIndex, start: &Point, end: &Point, len: usize) -> Option<u64> {
    if !in_idx.contains(start) || !in_idx.contains(end) {
        return None;
    }
    let base = in_idx.rank_lt(start);
    match in_idx.rank_lt(end).checked_sub(base) {
        Some(span) if span == (len - 1) as u64 => Some(base),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::StencilSpec;
    use stencil_polyhedral::Polyhedron;

    fn plan_5pt(rows: i64, cols: i64) -> MemorySystemPlan {
        let spec = StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, rows - 2), (1, cols - 2)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap();
        MemorySystemPlan::generate(&spec).unwrap()
    }

    fn ramp(len: u64) -> Vec<f64> {
        (0..len).map(|r| (r % 97) as f64 * 0.5 - 11.0).collect()
    }

    #[test]
    fn engine_matches_direct_loop() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let compute = |w: &[f64]| w[2] + 0.25 * (w[0] + w[1] + w[3] + w[4]) - 4.0 * w[2] * 0.25;

        let run = run_plan(&plan, &input, &compute, &EngineConfig::with_tiles(3)).unwrap();

        // Direct nested-loop reference in user offset order:
        // (-1,0), (0,-1), (0,0), (0,1), (1,0).
        let iter_idx = plan.iteration_domain().index().unwrap();
        let mut c = iter_idx.cursor();
        let mut expect = Vec::new();
        while let Some(p) = c.point(&iter_idx) {
            let at = |dr: i64, dc: i64| {
                input
                    .value_at(&Point::new(&[p[0] + dr, p[1] + dc]))
                    .unwrap()
            };
            expect.push(compute(&[
                at(-1, 0),
                at(0, -1),
                at(0, 0),
                at(0, 1),
                at(1, 0),
            ]));
            c.advance(&iter_idx);
        }
        assert_eq!(run.outputs, expect);
        assert_eq!(run.report.outputs, 18 * 22);
        assert_eq!(run.report.tiles, 3);
    }

    #[test]
    fn tile_counts_do_not_change_results() {
        let plan = plan_5pt(17, 13);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let compute = |w: &[f64]| w.iter().sum::<f64>() * 0.2;
        let reference = run_plan(&plan, &input, &compute, &EngineConfig::with_tiles(1))
            .unwrap()
            .outputs;
        for tiles in [2usize, 3, 5, 8, 100] {
            for threads in [1usize, 2, 4] {
                let run = run_plan(
                    &plan,
                    &input,
                    &compute,
                    &EngineConfig::with_tiles(tiles).threads(threads),
                )
                .unwrap();
                assert_eq!(run.outputs, reference, "tiles={tiles} threads={threads}");
            }
        }
    }

    #[test]
    fn input_size_is_validated() {
        let plan = plan_5pt(10, 10);
        let other = Polyhedron::grid(&[4, 4]).index().unwrap();
        let vals = ramp(other.len());
        let input = InputGrid::new(&other, &vals).unwrap();
        let e = run_plan(&plan, &input, &|w| w[0], &EngineConfig::default()).unwrap_err();
        assert!(matches!(e, EngineError::InputSizeMismatch { .. }));
    }

    #[test]
    fn default_config_follows_stream_count() {
        let plan = plan_5pt(12, 12).with_offchip_streams(2).unwrap();
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let run = run_plan(&plan, &input, &|w| w[2], &EngineConfig::default()).unwrap();
        assert_eq!(run.report.tiles, 2);
    }

    #[test]
    fn worker_panic_is_reported() {
        let plan = plan_5pt(10, 10);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let compute = |_: &[f64]| -> f64 { panic!("datapath bug") };
        let e = run_plan(&plan, &input, &compute, &EngineConfig::default()).unwrap_err();
        assert_eq!(e, EngineError::WorkerPanic);
    }

    #[test]
    fn scrambled_rank_order_degrades_to_gather_not_panic() {
        use stencil_polyhedral::Row;
        // Hand-built index with inverted bases: the prefix-[1] row
        // ranks *before* the prefix-[0] row, so rank_lt(end) <
        // rank_lt(start) for a span crossing the two. The old unchecked
        // subtraction panicked with overflow here; the predicate must
        // report "not contiguous" instead.
        let idx = DomainIndex::from_rows(
            2,
            vec![
                Row {
                    prefix: Point::new(&[0]),
                    lo: 0,
                    hi: 4,
                    base: 5,
                },
                Row {
                    prefix: Point::new(&[1]),
                    lo: 0,
                    hi: 4,
                    base: 0,
                },
            ],
        );
        let start = Point::new(&[0, 0]); // rank 5
        let end = Point::new(&[1, 4]); // rank 4 — inverted
        assert!(idx.rank_lt(&end) < idx.rank_lt(&start));
        assert_eq!(contiguous_base(&idx, &start, &end, 10), None);
        // Sanity: a consistent span on the same index still batches.
        let lo = Point::new(&[1, 0]);
        let hi = Point::new(&[1, 4]);
        assert_eq!(contiguous_base(&idx, &lo, &hi, 5), Some(0));
    }

    #[test]
    fn scrambled_input_index_reports_missing_point() {
        // An input index whose prefix-5 row is shifted left by one:
        // same point count (so the size check passes), broken coverage.
        // Output rows reading (5, 9) cannot batch; the gather fallback
        // must name the exact missing point instead of reading garbage.
        let plan = plan_5pt(10, 10);
        let mut rows = plan.input_domain().index().unwrap().rows().to_vec();
        assert_eq!((rows[5].lo, rows[5].hi), (0, 9));
        rows[5].lo = -1;
        rows[5].hi = 8;
        let idx = DomainIndex::from_rows(2, rows);
        let vals = ramp(idx.len());
        let input = InputGrid::new(&idx, &vals).unwrap();
        let e = run_plan(&plan, &input, &|w| w[2], &EngineConfig::with_tiles(1)).unwrap_err();
        match e {
            EngineError::MissingInput { point } => assert_eq!(point, "(5, 9)"),
            other => panic!("expected MissingInput, got {other:?}"),
        }
    }

    #[test]
    fn report_accounts_all_rows_fast_for_rect_grids() {
        let plan = plan_5pt(16, 16);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let run = run_plan(&plan, &input, &|w| w[2], &EngineConfig::with_tiles(2)).unwrap();
        let fast: u64 = run.report.per_tile.iter().map(|t| t.fast_rows).sum();
        let gather: u64 = run.report.per_tile.iter().map(|t| t.gather_rows).sum();
        assert_eq!(fast, 14);
        assert_eq!(gather, 0);
        assert!(run.report.halo_elements > in_idx.len());
        assert!(run.report.fetch_overhead(in_idx.len()) > 1.0);
        assert!(run.report.throughput() > 0.0);
    }
}
