//! Tiled parallel execution of a plan.

use std::sync::Mutex;
use std::time::Instant;

use stencil_core::{MemorySystemPlan, Tile, TilePlan};
use stencil_polyhedral::Point;

use crate::compile::{CompiledKernel, KernelBackend};
use crate::error::EngineError;
use crate::input::InputGrid;
use crate::report::{RunReport, TileReport};
use crate::rowexec::{
    execute_rows, ClosureKernel, RankWindow, RowKernel, ScalarKernel, SweepKernel,
};

/// Engine tuning knobs.
///
/// Build with the uniform chained builder:
/// `EngineConfig::new().tiles(4).threads(2).backend(KernelBackend::Compiled)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    /// Number of row bands. `None` applies the Appendix 9.4 sharding
    /// rule: one band per off-chip stream of the plan.
    pub tiles: Option<usize>,
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
    /// How the kernel datapath executes on the compiled entry points
    /// ([`run_plan_compiled`]); the closure entry points ignore it.
    pub backend: KernelBackend,
}

impl EngineConfig {
    /// The all-defaults config — the anchor of the chained builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an explicit band count.
    #[must_use]
    pub fn tiles(mut self, tiles: usize) -> Self {
        self.tiles = Some(tiles);
        self
    }

    /// Sets the worker thread count (`0` = machine parallelism).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the kernel backend for the compiled entry points.
    #[must_use]
    pub fn backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// A config with an explicit band count.
    #[deprecated(note = "use the uniform builder: `EngineConfig::new().tiles(n)`")]
    #[must_use]
    pub fn with_tiles(tiles: usize) -> Self {
        Self::new().tiles(tiles)
    }
}

/// The result of an engine run.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Output values in lexicographic iteration order — directly
    /// comparable to `stencil_kernels::run_golden` and to the outputs
    /// reconstructed from the cycle-accurate machine.
    pub outputs: Vec<f64>,
    /// Throughput statistics.
    pub report: RunReport,
}

/// Executes `plan`'s kernel over `input` with the window datapath
/// `compute` (window values in the stencil's *declared/user* reference
/// order, as [`stencil_core::FilterPlan::user_index`] defines it).
///
/// # Errors
///
/// * [`EngineError::InputSizeMismatch`] if `input` does not cover the
///   plan's input domain.
/// * [`EngineError::MissingInput`] if a window tap leaves the input
///   domain (inconsistent input index).
/// * [`EngineError::Plan`] on tiling failures.
/// * [`EngineError::WorkerPanic`] if `compute` panicked on a worker.
pub fn run_plan<C>(
    plan: &MemorySystemPlan,
    input: &InputGrid<'_>,
    compute: &C,
    config: &EngineConfig,
) -> Result<EngineRun, EngineError>
where
    C: Fn(&[f64]) -> f64 + Sync,
{
    let tile_plan = plan.tile_plan(bands_for(plan, config))?;
    run_tiled(plan, &tile_plan, input, compute, config.threads)
}

/// Executes with a pre-computed tiling (e.g. to sweep band counts
/// without re-tiling, or to inspect the [`TilePlan`] first).
///
/// # Errors
///
/// As [`run_plan`], minus tiling failures.
pub fn run_tiled<C>(
    plan: &MemorySystemPlan,
    tile_plan: &TilePlan,
    input: &InputGrid<'_>,
    compute: &C,
    threads: usize,
) -> Result<EngineRun, EngineError>
where
    C: Fn(&[f64]) -> f64 + Sync,
{
    run_tiled_inner(
        plan,
        tile_plan,
        input,
        &ClosureKernel(compute),
        threads,
        KernelBackend::Closure,
    )
}

/// Executes `plan`'s kernel over `input` through pre-compiled bytecode:
/// interior rows run the vectorized row sweep when
/// `config.backend == KernelBackend::Compiled`, or the per-element
/// bytecode interpreter under `KernelBackend::Closure` (useful to
/// isolate the sweep in cross-checks).
///
/// `kernel` must have been compiled for this plan's window size
/// (`kernel.taps() == plan.port_count()`), e.g. via
/// [`CompiledKernel::for_benchmark`].
///
/// # Errors
///
/// As [`run_plan`], plus [`EngineError::KernelCompile`] when the
/// kernel's tap count does not match the plan's window.
pub fn run_plan_compiled(
    plan: &MemorySystemPlan,
    input: &InputGrid<'_>,
    kernel: &CompiledKernel,
    config: &EngineConfig,
) -> Result<EngineRun, EngineError> {
    let tile_plan = plan.tile_plan(bands_for(plan, config))?;
    run_tiled_compiled(plan, &tile_plan, input, kernel, config)
}

/// [`run_plan_compiled`] with a pre-computed tiling; band count comes
/// from `tile_plan`, threads and backend from `config`.
///
/// # Errors
///
/// As [`run_plan_compiled`], minus tiling failures.
pub fn run_tiled_compiled(
    plan: &MemorySystemPlan,
    tile_plan: &TilePlan,
    input: &InputGrid<'_>,
    kernel: &CompiledKernel,
    config: &EngineConfig,
) -> Result<EngineRun, EngineError> {
    check_kernel_window(plan, kernel)?;
    match config.backend {
        KernelBackend::Compiled => run_tiled_inner(
            plan,
            tile_plan,
            input,
            &SweepKernel(kernel),
            config.threads,
            KernelBackend::Compiled,
        ),
        KernelBackend::Closure => run_tiled_inner(
            plan,
            tile_plan,
            input,
            &ScalarKernel(kernel),
            config.threads,
            KernelBackend::Closure,
        ),
    }
}

/// Band count for `plan` under `config` (explicit, else Appendix 9.4).
fn bands_for(plan: &MemorySystemPlan, config: &EngineConfig) -> usize {
    config
        .tiles
        .unwrap_or_else(|| plan.offchip_streams().max(1))
        .max(1)
}

pub(crate) fn check_kernel_window(
    plan: &MemorySystemPlan,
    kernel: &CompiledKernel,
) -> Result<(), EngineError> {
    if kernel.taps() != plan.port_count() {
        return Err(EngineError::KernelCompile {
            detail: format!(
                "kernel compiled for {} taps but the plan's window has {} points",
                kernel.taps(),
                plan.port_count()
            ),
        });
    }
    Ok(())
}

fn run_tiled_inner<K: RowKernel>(
    plan: &MemorySystemPlan,
    tile_plan: &TilePlan,
    input: &InputGrid<'_>,
    kernel: &K,
    threads: usize,
    backend: KernelBackend,
) -> Result<EngineRun, EngineError> {
    let expected = input.index().len();
    let declared = plan
        .input_domain()
        .count()
        .map_err(|e| EngineError::Plan(e.into()))?;
    if expected != declared {
        return Err(EngineError::InputSizeMismatch {
            expected: declared,
            got: expected,
        });
    }

    // Window offsets in the user's declared reference order — the order
    // the kernel consumes (`FilterPlan.user_index` inverts the chain's
    // descending sort).
    let mut offsets = vec![Point::zero(plan.iteration_domain().dims()); plan.port_count()];
    for f in plan.filters() {
        offsets[f.user_index] = f.offset;
    }

    let started = Instant::now();
    let total =
        usize::try_from(tile_plan.total_outputs()).map_err(|_| EngineError::DomainTooLarge {
            points: tile_plan.total_outputs(),
        })?;
    let mut outputs = vec![0.0f64; total];

    // Disjoint per-band output slices: bands are contiguous rank ranges.
    let mut work: Vec<(&Tile, &mut [f64])> = Vec::with_capacity(tile_plan.tile_count());
    let mut rest: &mut [f64] = &mut outputs;
    for tile in tile_plan.tiles() {
        let len = usize::try_from(tile.len)
            .map_err(|_| EngineError::DomainTooLarge { points: tile.len })?;
        if len > rest.len() {
            return Err(EngineError::InconsistentIndex {
                detail: format!(
                    "band {} claims {len} outputs but only {} remain unassigned",
                    tile.id,
                    rest.len()
                ),
            });
        }
        let (head, tail) = rest.split_at_mut(len);
        work.push((tile, head));
        rest = tail;
    }
    // Shared work queue; idle workers steal the next unclaimed band.
    work.reverse(); // pop() hands out bands in rank order
    let queue = Mutex::new(work);
    let results: Mutex<Vec<TileReport>> = Mutex::new(Vec::with_capacity(tile_plan.tile_count()));
    let failure: Mutex<Option<EngineError>> = Mutex::new(None);

    let worker_count = threads_for(threads, tile_plan.tile_count());
    crossbeam::scope(|s| {
        for _ in 0..worker_count {
            s.spawn(|_| loop {
                let item = queue.lock().expect("queue lock").pop();
                let Some((tile, out)) = item else { break };
                match execute_tile(tile, &offsets, input, kernel, out) {
                    Ok(report) => results.lock().expect("results lock").push(report),
                    Err(e) => {
                        failure.lock().expect("failure lock").get_or_insert(e);
                        break;
                    }
                }
            });
        }
    })
    .map_err(|_| EngineError::WorkerPanic)?;

    if let Some(e) = failure.into_inner().expect("failure lock") {
        return Err(e);
    }
    let mut per_tile = results.into_inner().expect("results lock");
    per_tile.sort_by_key(|t| t.id);

    let report = RunReport {
        outputs: tile_plan.total_outputs(),
        tiles: tile_plan.tile_count(),
        threads: worker_count,
        backend,
        halo_elements: per_tile.iter().map(|t| t.halo_elements).sum(),
        elapsed: started.elapsed(),
        per_tile,
    };
    Ok(EngineRun { outputs, report })
}

pub(crate) fn threads_for(requested: usize, tiles: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, tiles.max(1))
}

/// Runs one band against the full in-core input.
fn execute_tile<K: RowKernel>(
    tile: &Tile,
    offsets: &[Point],
    input: &InputGrid<'_>,
    kernel: &K,
    out: &mut [f64],
) -> Result<TileReport, EngineError> {
    let tile_started = Instant::now();
    let idx = tile
        .iter_domain
        .index()
        .map_err(|e| EngineError::Plan(e.into()))?;
    let win = RankWindow {
        idx: input.index(),
        vals: input.values(),
        base: 0,
    };
    let stats = execute_rows(idx.rows(), 0, offsets, &win, kernel, out)?;

    Ok(TileReport {
        id: tile.id,
        outputs: tile.len,
        halo_elements: tile
            .halo_domain
            .count()
            .map_err(|e| EngineError::Plan(e.into()))?,
        sweep_rows: stats.sweep,
        fast_rows: stats.fast,
        gather_rows: stats.gather,
        elapsed: tile_started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::StencilSpec;
    use stencil_kernels::KernelExpr;
    use stencil_polyhedral::Polyhedron;

    fn plan_5pt(rows: i64, cols: i64) -> MemorySystemPlan {
        let spec = StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, rows - 2), (1, cols - 2)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap();
        MemorySystemPlan::generate(&spec).unwrap()
    }

    fn ramp(len: u64) -> Vec<f64> {
        (0..len).map(|r| (r % 97) as f64 * 0.5 - 11.0).collect()
    }

    #[test]
    fn engine_matches_direct_loop() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let compute = |w: &[f64]| w[2] + 0.25 * (w[0] + w[1] + w[3] + w[4]) - 4.0 * w[2] * 0.25;

        let run = run_plan(&plan, &input, &compute, &EngineConfig::new().tiles(3)).unwrap();

        // Direct nested-loop reference in user offset order:
        // (-1,0), (0,-1), (0,0), (0,1), (1,0).
        let iter_idx = plan.iteration_domain().index().unwrap();
        let mut c = iter_idx.cursor();
        let mut expect = Vec::new();
        while let Some(p) = c.point(&iter_idx) {
            let at = |dr: i64, dc: i64| {
                input
                    .value_at(&Point::new(&[p[0] + dr, p[1] + dc]))
                    .unwrap()
            };
            expect.push(compute(&[
                at(-1, 0),
                at(0, -1),
                at(0, 0),
                at(0, 1),
                at(1, 0),
            ]));
            c.advance(&iter_idx);
        }
        assert_eq!(run.outputs, expect);
        assert_eq!(run.report.outputs, 18 * 22);
        assert_eq!(run.report.tiles, 3);
        assert_eq!(run.report.backend, KernelBackend::Closure);
    }

    #[test]
    fn tile_counts_do_not_change_results() {
        let plan = plan_5pt(17, 13);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let compute = |w: &[f64]| w.iter().sum::<f64>() * 0.2;
        let reference = run_plan(&plan, &input, &compute, &EngineConfig::new().tiles(1))
            .unwrap()
            .outputs;
        for tiles in [2usize, 3, 5, 8, 100] {
            for threads in [1usize, 2, 4] {
                let run = run_plan(
                    &plan,
                    &input,
                    &compute,
                    &EngineConfig::new().tiles(tiles).threads(threads),
                )
                .unwrap();
                assert_eq!(run.outputs, reference, "tiles={tiles} threads={threads}");
            }
        }
    }

    #[test]
    fn deprecated_with_tiles_still_builds_the_same_config() {
        #[allow(deprecated)]
        let old = EngineConfig::with_tiles(7).threads(2);
        let new = EngineConfig::new().tiles(7).threads(2);
        assert_eq!(old.tiles, new.tiles);
        assert_eq!(old.threads, new.threads);
        assert_eq!(old.backend, new.backend);
    }

    #[test]
    fn compiled_backend_sweeps_and_matches_the_closure() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let compute = |w: &[f64]| w[2] + 0.2 * (w[0] + w[4] + w[3] + w[1] - 4.0 * w[2]);
        let expr = {
            let [n, w, c, e, s] = KernelExpr::taps::<5>();
            c.clone() + 0.2 * (n + s + e + w - 4.0 * c)
        };
        let kernel = CompiledKernel::compile_checked(&expr, 5, &compute).unwrap();

        let reference = run_plan(&plan, &input, &compute, &EngineConfig::new().tiles(3)).unwrap();
        let compiled =
            run_plan_compiled(&plan, &input, &kernel, &EngineConfig::new().tiles(3)).unwrap();
        assert_eq!(compiled.outputs, reference.outputs);
        assert_eq!(compiled.report.backend, KernelBackend::Compiled);
        // Every interior row swept; the closure run swept none.
        let sweep: u64 = compiled.report.per_tile.iter().map(|t| t.sweep_rows).sum();
        let fast: u64 = compiled.report.per_tile.iter().map(|t| t.fast_rows).sum();
        assert_eq!(sweep, 18);
        assert_eq!(fast, 0);
        assert_eq!(
            reference
                .report
                .per_tile
                .iter()
                .map(|t| t.sweep_rows)
                .sum::<u64>(),
            0
        );

        // Forcing the Closure backend routes the same bytecode through
        // the per-element path — identical values, zero sweeps.
        let scalar = run_plan_compiled(
            &plan,
            &input,
            &kernel,
            &EngineConfig::new().tiles(3).backend(KernelBackend::Closure),
        )
        .unwrap();
        assert_eq!(scalar.outputs, reference.outputs);
        assert_eq!(scalar.report.backend, KernelBackend::Closure);
        assert_eq!(
            scalar
                .report
                .per_tile
                .iter()
                .map(|t| t.sweep_rows)
                .sum::<u64>(),
            0
        );
    }

    #[test]
    fn compiled_kernel_window_is_validated_against_the_plan() {
        let plan = plan_5pt(12, 12);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let three_tap = CompiledKernel::compile(&KernelExpr::window_sum(3), 3).unwrap();
        let e = run_plan_compiled(&plan, &input, &three_tap, &EngineConfig::default()).unwrap_err();
        match e {
            EngineError::KernelCompile { detail } => {
                assert!(detail.contains("3 taps"), "{detail}");
                assert!(detail.contains("5 points"), "{detail}");
            }
            other => panic!("expected KernelCompile, got {other:?}"),
        }
    }

    #[test]
    fn input_size_is_validated() {
        let plan = plan_5pt(10, 10);
        let other = Polyhedron::grid(&[4, 4]).index().unwrap();
        let vals = ramp(other.len());
        let input = InputGrid::new(&other, &vals).unwrap();
        let e = run_plan(&plan, &input, &|w| w[0], &EngineConfig::default()).unwrap_err();
        assert!(matches!(e, EngineError::InputSizeMismatch { .. }));
    }

    #[test]
    fn default_config_follows_stream_count() {
        let plan = plan_5pt(12, 12).with_offchip_streams(2).unwrap();
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let run = run_plan(&plan, &input, &|w| w[2], &EngineConfig::default()).unwrap();
        assert_eq!(run.report.tiles, 2);
    }

    #[test]
    fn worker_panic_is_reported() {
        let plan = plan_5pt(10, 10);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let compute = |_: &[f64]| -> f64 { panic!("datapath bug") };
        let e = run_plan(&plan, &input, &compute, &EngineConfig::default()).unwrap_err();
        assert_eq!(e, EngineError::WorkerPanic);
    }

    #[test]
    fn scrambled_input_index_reports_missing_point() {
        use stencil_polyhedral::DomainIndex;
        // An input index whose prefix-5 row is shifted left by one:
        // same point count (so the size check passes), broken coverage.
        // Output rows reading (5, 9) cannot batch; the gather fallback
        // must name the exact missing point instead of reading garbage.
        let plan = plan_5pt(10, 10);
        let mut rows = plan.input_domain().index().unwrap().rows().to_vec();
        assert_eq!((rows[5].lo, rows[5].hi), (0, 9));
        rows[5].lo = -1;
        rows[5].hi = 8;
        let idx = DomainIndex::from_rows(2, rows);
        let vals = ramp(idx.len());
        let input = InputGrid::new(&idx, &vals).unwrap();
        let e = run_plan(&plan, &input, &|w| w[2], &EngineConfig::new().tiles(1)).unwrap_err();
        match e {
            EngineError::MissingInput { point } => assert_eq!(point, "(5, 9)"),
            other => panic!("expected MissingInput, got {other:?}"),
        }
    }

    #[test]
    fn report_accounts_all_rows_fast_for_rect_grids() {
        let plan = plan_5pt(16, 16);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let run = run_plan(&plan, &input, &|w| w[2], &EngineConfig::new().tiles(2)).unwrap();
        let fast: u64 = run.report.per_tile.iter().map(|t| t.fast_rows).sum();
        let gather: u64 = run.report.per_tile.iter().map(|t| t.gather_rows).sum();
        assert_eq!(fast, 14);
        assert_eq!(gather, 0);
        assert!(run.report.halo_elements > in_idx.len());
        assert!(run.report.fetch_overhead(in_idx.len()) > 1.0);
        assert!(run.report.throughput() > 0.0);
    }
}
