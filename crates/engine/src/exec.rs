//! Legacy in-core entry points, kept as thin delegates over the
//! unified [`Session`] layer.
//!
//! Every function here resolves to the same `Session` builder calls —
//! new code should use [`Session`] directly, which also unlocks the
//! capabilities the legacy matrix cannot express (temporal kernel
//! chaining, mode-independent sources and sinks).

use stencil_core::{MemorySystemPlan, TilePlan};

use crate::compile::{CompiledKernel, KernelBackend};
use crate::error::EngineError;
use crate::input::InputGrid;
use crate::report::RunReport;
use crate::session::{ExecMode, Session, SessionKernel};

/// Engine tuning knobs.
///
/// Build with the uniform chained builder:
/// `EngineConfig::new().tiles(4).threads(2).backend(KernelBackend::Compiled)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    /// Number of row bands. `None` applies the Appendix 9.4 sharding
    /// rule: one band per off-chip stream of the plan.
    pub tiles: Option<usize>,
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
    /// How the kernel datapath executes on the compiled entry points
    /// ([`run_plan_compiled`]); the closure entry points ignore it.
    pub backend: KernelBackend,
}

impl EngineConfig {
    /// The all-defaults config — the anchor of the chained builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an explicit band count.
    #[must_use]
    pub fn tiles(mut self, tiles: usize) -> Self {
        self.tiles = Some(tiles);
        self
    }

    /// Sets the worker thread count (`0` = machine parallelism).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the kernel backend for the compiled entry points.
    #[must_use]
    pub fn backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// A config with an explicit band count.
    #[deprecated(note = "use the uniform builder: `EngineConfig::new().tiles(n)`")]
    #[must_use]
    pub fn with_tiles(tiles: usize) -> Self {
        Self::new().tiles(tiles)
    }

    /// The [`ExecMode`] this config's band setting maps to.
    fn mode(&self) -> ExecMode {
        match self.tiles {
            None => ExecMode::InCore,
            Some(tiles) => ExecMode::Tiled { tiles },
        }
    }
}

/// The result of an engine run.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Output values in lexicographic iteration order — directly
    /// comparable to `stencil_kernels::run_golden` and to the outputs
    /// reconstructed from the cycle-accurate machine.
    pub outputs: Vec<f64>,
    /// Throughput statistics.
    pub report: RunReport,
}

/// Executes `plan`'s kernel over `input` with the window datapath
/// `compute` (window values in the stencil's *declared/user* reference
/// order, as [`stencil_core::FilterPlan::user_index`] defines it).
///
/// # Errors
///
/// * [`EngineError::InputSizeMismatch`] if `input` does not cover the
///   plan's input domain.
/// * [`EngineError::MissingInput`] if a window tap leaves the input
///   domain (inconsistent input index).
/// * [`EngineError::Plan`] on tiling failures.
/// * [`EngineError::WorkerPanic`] if `compute` panicked on a worker.
#[deprecated(note = "use `Session::new(plan).kernel(SessionKernel::Closure(compute)).run(input)`")]
pub fn run_plan<C>(
    plan: &MemorySystemPlan,
    input: &InputGrid<'_>,
    compute: &C,
    config: &EngineConfig,
) -> Result<EngineRun, EngineError>
where
    C: Fn(&[f64]) -> f64 + Sync,
{
    Session::new(plan)
        .kernel(SessionKernel::Closure(compute))
        .mode(config.mode())
        .threads(config.threads)
        .run(input)?
        .into_engine_run()
}

/// Executes with a pre-computed tiling (e.g. to sweep band counts
/// without re-tiling, or to inspect the [`TilePlan`] first).
///
/// # Errors
///
/// As [`run_plan`], minus tiling failures.
#[deprecated(note = "use `Session::new(plan).kernel(..).tile_plan(tile_plan).run(input)`")]
pub fn run_tiled<C>(
    plan: &MemorySystemPlan,
    tile_plan: &TilePlan,
    input: &InputGrid<'_>,
    compute: &C,
    threads: usize,
) -> Result<EngineRun, EngineError>
where
    C: Fn(&[f64]) -> f64 + Sync,
{
    Session::new(plan)
        .kernel(SessionKernel::Closure(compute))
        .tile_plan(tile_plan)
        .threads(threads)
        .run(input)?
        .into_engine_run()
}

/// Executes `plan`'s kernel over `input` through pre-compiled bytecode:
/// interior rows run the vectorized row sweep when
/// `config.backend == KernelBackend::Compiled`, or the per-element
/// bytecode interpreter under `KernelBackend::Closure` (useful to
/// isolate the sweep in cross-checks).
///
/// `kernel` must have been compiled for this plan's window size
/// (`kernel.taps() == plan.port_count()`), e.g. via
/// [`CompiledKernel::for_benchmark`].
///
/// # Errors
///
/// As [`run_plan`], plus [`EngineError::KernelCompile`] when the
/// kernel's tap count does not match the plan's window.
#[deprecated(
    note = "use `Session::new(plan).kernel(SessionKernel::Compiled(kernel)).backend(..).run(input)`"
)]
pub fn run_plan_compiled(
    plan: &MemorySystemPlan,
    input: &InputGrid<'_>,
    kernel: &CompiledKernel,
    config: &EngineConfig,
) -> Result<EngineRun, EngineError> {
    Session::new(plan)
        .kernel(SessionKernel::Compiled(kernel))
        .backend(config.backend)
        .mode(config.mode())
        .threads(config.threads)
        .run(input)?
        .into_engine_run()
}

/// [`run_plan_compiled`] with a pre-computed tiling; band count comes
/// from `tile_plan`, threads and backend from `config`.
///
/// # Errors
///
/// As [`run_plan_compiled`], minus tiling failures.
#[deprecated(
    note = "use `Session::new(plan).kernel(SessionKernel::Compiled(kernel)).tile_plan(..).run(input)`"
)]
pub fn run_tiled_compiled(
    plan: &MemorySystemPlan,
    tile_plan: &TilePlan,
    input: &InputGrid<'_>,
    kernel: &CompiledKernel,
    config: &EngineConfig,
) -> Result<EngineRun, EngineError> {
    Session::new(plan)
        .kernel(SessionKernel::Compiled(kernel))
        .backend(config.backend)
        .tile_plan(tile_plan)
        .threads(config.threads)
        .run(input)?
        .into_engine_run()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use stencil_core::StencilSpec;
    use stencil_kernels::KernelExpr;
    use stencil_polyhedral::{Point, Polyhedron};

    fn plan_5pt(rows: i64, cols: i64) -> MemorySystemPlan {
        let spec = StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, rows - 2), (1, cols - 2)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap();
        MemorySystemPlan::generate(&spec).unwrap()
    }

    fn ramp(len: u64) -> Vec<f64> {
        (0..len).map(|r| (r % 97) as f64 * 0.5 - 11.0).collect()
    }

    fn compute(w: &[f64]) -> f64 {
        w[2] + 0.25 * (w[0] + w[1] + w[3] + w[4] - 4.0 * w[2])
    }

    #[test]
    fn deprecated_with_tiles_still_builds_the_same_config() {
        let old = EngineConfig::with_tiles(7).threads(2);
        let new = EngineConfig::new().tiles(7).threads(2);
        assert_eq!(old.tiles, new.tiles);
        assert_eq!(old.threads, new.threads);
        assert_eq!(old.backend, new.backend);
    }

    #[test]
    fn legacy_closure_delegates_match_the_session() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();

        let session = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .mode(ExecMode::Tiled { tiles: 3 })
            .run(&input)
            .unwrap();
        let legacy = run_plan(&plan, &input, &compute, &EngineConfig::new().tiles(3)).unwrap();
        assert_eq!(legacy.outputs, session.outputs);
        assert_eq!(legacy.report.tiles, 3);
        assert_eq!(legacy.report.backend, KernelBackend::Closure);

        let tile_plan = plan.tile_plan(4).unwrap();
        let tiled = run_tiled(&plan, &tile_plan, &input, &compute, 2).unwrap();
        assert_eq!(tiled.outputs, session.outputs);
        assert_eq!(tiled.report.tiles, 4);
    }

    #[test]
    fn legacy_compiled_delegates_match_the_session() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let [t0, t1, t2, t3, t4] = KernelExpr::taps::<5>();
        let expr = t2.clone() + 0.25 * (t0 + t1 + t3 + t4 - 4.0 * t2);
        let kernel = CompiledKernel::compile_checked(&expr, 5, &compute).unwrap();

        let session = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .mode(ExecMode::Tiled { tiles: 3 })
            .run(&input)
            .unwrap();
        let legacy =
            run_plan_compiled(&plan, &input, &kernel, &EngineConfig::new().tiles(3)).unwrap();
        assert_eq!(legacy.outputs, session.outputs);
        assert_eq!(legacy.report.backend, KernelBackend::Compiled);

        let tile_plan = plan.tile_plan(3).unwrap();
        let tiled = run_tiled_compiled(
            &plan,
            &tile_plan,
            &input,
            &kernel,
            &EngineConfig::new().backend(KernelBackend::Closure),
        )
        .unwrap();
        assert_eq!(tiled.outputs, session.outputs);
        assert_eq!(tiled.report.backend, KernelBackend::Closure);
        assert_eq!(
            tiled
                .report
                .per_tile
                .iter()
                .map(|t| t.sweep_rows)
                .sum::<u64>(),
            0
        );
    }
}
