//! # stencil-engine
//!
//! A high-throughput *software* execution backend for stencil plans —
//! the fast sibling of `stencil_sim`'s cycle-accurate machine.
//!
//! Where the simulator advances one element per simulated clock cycle
//! through FIFOs and data filters, the engine executes the same
//! plan-derived computation with a tight line-buffer loop:
//!
//! * the iteration domain is partitioned into row bands with correct
//!   halo overlap ([`stencil_core::TilePlan`], Appendix 9.4's
//!   one-band-per-off-chip-stream sharding rule by default);
//! * each band runs a batched per-row inner loop — every window tap
//!   reduces to a base rank + offset into the flat input stream, so the
//!   hot loop is pure indexed arithmetic with no per-element channel
//!   simulation;
//! * bands execute in parallel on scoped worker threads pulling from a
//!   shared work queue, writing disjoint slices of one output buffer;
//! * kernels authored as [`stencil_kernels::KernelExpr`] trees compile
//!   at plan time to flat stack bytecode ([`CompiledKernel`]) and run
//!   through a vectorized *row sweep*: each window tap binds to a
//!   column-shifted contiguous slice of the resident rows and the
//!   bytecode evaluates over fixed-width lane chunks the compiler can
//!   autovectorize — bit-identical to the closure datapath by
//!   construction ([`CompiledKernel::compile_checked`]).
//!
//! Every mode × backend combination executes through one composable
//! [`Session`] pipeline layer: `Session::new(&plan).kernel(..)
//! .backend(..).mode(..).threads(..)` resolves the axes orthogonally,
//! and [`Session::then`] chains kernels *temporally* — stage `k`'s
//! output rows stream into stage `k + 1` through the same bounded
//! halo-window machinery, so a chained pipeline keeps roughly the sum
//! of the stages' halo windows resident instead of any full
//! intermediate grid. [`Session::iterate`] closes that chain into a
//! time-stepping ring (the same kernel applied T times to its own
//! output) and [`Session::iterate_until`] adds epsilon-based
//! convergence early exit; both report an [`IterateReport`].
//!
//! The engine consumes the same [`MemorySystemPlan`] interface as the
//! simulator and returns the output grid plus a [`RunReport`] with
//! throughput figures, so results are directly comparable — the
//! differential test harness checks engine output bit-for-bit against
//! both the golden executor and the machine.
//!
//! # Example
//!
//! ```
//! use stencil_core::{MemorySystemPlan, StencilSpec};
//! use stencil_engine::{InputGrid, Session, SessionKernel};
//! use stencil_polyhedral::{Point, Polyhedron};
//!
//! let spec = StencilSpec::new(
//!     "blur",
//!     Polyhedron::rect(&[(1, 14), (1, 14)]),
//!     vec![Point::new(&[-1, 0]), Point::new(&[0, 0]), Point::new(&[1, 0])],
//! )?;
//! let plan = MemorySystemPlan::generate(&spec)?;
//! let index = plan.input_domain().index()?;
//! let values: Vec<f64> = (0..index.len()).map(|r| r as f64).collect();
//! let input = InputGrid::new(&index, &values)?;
//! let sum = |w: &[f64]| w.iter().sum();
//! let run = Session::new(&plan)
//!     .kernel(SessionKernel::Closure(&sum))
//!     .run(&input)?;
//! assert_eq!(run.outputs.len(), 14 * 14);
//! assert_eq!(run.report.outputs(), 14 * 14);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![deny(clippy::cast_possible_truncation)]

mod chain;
mod compile;
mod error;
mod format;
mod input;
mod report;
mod rowexec;
mod serve;
mod session;
mod stream;
mod unroll;

pub use compile::{CompiledKernel, Datapath, KernelBackend};
pub use error::EngineError;
pub use format::{
    inspect_grid, pack_grid, GridFormatError, GridHeader, MappedGrid, SGRID_DTYPE_F64, SGRID_MAGIC,
    SGRID_MAX_DIMS, SGRID_VERSION,
};
pub use input::InputGrid;
pub use report::{GridIoReport, RunReport, StreamReport, TileReport};
pub use serve::{
    finite_throughput, JobId, JobInput, JobRequest, JobResult, RejectReason, Rejection,
    ServiceConfig, ServiceFront, ServiceOutcome, ShardPolicy, Submission,
};
pub use session::{
    ExecMode, IterateReport, Session, SessionKernel, SessionReport, SessionRun, StagePlan,
    StageReport,
};
pub use stream::{
    FnSource, MmapSink, MmapSource, ReadSource, RowSink, RowSource, SliceSource, VecSink, WriteSink,
};
pub use unroll::{max_rel_error, UnrolledProgram, DEFAULT_UNROLL};
