//! Throughput reporting, shaped after `stencil_sim::RunStats` so
//! engine and machine runs read side by side.

use std::fmt;
use std::time::Duration;

use stencil_telemetry::{EngineMetrics, StreamMetrics, TileMetrics};

use crate::compile::{Datapath, KernelBackend};

/// Display suffix describing a non-default sweep shape: empty for the
/// baseline single-output f64 sweep, otherwise the unroll factor
/// and/or datapath in parentheses.
fn shape_suffix(unroll: usize, datapath: Datapath) -> String {
    match (unroll > 1, datapath) {
        (false, Datapath::F64) => String::new(),
        (true, Datapath::F64) => format!(" (unroll {unroll})"),
        (false, Datapath::F32) => " (f32)".to_string(),
        (true, Datapath::F32) => format!(" (unroll {unroll}, f32)"),
    }
}

/// Per-band execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TileReport {
    /// Band id (outermost-dimension order).
    pub id: usize,
    /// Outputs this band produced.
    pub outputs: u64,
    /// Input elements in the band's halo (its off-chip traffic share).
    pub halo_elements: u64,
    /// Output rows evaluated by the vectorized bytecode row sweep.
    pub sweep_rows: u64,
    /// Output rows executed on the batched fast path (every window tap
    /// contiguous in the input stream).
    pub fast_rows: u64,
    /// Output rows that fell back to per-point gathers.
    pub gather_rows: u64,
    /// Wall-clock time this band's worker spent executing it.
    pub elapsed: Duration,
}

/// Statistics of one engine run — the software analogue of the
/// simulator's `RunStats`: `outputs` matches the machine's output
/// count, `halo_elements` plays the role of `inputs_streamed`, and
/// wall-clock throughput replaces cycle counts.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Total outputs produced (size of the iteration domain).
    pub outputs: u64,
    /// Bands executed.
    pub tiles: usize,
    /// Worker threads used.
    pub threads: usize,
    /// How the kernel datapath executed.
    pub backend: KernelBackend,
    /// Output rows per grouped sweep dispatch (1 = the classic
    /// single-output sweep).
    pub unroll: usize,
    /// Arithmetic precision the kernel evaluated in.
    pub datapath: Datapath,
    /// Total input elements fetched across bands, halo overlap counted
    /// per band — the off-chip traffic of the sharded execution.
    pub halo_elements: u64,
    /// End-to-end wall-clock time (tiling + execution).
    pub elapsed: Duration,
    /// Per-band breakdown, band order.
    pub per_tile: Vec<TileReport>,
}

impl RunReport {
    /// Outputs per wall-clock second. Returns `0.0` when the elapsed
    /// time is below timer resolution — a rate that short is unknown,
    /// and infinity poisons every downstream aggregate (and cannot be
    /// serialized to JSON).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.outputs as f64 / secs
        } else {
            0.0
        }
    }

    /// The run's counters in the `stencil-telemetry` wire schema, ready
    /// for JSON serialization and report-level validation.
    #[must_use]
    pub fn metrics(&self) -> EngineMetrics {
        EngineMetrics {
            outputs: self.outputs,
            tiles: self.tiles,
            threads: self.threads,
            backend: self.backend.as_str().to_string(),
            unroll: self.unroll as u64,
            datapath: self.datapath.as_str().to_string(),
            halo_elements: self.halo_elements,
            elapsed_ns: duration_ns(self.elapsed),
            throughput: self.throughput(),
            per_tile: self
                .per_tile
                .iter()
                .map(|t| TileMetrics {
                    id: t.id,
                    outputs: t.outputs,
                    halo_elements: t.halo_elements,
                    sweep_rows: t.sweep_rows,
                    fast_rows: t.fast_rows,
                    gather_rows: t.gather_rows,
                    elapsed_ns: duration_ns(t.elapsed),
                })
                .collect(),
        }
    }

    /// Ratio of fetched inputs to distinct inputs a single band would
    /// fetch — 1.0 for one band, growing with halo overlap. Mirrors the
    /// off-chip bandwidth multiplier of the Appendix 9.4 tradeoff.
    #[must_use]
    pub fn fetch_overhead(&self, input_points: u64) -> f64 {
        if input_points == 0 {
            1.0
        } else {
            self.halo_elements as f64 / input_points as f64
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine run: {} outputs on {} band(s) x {} thread(s) [{} kernel]{} in {:?} ({:.1} Melem/s)",
            self.outputs,
            self.tiles,
            self.threads,
            self.backend,
            shape_suffix(self.unroll, self.datapath),
            self.elapsed,
            self.throughput() / 1e6
        )?;
        for t in &self.per_tile {
            writeln!(
                f,
                "  band {:>2}: {:>9} outputs, {:>9} halo elems, rows {}V/{}F/{}G, {:?}",
                t.id,
                t.outputs,
                t.halo_elements,
                t.sweep_rows,
                t.fast_rows,
                t.gather_rows,
                t.elapsed
            )?;
        }
        let m = self.metrics();
        let sweep: u64 = m.per_tile.iter().map(|t| t.sweep_rows).sum();
        let fast: u64 = m.per_tile.iter().map(|t| t.fast_rows).sum();
        let gather: u64 = m.per_tile.iter().map(|t| t.gather_rows).sum();
        writeln!(
            f,
            "  metrics: {:.0} elem/s, rows {sweep} sweep / {fast} fast / {gather} gather, {} halo elems",
            m.throughput, m.halo_elements
        )
    }
}

/// Statistics of one out-of-core streaming run
/// ([`crate::ExecMode::Streaming`]). Where [`RunReport`] measures an
/// in-core
/// run, this additionally accounts the stream endpoints (rows pulled
/// and pushed) and the memory story: `peak_resident` is the high-water
/// mark of resident input values and `resident_bound` the planned
/// Sec. 2.3 window — halo rows × widest resident row, maximized over
/// bands.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Total outputs produced (size of the iteration domain).
    pub outputs: u64,
    /// Bands executed.
    pub bands: usize,
    /// Worker threads used per band.
    pub threads: usize,
    /// How the kernel datapath executed.
    pub backend: KernelBackend,
    /// Output rows per grouped sweep dispatch (1 = the classic
    /// single-output sweep).
    pub unroll: usize,
    /// Arithmetic precision the kernel evaluated in.
    pub datapath: Datapath,
    /// Requested band height in outermost-dimension rows (0 = the
    /// plan's default one-band-per-off-chip-stream sharding).
    pub chunk_rows: u64,
    /// Input index rows pulled from the row source.
    pub rows_in: u64,
    /// Input values pulled from the row source.
    pub values_in: u64,
    /// Output rows pushed to the row sink.
    pub rows_out: u64,
    /// High-water mark of resident input values.
    pub peak_resident: u64,
    /// Planned residency bound: max over bands of halo rows × widest
    /// resident row length.
    pub resident_bound: u64,
    /// Output rows evaluated by the vectorized bytecode row sweep.
    pub sweep_rows: u64,
    /// Output rows executed on the batched fast path.
    pub fast_rows: u64,
    /// Output rows that fell back to per-point gathers.
    pub gather_rows: u64,
    /// End-to-end wall-clock time (tiling + streaming + execution).
    pub elapsed: Duration,
}

impl StreamReport {
    /// Outputs per wall-clock second; `0.0` below timer resolution, as
    /// [`RunReport::throughput`].
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.outputs as f64 / secs
        } else {
            0.0
        }
    }

    /// True when the measured peak residency honored the planned halo
    /// window — the invariant the telemetry validator also enforces.
    #[must_use]
    pub fn within_residency_bound(&self) -> bool {
        self.peak_resident <= self.resident_bound
    }

    /// The run's counters in the `stencil-telemetry` wire schema.
    #[must_use]
    pub fn metrics(&self) -> StreamMetrics {
        StreamMetrics {
            outputs: self.outputs,
            bands: self.bands,
            threads: self.threads,
            backend: self.backend.as_str().to_string(),
            unroll: self.unroll as u64,
            datapath: self.datapath.as_str().to_string(),
            chunk_rows: self.chunk_rows,
            rows_in: self.rows_in,
            values_in: self.values_in,
            rows_out: self.rows_out,
            peak_resident: self.peak_resident,
            resident_bound: self.resident_bound,
            sweep_rows: self.sweep_rows,
            fast_rows: self.fast_rows,
            gather_rows: self.gather_rows,
            elapsed_ns: duration_ns(self.elapsed),
            throughput: self.throughput(),
        }
    }
}

impl fmt::Display for StreamReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "streaming run: {} outputs on {} band(s) x {} thread(s) [{} kernel]{} in {:?} ({:.1} Melem/s)",
            self.outputs,
            self.bands,
            self.threads,
            self.backend,
            shape_suffix(self.unroll, self.datapath),
            self.elapsed,
            self.throughput() / 1e6
        )?;
        writeln!(
            f,
            "  resident: peak {} values (bound {}), {} rows / {} values in, {} rows out",
            self.peak_resident, self.resident_bound, self.rows_in, self.values_in, self.rows_out
        )?;
        writeln!(
            f,
            "  rows {} sweep / {} fast / {} gather",
            self.sweep_rows, self.fast_rows, self.gather_rows
        )
    }
}

/// Grid I/O accounting for a run driven through streaming endpoints:
/// how input values reached the engine (mapped pages vs copies pulled
/// through [`crate::RowSource::fill_row`]) and whether the sink was
/// finalized. The mmap fast path is *provably* zero-copy when
/// `values_copied == 0` with `values_mapped` covering the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridIoReport {
    /// Bytes of input file mapped into memory (header + payload);
    /// zero for non-mapped sources.
    pub bytes_mapped: u64,
    /// Input values consumed as slices of the mapped payload — never
    /// copied into the halo window.
    pub values_mapped: u64,
    /// Input values copied out of the source into engine-owned buffers.
    pub values_copied: u64,
    /// Output values pushed to the sink.
    pub output_values: u64,
    /// Whether [`crate::RowSink::finish`] ran to completion (flush /
    /// msync succeeded) — `false` means tail rows may not be durable.
    pub sink_finalized: bool,
}

impl GridIoReport {
    /// True when the input fed the engine without a single payload
    /// copy: everything arrived as mapped slices.
    #[must_use]
    pub fn zero_copy(&self) -> bool {
        self.values_copied == 0 && self.values_mapped > 0
    }

    /// The counters in the `stencil-telemetry` wire schema.
    #[must_use]
    pub fn metrics(&self) -> stencil_telemetry::GridIoMetrics {
        stencil_telemetry::GridIoMetrics {
            bytes_mapped: self.bytes_mapped,
            values_mapped: self.values_mapped,
            values_copied: self.values_copied,
            output_values: self.output_values,
            sink_finalized: self.sink_finalized,
        }
    }
}

impl fmt::Display for GridIoReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "grid io: {} bytes mapped, {} values mapped / {} copied in, {} values out{}",
            self.bytes_mapped,
            self.values_mapped,
            self.values_copied,
            self.output_values,
            if self.sink_finalized {
                ", sink finalized"
            } else {
                ", SINK NOT FINALIZED"
            }
        )
    }
}

/// Whole nanoseconds of `d`, saturating at `u64::MAX` (584 years).
pub(crate) fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            outputs: 1000,
            tiles: 2,
            threads: 2,
            backend: KernelBackend::Closure,
            unroll: 1,
            datapath: Datapath::F64,
            halo_elements: 1100,
            elapsed: Duration::from_millis(10),
            per_tile: vec![
                TileReport {
                    id: 0,
                    outputs: 500,
                    halo_elements: 550,
                    sweep_rows: 0,
                    fast_rows: 10,
                    gather_rows: 0,
                    elapsed: Duration::from_millis(5),
                },
                TileReport {
                    id: 1,
                    outputs: 500,
                    halo_elements: 550,
                    sweep_rows: 0,
                    fast_rows: 10,
                    gather_rows: 0,
                    elapsed: Duration::from_millis(5),
                },
            ],
        }
    }

    #[test]
    fn throughput_and_overhead() {
        let r = report();
        assert!((r.throughput() - 100_000.0).abs() < 1e-6);
        assert!((r.fetch_overhead(1000) - 1.1).abs() < 1e-12);
        assert!((r.fetch_overhead(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sub_resolution_elapsed_yields_zero_not_infinity() {
        let r = RunReport {
            elapsed: Duration::ZERO,
            ..report()
        };
        assert_eq!(r.throughput(), 0.0);
        assert!(r.throughput().is_finite());
        assert!(r.metrics().throughput.is_finite());
    }

    #[test]
    fn display_lists_bands() {
        let s = report().to_string();
        assert!(s.contains("2 band(s)"), "{s}");
        assert!(s.contains("[closure kernel]"), "{s}");
        assert!(s.contains("band  0"), "{s}");
        assert!(s.contains("band  1"), "{s}");
        assert!(s.contains("metrics: 100000 elem/s"), "{s}");
        assert!(s.contains("rows 0 sweep / 20 fast / 0 gather"), "{s}");
        let compiled = RunReport {
            backend: KernelBackend::Compiled,
            ..report()
        };
        assert!(compiled.to_string().contains("[compiled kernel]"));
    }

    #[test]
    fn display_appends_sweep_shape_only_when_non_default() {
        // The default shape keeps the exact legacy line.
        assert!(!report().to_string().contains("unroll"), "{}", report());
        let shaped = RunReport {
            backend: KernelBackend::Compiled,
            unroll: 4,
            datapath: Datapath::F32,
            ..report()
        };
        let s = shaped.to_string();
        assert!(s.contains("[compiled kernel] (unroll 4, f32)"), "{s}");
        let m = shaped.metrics();
        assert_eq!(m.unroll, 4);
        assert_eq!(m.datapath, "f32");
        let stream = StreamReport {
            unroll: 2,
            ..stream_report()
        };
        assert!(stream.to_string().contains("(unroll 2)"), "{stream}");
        assert_eq!(stream.metrics().unroll, 2);
        assert_eq!(stream.metrics().datapath, "f64");
    }

    fn stream_report() -> StreamReport {
        StreamReport {
            outputs: 1000,
            bands: 10,
            threads: 2,
            backend: KernelBackend::Compiled,
            unroll: 1,
            datapath: Datapath::F64,
            chunk_rows: 2,
            rows_in: 22,
            values_in: 1188,
            rows_out: 20,
            peak_resident: 216,
            resident_bound: 216,
            sweep_rows: 20,
            fast_rows: 0,
            gather_rows: 0,
            elapsed: Duration::from_millis(10),
        }
    }

    #[test]
    fn stream_report_throughput_bound_and_metrics() {
        let r = stream_report();
        assert!((r.throughput() - 100_000.0).abs() < 1e-6);
        assert!(r.within_residency_bound());
        let m = r.metrics();
        assert_eq!(m.peak_resident, 216);
        assert_eq!(m.resident_bound, 216);
        assert_eq!(m.elapsed_ns, 10_000_000);
        assert_eq!(
            stencil_telemetry::validate_report(&{
                let mut rep = stencil_telemetry::MetricsReport::new("s");
                rep.stream = Some(m);
                rep
            }),
            Vec::new()
        );
        let over = StreamReport {
            peak_resident: 217,
            ..stream_report()
        };
        assert!(!over.within_residency_bound());
        let s = over.to_string();
        assert!(s.contains("peak 217 values (bound 216)"), "{s}");
        assert!(s.contains("10 band(s)"), "{s}");
        assert!(s.contains("[compiled kernel]"), "{s}");
        assert!(s.contains("rows 20 sweep / 0 fast / 0 gather"), "{s}");
    }

    #[test]
    fn metrics_mirror_report() {
        let r = report();
        let m = r.metrics();
        assert_eq!(m.outputs, 1000);
        assert_eq!(m.tiles, 2);
        assert_eq!(m.threads, 2);
        assert_eq!(m.halo_elements, 1100);
        assert_eq!(m.elapsed_ns, 10_000_000);
        assert_eq!(m.per_tile.len(), 2);
        assert_eq!(m.per_tile[1].elapsed_ns, 5_000_000);
        assert_eq!(
            stencil_telemetry::validate_report(&{
                let mut rep = stencil_telemetry::MetricsReport::new("t");
                rep.engine = Some(m);
                rep
            }),
            Vec::new()
        );
    }
}
