//! Engine error type.

use std::error::Error;
use std::fmt;

use stencil_core::PlanError;

/// Errors produced while preparing or running a tiled execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// Tiling or domain analysis failed.
    Plan(PlanError),
    /// The input value buffer does not match the plan's input domain.
    InputSizeMismatch {
        /// Points in the plan's input domain.
        expected: u64,
        /// Values supplied.
        got: u64,
    },
    /// A window tap reads a point outside the supplied input domain.
    MissingInput {
        /// Display form of the out-of-domain point.
        point: String,
    },
    /// A worker thread panicked; the run produced no usable output.
    WorkerPanic,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plan(e) => write!(f, "tiling failed: {e}"),
            EngineError::InputSizeMismatch { expected, got } => write!(
                f,
                "input grid has {got} values but the plan's input domain has {expected} points"
            ),
            EngineError::MissingInput { point } => {
                write!(f, "window tap reads {point}, outside the input domain")
            }
            EngineError::WorkerPanic => write!(f, "a worker thread panicked"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EngineError::from(PlanError::NoReferences);
        assert!(e.to_string().contains("tiling failed"));
        assert!(e.source().is_some());
        assert!(EngineError::WorkerPanic.source().is_none());
        assert_eq!(
            EngineError::InputSizeMismatch {
                expected: 10,
                got: 4
            }
            .to_string(),
            "input grid has 4 values but the plan's input domain has 10 points"
        );
        assert!(EngineError::MissingInput {
            point: "(9, 9)".into()
        }
        .to_string()
        .contains("(9, 9)"));
    }
}
