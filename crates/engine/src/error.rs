//! Engine error type.

use std::error::Error;
use std::fmt;

use stencil_core::PlanError;

/// Errors produced while preparing or running a tiled execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// Tiling or domain analysis failed.
    Plan(PlanError),
    /// The input value buffer does not match the plan's input domain.
    InputSizeMismatch {
        /// Points in the plan's input domain.
        expected: u64,
        /// Values supplied.
        got: u64,
    },
    /// A window tap reads a point outside the supplied input domain.
    MissingInput {
        /// Display form of the out-of-domain point.
        point: String,
    },
    /// A worker thread panicked; the run produced no usable output.
    WorkerPanic,
    /// The domain holds more points than this target can address — the
    /// in-core paths need one `usize`-indexed slot per point. Stream the
    /// run instead ([`crate::ExecMode::Streaming`]) or use a 64-bit
    /// target.
    DomainTooLarge {
        /// Points the failing allocation or index would need to address.
        points: u64,
    },
    /// A domain index produced rank arithmetic that contradicts itself
    /// (e.g. hand-built rows with non-contiguous bases, or a resident
    /// window that does not cover an in-domain tap).
    InconsistentIndex {
        /// What the index got wrong.
        detail: String,
    },
    /// A kernel expression could not be lowered to bytecode (tap out of
    /// range, or the expression exceeds the evaluator's fixed stack or
    /// slot capacity).
    KernelCompile {
        /// What the compiler rejected.
        detail: String,
    },
    /// The compiled bytecode disagreed with the reference closure during
    /// construction-time validation — the expression does not mirror the
    /// closure's arithmetic.
    KernelMismatch {
        /// The diverging window and values.
        detail: String,
    },
    /// The input row source failed to produce a requested row.
    Source {
        /// The source's failure message.
        detail: String,
    },
    /// The output row sink rejected a finished row.
    Sink {
        /// The sink's failure message.
        detail: String,
    },
    /// A [`crate::Session`] was configured inconsistently (a stage with
    /// no kernel, a chained stage whose input domain does not match its
    /// upstream stage's iteration domain, ...).
    Config {
        /// What the configuration got wrong.
        detail: String,
    },
    /// An `.sgrid` grid file is malformed or does not match the run.
    GridFormat(crate::format::GridFormatError),
    /// A byte stream ended before yielding the requested values — the
    /// input was truncated, possibly mid-value.
    TruncatedInput {
        /// Values the caller asked for.
        values_expected: usize,
        /// Whole values actually decoded before the stream ended.
        values_got: usize,
        /// Leftover bytes of a final partial value (0..=7).
        trailing_bytes: usize,
    },
    /// A job's grid geometry overflows shard/admission arithmetic — the
    /// requested domain cannot be sized, let alone admitted.
    JobTooLarge {
        /// The extents whose element or byte count overflowed.
        extents: Vec<i64>,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plan(e) => write!(f, "tiling failed: {e}"),
            EngineError::InputSizeMismatch { expected, got } => write!(
                f,
                "input grid has {got} values but the plan's input domain has {expected} points"
            ),
            EngineError::MissingInput { point } => {
                write!(f, "window tap reads {point}, outside the input domain")
            }
            EngineError::WorkerPanic => write!(f, "a worker thread panicked"),
            EngineError::DomainTooLarge { points } => write!(
                f,
                "domain has {points} points, more than this target can address in memory"
            ),
            EngineError::InconsistentIndex { detail } => {
                write!(f, "inconsistent domain index: {detail}")
            }
            EngineError::KernelCompile { detail } => {
                write!(f, "kernel compilation failed: {detail}")
            }
            EngineError::KernelMismatch { detail } => {
                write!(f, "compiled kernel diverges from its closure: {detail}")
            }
            EngineError::Source { detail } => write!(f, "input row source failed: {detail}"),
            EngineError::Sink { detail } => write!(f, "output row sink failed: {detail}"),
            EngineError::Config { detail } => {
                write!(f, "invalid session configuration: {detail}")
            }
            EngineError::GridFormat(e) => write!(f, "grid file rejected: {e}"),
            EngineError::TruncatedInput {
                values_expected,
                values_got,
                trailing_bytes,
            } => write!(
                f,
                "input truncated: {values_got} of {values_expected} values read, \
                 {trailing_bytes} trailing bytes of a partial value"
            ),
            EngineError::JobTooLarge { extents } => write!(
                f,
                "job too large: grid extents {extents:?} overflow size arithmetic"
            ),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Plan(e) => Some(e),
            EngineError::GridFormat(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

impl From<crate::format::GridFormatError> for EngineError {
    fn from(e: crate::format::GridFormatError) -> Self {
        EngineError::GridFormat(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EngineError::from(PlanError::NoReferences);
        assert!(e.to_string().contains("tiling failed"));
        assert!(e.source().is_some());
        assert!(EngineError::WorkerPanic.source().is_none());
        assert_eq!(
            EngineError::InputSizeMismatch {
                expected: 10,
                got: 4
            }
            .to_string(),
            "input grid has 4 values but the plan's input domain has 10 points"
        );
        assert!(EngineError::MissingInput {
            point: "(9, 9)".into()
        }
        .to_string()
        .contains("(9, 9)"));
        assert!(EngineError::DomainTooLarge { points: u64::MAX }
            .to_string()
            .contains(&u64::MAX.to_string()));
        assert!(EngineError::InconsistentIndex {
            detail: "bases invert".into()
        }
        .to_string()
        .contains("bases invert"));
        assert!(EngineError::KernelCompile {
            detail: "stack too deep".into()
        }
        .to_string()
        .contains("compilation failed"));
        assert!(EngineError::KernelMismatch {
            detail: "window [0, 1]".into()
        }
        .to_string()
        .contains("diverges"));
        assert!(EngineError::Source {
            detail: "exhausted".into()
        }
        .to_string()
        .contains("source"));
        assert!(EngineError::Sink {
            detail: "full".into()
        }
        .to_string()
        .contains("sink"));
        assert!(EngineError::Config {
            detail: "stage has no kernel".into()
        }
        .to_string()
        .contains("invalid session configuration"));
        let g = EngineError::from(crate::format::GridFormatError::BadMagic);
        assert!(g.to_string().contains("grid file rejected"));
        assert!(g.source().is_some());
        assert_eq!(
            EngineError::TruncatedInput {
                values_expected: 8,
                values_got: 3,
                trailing_bytes: 5
            }
            .to_string(),
            "input truncated: 3 of 8 values read, 5 trailing bytes of a partial value"
        );
        assert!(EngineError::JobTooLarge {
            extents: vec![i64::MAX, 2]
        }
        .to_string()
        .contains("overflow"));
    }
}
