//! The unified execution layer: one [`Session`] builder behind every
//! backend × mode combination, with temporal kernel chaining.
//!
//! Before this layer the engine exposed an execution *matrix* — six
//! entry points crossing {closure, compiled} kernels with {in-core,
//! pre-tiled, streaming} drivers, each re-implementing backend
//! selection, tiling, and metrics. A [`Session`] factors those axes
//! orthogonally:
//!
//! ```text
//! Session::new(&plan)                  // what to compute
//!     .kernel(SessionKernel::..)       // datapath: closure or bytecode
//!     .backend(KernelBackend::..)      // how bytecode executes
//!     .mode(ExecMode::..)              // in-core / tiled / streaming
//!     .threads(n)                      // worker parallelism
//!     .run(&input)                     // or .run_streaming(src, sink)
//! ```
//!
//! Every backend × mode combination executes through this one builder;
//! there are no parallel entry points.
//!
//! # Temporal chaining
//!
//! [`Session::then`] appends a second kernel stage whose input is the
//! previous stage's output. Chains are *heterogeneous*: each stage
//! carries its own window shape and resolves its own backend. The
//! chained plan is derived by *eroding* the upstream iteration domain
//! by the new stage's own window ([`MemorySystemPlan::chain_next`]),
//! and the inter-stage reuse buffer is sized from that stage's own
//! reuse distances — the paper's Sec. 2.3 bound applied stage-wise —
//! which makes the stages line up exactly: stage `k + 1`'s input
//! domain equals stage `k`'s iteration domain, row for row. Each stage
//! independently executes compiled bytecode (when its
//! [`KernelStage::expr`] exists) or its closure, overridable per stage
//! via [`Session::stage_backend`]; [`Session::stage_plans`] exposes the
//! resolved per-stage recipe ([`StagePlan`]) without running. Under
//! [`ExecMode::Streaming`] the stages run as coupled halo windows of
//! possibly different reaches — stage `k`'s output rows feed stage
//! `k + 1` without materializing an intermediate grid, so a DENOISE →
//! 3x3-blur chain keeps roughly two (differently sized) halo windows
//! resident instead of a full frame. The session report carries each
//! stage's backend, window shape, and residency bound, and sums the
//! per-stage windows into one chained residency bound that the
//! telemetry validator re-checks per stage.
//!
//! # Iterative time-stepping
//!
//! [`Session::iterate`] generalizes the chain to a *self-chained ring*:
//! the single stage's own window erodes its own iteration domain, T
//! times, so a Jacobi/heat-style kernel runs for T time steps through
//! one plan built once. Under streaming, T coupled halo windows stay
//! resident — a T×halo budget instead of T−1 materialized grids.
//! [`Session::iterate_until`] adds an epsilon-based convergence early
//! exit: after each step a row-aligned max-abs-delta reduction compares
//! the step's output against its input, and stepping stops as soon as
//! the update falls to `epsilon`. Both report [`IterateReport`]
//! telemetry (steps, convergence, per-step residency, planned vs
//! observed peak) that the `IterateResidency` validator rule re-checks
//! from the serialized figures alone.
//!
//! Tile plans are hoisted to session construction: [`Session::then`]
//! and [`Session::iterate`] prebuild each stage's band schedule for the
//! session's mode, so a T-step run pays plan validation once, not per
//! step. The report's `tile_plans_built` counter pins this — a
//! well-prepared run reports 0.

use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::fmt;
use std::time::{Duration, Instant};

use stencil_core::{MemorySystemPlan, TilePlan};
use stencil_kernels::{ComputeFn, KernelStage};
use stencil_polyhedral::{lex_cmp, DomainIndex};

use crate::chain::{pump_chain, StreamStage};
use crate::compile::{CompiledKernel, Datapath, KernelBackend};
use crate::error::EngineError;
use crate::input::InputGrid;
use crate::report::{GridIoReport, RunReport, StreamReport};
use crate::rowexec::{
    check_kernel_window, execute_tiled, plan_offsets, ClosureKernel, RowKernel, Scalar32Kernel,
    ScalarKernel, SweepKernel, UnrolledKernel,
};
use crate::stream::{RowSink, RowSource, SliceSource, VecSink};
use crate::unroll::UnrolledProgram;

/// How a [`Session`] drives execution — orthogonal to the kernel and
/// backend choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Whole grids in RAM; band count follows the plan's off-chip
    /// stream sharding (Appendix 9.4).
    #[default]
    InCore,
    /// Whole grids in RAM with an explicit band count.
    Tiled {
        /// Number of row bands (clamped to at least 1).
        tiles: usize,
    },
    /// Bounded-memory streaming: only each stage's current halo window
    /// stays resident.
    Streaming {
        /// Band height in outermost-dimension rows; `None` applies the
        /// plan's one-band-per-off-chip-stream sharding.
        chunk_rows: Option<u64>,
    },
}

impl ExecMode {
    /// The mode's telemetry wire name.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            ExecMode::InCore => "incore",
            ExecMode::Tiled { .. } => "tiled",
            ExecMode::Streaming { .. } => "streaming",
        }
    }
}

/// The datapath of a session stage.
#[derive(Clone, Copy)]
pub enum SessionKernel<'a> {
    /// An arbitrary window closure; always evaluates per element.
    Closure(&'a (dyn Fn(&[f64]) -> f64 + Sync)),
    /// Pre-compiled bytecode; row-sweeps under
    /// [`KernelBackend::Compiled`].
    Compiled(&'a CompiledKernel),
}

impl fmt::Debug for SessionKernel<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionKernel::Closure(_) => f.write_str("SessionKernel::Closure"),
            SessionKernel::Compiled(k) => f
                .debug_tuple("SessionKernel::Compiled")
                .field(&k.taps())
                .finish(),
        }
    }
}

/// A plain-`fn` datapath, used by chained stages built from
/// [`KernelStage`] metadata.
struct FnKernel(ComputeFn);

impl RowKernel for FnKernel {
    fn eval_window(&self, window: &[f64]) -> f64 {
        (self.0)(window)
    }
}

/// A stage's datapath, covering both borrowed builder inputs and
/// kernels the chain owns (compiled on the fly from stage metadata).
enum StageKernel<'a> {
    Closure(&'a (dyn Fn(&[f64]) -> f64 + Sync)),
    ClosureFn(ComputeFn),
    Compiled(&'a CompiledKernel),
    CompiledOwned(Box<CompiledKernel>),
}

impl<'a> StageKernel<'a> {
    /// A second stage handle over the same datapath, for the
    /// self-chained ring [`Session::iterate`] builds: borrowed kernels
    /// are re-borrowed, owned bytecode is cloned.
    fn duplicate(&self) -> StageKernel<'a> {
        match self {
            StageKernel::Closure(c) => StageKernel::Closure(*c),
            StageKernel::ClosureFn(f) => StageKernel::ClosureFn(*f),
            StageKernel::Compiled(k) => StageKernel::Compiled(k),
            StageKernel::CompiledOwned(k) => StageKernel::CompiledOwned(k.clone()),
        }
    }
}

/// Which band schedule a stage's cached [`TilePlan`] was built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TileKey {
    /// In-core execution with this many row bands.
    Bands(usize),
    /// Streaming execution at this chunk height (`None` = the plan's
    /// one-band-per-off-chip-stream sharding).
    Chunk(Option<u64>),
}

/// A stage's plan: borrowed for stage 0, owned for chained stages
/// (derived by domain erosion).
enum PlanRef<'a> {
    Borrowed(&'a MemorySystemPlan),
    Owned(Box<MemorySystemPlan>),
}

impl PlanRef<'_> {
    fn get(&self) -> &MemorySystemPlan {
        match self {
            PlanRef::Borrowed(p) => p,
            PlanRef::Owned(p) => p,
        }
    }
}

/// One kernel application in the session's temporal pipeline.
struct Stage<'a> {
    plan: PlanRef<'a>,
    kernel: Option<StageKernel<'a>>,
    label: String,
    /// Per-stage backend override; `None` inherits the session default.
    backend: Option<KernelBackend>,
    /// Per-stage unroll override; `None` inherits the session default.
    unroll: Option<usize>,
    /// The stage's band schedules, one entry per [`TileKey`], built on
    /// first use and reused across runs — the hoist that keeps
    /// `iterate` from paying tile-plan validation per step. Keyed (not
    /// single-slot) so a session alternating `run()` and
    /// `run_streaming()` — the CLI crosscheck path — keeps both
    /// schedules warm instead of evicting one with the other.
    tile: RefCell<Vec<(TileKey, TilePlan)>>,
}

impl<'a> Stage<'a> {
    fn new(plan: PlanRef<'a>, kernel: Option<StageKernel<'a>>, label: String) -> Stage<'a> {
        Stage {
            plan,
            kernel,
            label,
            backend: None,
            unroll: None,
            tile: RefCell::new(Vec::new()),
        }
    }

    /// The stage's tile plan for `key`, building and caching it on
    /// miss. Misses during execution (as opposed to session
    /// construction) are tallied into `built` — the figure the
    /// `tile_plans_built` telemetry counter reports. Each distinct key
    /// gets its own cache entry; a key never evicts another.
    fn tiles(&self, key: TileKey, built: Option<&Cell<u64>>) -> Result<TilePlan, EngineError> {
        let mut slots = self.tile.borrow_mut();
        if let Some((_, tp)) = slots.iter().find(|(k, _)| *k == key) {
            return Ok(tp.clone());
        }
        let plan = self.plan.get();
        let tp = match key {
            TileKey::Bands(n) => plan.tile_plan(n)?,
            TileKey::Chunk(Some(n)) => plan.tile_plan_chunked(n)?,
            TileKey::Chunk(None) => plan.tile_plan_from_streams()?,
        };
        if let Some(c) = built {
            c.set(c.get() + 1);
        }
        slots.push((key, tp.clone()));
        Ok(tp)
    }
    /// The compiled form, when this stage has one (for window checks).
    fn compiled(&self) -> Option<&CompiledKernel> {
        match &self.kernel {
            Some(StageKernel::Compiled(k)) => Some(k),
            Some(StageKernel::CompiledOwned(k)) => Some(k),
            _ => None,
        }
    }

    /// The backend this stage actually executes under: closures always
    /// run per element; compiled kernels follow the session backend.
    fn effective_backend(&self, session_backend: KernelBackend) -> KernelBackend {
        match &self.kernel {
            Some(StageKernel::Compiled(_) | StageKernel::CompiledOwned(_)) => session_backend,
            _ => KernelBackend::Closure,
        }
    }

    /// The stage's row executor, or a config error if no kernel was
    /// supplied. `unroll`/`datapath` shape the compiled sweep: above-1
    /// unroll or the f32 datapath build a validated
    /// [`UnrolledProgram`] over the stage plan's window; closure
    /// datapaths reject f32 (no bytecode to narrow).
    fn row_kernel(
        &self,
        session_backend: KernelBackend,
        unroll: usize,
        datapath: Datapath,
    ) -> Result<Box<dyn RowKernel + '_>, EngineError> {
        crate::unroll::check_unroll(unroll)?;
        match &self.kernel {
            None => Err(EngineError::Config {
                detail: format!("stage '{}' has no kernel; call Session::kernel", self.label),
            }),
            Some(StageKernel::Closure(c)) => {
                self.require_f64(datapath)?;
                Ok(Box::new(ClosureKernel(*c)))
            }
            Some(StageKernel::ClosureFn(f)) => {
                self.require_f64(datapath)?;
                Ok(Box::new(FnKernel(*f)))
            }
            Some(StageKernel::Compiled(k)) => {
                self.compiled_row_kernel(k, session_backend, unroll, datapath)
            }
            Some(StageKernel::CompiledOwned(k)) => {
                self.compiled_row_kernel(k, session_backend, unroll, datapath)
            }
        }
    }

    /// Rejects the f32 datapath for closure stages: without bytecode
    /// there is nothing to narrow, and silently running the closure in
    /// f64 would misreport the precision.
    fn require_f64(&self, datapath: Datapath) -> Result<(), EngineError> {
        if datapath == Datapath::F32 {
            return Err(EngineError::Config {
                detail: format!(
                    "stage '{}': the f32 datapath requires a compiled kernel expression",
                    self.label
                ),
            });
        }
        Ok(())
    }

    /// The row executor of a compiled stage under the session's sweep
    /// shape. The default shape keeps the classic stack-bytecode sweep
    /// (or scalar bytecode under the `Closure` backend); any other
    /// shape builds the unrolled register program, validated against
    /// the bytecode at construction.
    fn compiled_row_kernel<'s>(
        &'s self,
        k: &'s CompiledKernel,
        session_backend: KernelBackend,
        unroll: usize,
        datapath: Datapath,
    ) -> Result<Box<dyn RowKernel + 's>, EngineError> {
        match session_backend {
            KernelBackend::Closure => Ok(match datapath {
                Datapath::F64 => Box::new(ScalarKernel(k)),
                Datapath::F32 => Box::new(Scalar32Kernel(k)),
            }),
            KernelBackend::Compiled => {
                if unroll > 1 || datapath == Datapath::F32 {
                    let offsets = plan_offsets(self.plan.get());
                    let prog = UnrolledProgram::build(k, &offsets, unroll, datapath)?;
                    Ok(Box::new(UnrolledKernel { ck: k, prog }))
                } else {
                    Ok(Box::new(SweepKernel(k)))
                }
            }
        }
    }
}

/// The resolved execution recipe of one pipeline stage: its own window
/// geometry (via the derived plan), the backend it will execute under,
/// and its sweep shape. A heterogeneous chain is a sequence of these —
/// each stage erodes the domain by *its* halo, sizes its inter-stage
/// reuse buffer from *its* reuse distances (the paper's Sec. 2.3 bound
/// applied stage-wise), and independently picks the compiled sweep
/// (when the stage carries a [`stencil_kernels::KernelExpr`]) or the
/// closure path.
///
/// Obtained from [`Session::stage_plans`]; every execution mode
/// (in-core, streaming, iterate) resolves stages through the same path,
/// so what `stage_plans` reports is exactly what a run executes.
pub struct StagePlan<'s> {
    /// The stage's label (kernel/plan name).
    pub label: &'s str,
    /// The stage's memory-system plan: domain already eroded by this
    /// stage's window, reuse buffers sized from this stage's own
    /// reuse distances.
    pub plan: &'s MemorySystemPlan,
    /// The backend this stage resolves to: per-stage override if set,
    /// else the session default — and always [`KernelBackend::Closure`]
    /// for stages without compiled bytecode.
    pub backend: KernelBackend,
    /// The compiled-sweep unroll factor this stage requests (ignored by
    /// closure stages, which always evaluate per element).
    pub unroll: usize,
    /// Arithmetic width of this stage's compiled sweeps.
    pub datapath: Datapath,
    /// The resolved row executor.
    kernel: Box<dyn RowKernel + 's>,
}

impl StagePlan<'_> {
    /// Number of taps in this stage's window.
    #[must_use]
    pub fn window_taps(&self) -> u64 {
        self.plan.port_count() as u64
    }

    /// The window's outermost-dimension span in rows — the halo reach
    /// this stage erodes its input by, and the number of upstream rows
    /// that must be resident for one output row under streaming.
    #[must_use]
    pub fn window_rows(&self) -> u64 {
        self.plan
            .window_extents()
            .first()
            .copied()
            .and_then(|e| u64::try_from(e).ok())
            .unwrap_or(1)
    }
}

impl fmt::Debug for StagePlan<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StagePlan")
            .field("label", &self.label)
            .field("backend", &self.backend)
            .field("unroll", &self.unroll)
            .field("datapath", &self.datapath)
            .field("window_taps", &self.window_taps())
            .field("window_rows", &self.window_rows())
            .finish_non_exhaustive()
    }
}

/// A composable execution pipeline over one or more kernel stages.
///
/// See the [module docs](self) for the builder shape. A session borrows
/// its stage-0 plan and kernel; chained stages own their derived plans.
pub struct Session<'a> {
    stages: Vec<Stage<'a>>,
    mode: ExecMode,
    threads: usize,
    backend: KernelBackend,
    /// Outputs produced per compiled-sweep dispatch (`1` = classic
    /// single-row sweep).
    unroll: usize,
    /// Arithmetic width of compiled sweeps.
    datapath: Datapath,
    tile_plan: Option<&'a TilePlan>,
    label: Option<String>,
    /// `Some(T)` when the stages form a [`Session::iterate`] ring.
    iterate_steps: Option<usize>,
    /// Tile plans constructed during execution (cache misses past the
    /// hoisted construction-time prefill), across this session's runs.
    tiles_built: Cell<u64>,
}

impl fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field(
                "stages",
                &self.stages.iter().map(|s| &s.label).collect::<Vec<_>>(),
            )
            .field("mode", &self.mode)
            .field("threads", &self.threads)
            .field("backend", &self.backend)
            .finish_non_exhaustive()
    }
}

impl<'a> Session<'a> {
    /// A single-stage session over `plan` with default mode
    /// ([`ExecMode::InCore`]), backend, and machine-chosen threads. A
    /// kernel must be supplied via [`Session::kernel`] before running.
    #[must_use]
    pub fn new(plan: &'a MemorySystemPlan) -> Self {
        Self {
            stages: vec![Stage::new(
                PlanRef::Borrowed(plan),
                None,
                plan.name().to_string(),
            )],
            mode: ExecMode::default(),
            threads: 0,
            backend: KernelBackend::default(),
            unroll: 1,
            datapath: Datapath::default(),
            tile_plan: None,
            label: None,
            iterate_steps: None,
            tiles_built: Cell::new(0),
        }
    }

    /// A single-stage session over `plan` whose datapath comes from
    /// `stage` metadata: when the stage carries a
    /// [`stencil_kernels::KernelExpr`] it is compiled to owned bytecode
    /// and validated against the stage closure, otherwise the closure
    /// runs directly. This is the fallible entry point the serving
    /// front-end uses — a benchmark whose expression fails checked
    /// compilation surfaces as a typed error instead of killing the
    /// worker.
    ///
    /// # Errors
    ///
    /// * [`EngineError::KernelCompile`] if the stage's expression fails
    ///   checked compilation.
    /// * [`EngineError::KernelMismatch`] if the compiled bytecode
    ///   diverges from the stage closure on the validation sweep.
    pub fn build(plan: &'a MemorySystemPlan, stage: &KernelStage) -> Result<Self, EngineError> {
        let kernel = match stage.expr() {
            Some(expr) => StageKernel::CompiledOwned(Box::new(CompiledKernel::compile_checked(
                expr,
                stage.window().len(),
                &stage.compute_fn(),
            )?)),
            None => StageKernel::ClosureFn(stage.compute_fn()),
        };
        let mut session = Self::new(plan);
        session.stages[0].kernel = Some(kernel);
        Ok(session)
    }

    /// Sets the first stage's datapath.
    #[must_use]
    pub fn kernel(mut self, kernel: SessionKernel<'a>) -> Self {
        self.stages[0].kernel = Some(match kernel {
            SessionKernel::Closure(c) => StageKernel::Closure(c),
            SessionKernel::Compiled(k) => StageKernel::Compiled(k),
        });
        self
    }

    /// Selects how compiled kernels execute (closure stages ignore it).
    #[must_use]
    pub fn backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the execution mode.
    #[must_use]
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the worker thread count (`0` = machine parallelism).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the compiled-sweep unroll factor: each dispatch produces
    /// `unroll` adjacent output rows, loading taps whose stencil
    /// offsets coincide across the rows once and sharing common
    /// subexpressions across the row bodies. `1` (the default) keeps
    /// the classic single-row sweep. Values above `1` require the
    /// [`KernelBackend::Compiled`] backend; the factor is validated
    /// when the session runs. See [`crate::DEFAULT_UNROLL`] for the
    /// empirically chosen sweet spot.
    #[must_use]
    pub fn unroll(mut self, unroll: usize) -> Self {
        self.unroll = unroll;
        self
    }

    /// Selects the arithmetic width of compiled sweeps.
    /// [`Datapath::F32`] narrows plan-time constants and tap loads to
    /// `f32` lanes, trading bit-exactness for roughly doubled SIMD
    /// width; outputs then match the f64 reference only to a relative
    /// tolerance. Requires a compiled kernel expression.
    #[must_use]
    pub fn datapath(mut self, datapath: Datapath) -> Self {
        self.datapath = datapath;
        self
    }

    /// Overrides the kernel backend of the *most recently added* stage,
    /// making the chain heterogeneous: each stage may sweep compiled
    /// bytecode while its neighbours run closures, independent of the
    /// session-wide default set by [`Session::backend`]. Stages without
    /// compiled bytecode still execute per element regardless.
    #[must_use]
    pub fn stage_backend(mut self, backend: KernelBackend) -> Self {
        self.stages
            .last_mut()
            .expect("sessions always have at least one stage")
            .backend = Some(backend);
        self
    }

    /// Overrides the compiled-sweep unroll factor of the *most recently
    /// added* stage (see [`Session::unroll`] for the session-wide
    /// default and validation rules).
    #[must_use]
    pub fn stage_unroll(mut self, unroll: usize) -> Self {
        self.stages
            .last_mut()
            .expect("sessions always have at least one stage")
            .unroll = Some(unroll);
        self
    }

    /// Overrides the first stage's tiling with a pre-computed
    /// [`TilePlan`] (in-core modes only; streaming derives its own band
    /// schedule from the mode's `chunk_rows`).
    #[must_use]
    pub fn tile_plan(mut self, tile_plan: &'a TilePlan) -> Self {
        self.tile_plan = Some(tile_plan);
        self
    }

    /// Labels the session's telemetry output.
    #[must_use]
    pub fn telemetry(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Appends a chained stage: `stage`'s kernel consumes the previous
    /// stage's output grid. The stage carries **its own window** — it
    /// need not match the upstream one — and the chained plan is
    /// derived by eroding the upstream iteration domain by *this*
    /// stage's window, with the inter-stage reuse buffer sized from
    /// this stage's own reuse distances
    /// ([`MemorySystemPlan::chain_next`]); the stages still line up row
    /// for row (checked with [`MemorySystemPlan::chains_from`]).
    ///
    /// When `stage` carries a [`stencil_kernels::KernelExpr`], the
    /// chained stage compiles it to bytecode (validated against the
    /// stage's closure); otherwise it evaluates the closure directly.
    /// Either way the stage's backend can be overridden individually
    /// with [`Session::stage_backend`] right after this call.
    ///
    /// # Errors
    ///
    /// * [`EngineError::Config`] if `stage`'s window dimensionality
    ///   does not match the upstream domain, or its halo erodes the
    ///   upstream domain to zero rows (window consumes the grid), or
    ///   the derived plan does not chain exactly from the upstream
    ///   stage.
    /// * [`EngineError::Plan`] if the derived plan cannot be generated.
    /// * [`EngineError::KernelCompile`] / [`EngineError::KernelMismatch`]
    ///   if the stage's expression fails to compile or validate.
    pub fn then(mut self, stage: &KernelStage) -> Result<Self, EngineError> {
        let upstream = self.last_stage()?.plan.get();
        if stage.dims() != upstream.iteration_domain().dims() {
            return Err(EngineError::Config {
                detail: format!(
                    "stage '{}' cannot chain from '{}': its window is {}-dimensional but the \
                     upstream domain has {} dimensions",
                    stage.name(),
                    upstream.name(),
                    stage.dims(),
                    upstream.iteration_domain().dims()
                ),
            });
        }
        let eroded = upstream.iteration_domain().eroded(stage.window());
        if eroded.is_empty().map_err(|e| EngineError::Plan(e.into()))? {
            return Err(EngineError::Config {
                detail: format!(
                    "stage '{}' cannot chain from '{}': its {}-row window erodes the upstream \
                     iteration domain to zero rows",
                    stage.name(),
                    upstream.name(),
                    stage.window_extents().first().copied().unwrap_or(1)
                ),
            });
        }
        let next = upstream.chain_next(stage.name(), stage.window())?;
        if !next.chains_from(upstream)? {
            return Err(EngineError::Config {
                detail: format!(
                    "stage '{}' does not chain from '{}': its input domain is not the upstream \
                     iteration domain",
                    stage.name(),
                    upstream.name()
                ),
            });
        }
        let kernel = match stage.expr() {
            Some(expr) => StageKernel::CompiledOwned(Box::new(CompiledKernel::compile_checked(
                expr,
                stage.window().len(),
                &stage.compute_fn(),
            )?)),
            None => StageKernel::ClosureFn(stage.compute_fn()),
        };
        self.stages.push(Stage::new(
            PlanRef::Owned(Box::new(next)),
            Some(kernel),
            stage.name().to_string(),
        ));
        self.prepare_tiles()?;
        Ok(self)
    }

    /// Expands the single-stage session into a *self-chained ring* of
    /// `steps` time steps: the stage's own window erodes its own
    /// iteration domain per step ([`MemorySystemPlan::chain_next`]
    /// applied to itself), and the same kernel executes every step.
    /// Each step's plan and band schedule are built here, once — a run
    /// then reuses them, whether in core or streaming. Under
    /// [`ExecMode::Streaming`] the steps run as T coupled halo windows,
    /// keeping peak residency within a T×halo budget with no
    /// intermediate grid.
    ///
    /// The run's report carries an [`IterateReport`] (`converged` stays
    /// `false`: a fixed-count run never tests convergence — see
    /// [`Session::iterate_until`] for the epsilon-based early exit).
    ///
    /// # Errors
    ///
    /// * [`EngineError::Config`] if `steps` is zero, the session has
    ///   more than one stage, or no kernel was supplied yet.
    /// * [`EngineError::Plan`] if the domain erodes away before step
    ///   `steps` (grid smaller than the window's reach × T).
    pub fn iterate(mut self, steps: usize) -> Result<Self, EngineError> {
        if steps == 0 {
            return Err(EngineError::Config {
                detail: "iterate requires at least one time step".into(),
            });
        }
        if self.stages.len() != 1 {
            return Err(EngineError::Config {
                detail: format!(
                    "iterate requires a single-stage session; this one has {} stages",
                    self.stages.len()
                ),
            });
        }
        if self.stages[0].kernel.is_none() {
            return Err(EngineError::Config {
                detail: "iterate requires a kernel; call Session::kernel first".into(),
            });
        }
        let name = self.stages[0].plan.get().name().to_string();
        let window = plan_offsets(self.stages[0].plan.get());
        for k in 1..steps {
            let upstream = self.last_stage()?.plan.get();
            let label = format!("{name}@t{}", k + 1);
            let next = upstream.chain_next(&label, &window)?;
            if !next.chains_from(upstream)? {
                return Err(EngineError::Config {
                    detail: format!(
                        "step {} does not chain from step {k}: its input domain is not the \
                         upstream iteration domain",
                        k + 1
                    ),
                });
            }
            let kernel = self.stages[0]
                .kernel
                .as_ref()
                .expect("checked above")
                .duplicate();
            self.stages.push(Stage::new(
                PlanRef::Owned(Box::new(next)),
                Some(kernel),
                label,
            ));
        }
        self.iterate_steps = Some(steps);
        self.prepare_tiles()?;
        Ok(self)
    }

    /// Seeds the first stage's band-schedule cache with a pre-built
    /// [`TilePlan`] for the session's *current* mode key. The serving
    /// front-end's shared plan cache hands shard sessions their
    /// schedule through this hook, so steady-state shard runs report
    /// `tile_plans_built == 0`. The seeded plan must be the one the
    /// mode key would build (the cache constructs it with the same
    /// plan functions); an already-warm key is left untouched.
    pub(crate) fn seed_tiles(&self, tile_plan: TilePlan) {
        let stage = &self.stages[0];
        let key = self.mode_key(stage.plan.get());
        let mut slots = stage.tile.borrow_mut();
        if !slots.iter().any(|(k, _)| *k == key) {
            slots.push((key, tile_plan));
        }
    }

    /// The session's final stage, as a typed error rather than a panic
    /// on the (unreachable by construction) empty-pipeline case — the
    /// submit path must never kill a serving worker.
    fn last_stage(&self) -> Result<&Stage<'a>, EngineError> {
        self.stages.last().ok_or_else(|| EngineError::Config {
            detail: "session has no stages".into(),
        })
    }

    /// The band-schedule cache key the session's current mode implies
    /// for `plan`.
    fn mode_key(&self, plan: &MemorySystemPlan) -> TileKey {
        match self.mode {
            ExecMode::Streaming { chunk_rows } => TileKey::Chunk(chunk_rows),
            _ => TileKey::Bands(self.bands_for(plan)),
        }
    }

    /// Prebuilds every stage's band schedule for the current mode, so
    /// runs start with warm caches (misses during a run are what the
    /// `tile_plans_built` telemetry counter reports).
    fn prepare_tiles(&self) -> Result<(), EngineError> {
        for (i, stage) in self.stages.iter().enumerate() {
            // A stage-0 explicit tile plan overrides the cache in core.
            if i == 0
                && self.tile_plan.is_some()
                && !matches!(self.mode, ExecMode::Streaming { .. })
            {
                continue;
            }
            stage.tiles(self.mode_key(stage.plan.get()), None)?;
        }
        Ok(())
    }

    /// Number of kernel stages in the pipeline.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The plan of stage `i`, if it exists (stage 0 is the plan passed
    /// to [`Session::new`]; later stages are derived by erosion).
    #[must_use]
    pub fn stage_plan(&self, i: usize) -> Option<&MemorySystemPlan> {
        self.stages.get(i).map(|s| s.plan.get())
    }

    /// Resolves one stage into its execution recipe: window check for
    /// compiled kernels, per-stage backend/unroll (override or session
    /// default), and the row executor. Every execution path — in-core,
    /// streaming, and the iterate ring — goes through here, so the
    /// per-stage choice is made in exactly one place.
    fn resolve<'s>(&'s self, stage: &'s Stage<'a>) -> Result<StagePlan<'s>, EngineError> {
        let plan = stage.plan.get();
        if let Some(k) = stage.compiled() {
            check_kernel_window(plan, k)?;
        }
        let requested = stage.backend.unwrap_or(self.backend);
        let unroll = stage.unroll.unwrap_or(self.unroll);
        let kernel = stage.row_kernel(requested, unroll, self.datapath)?;
        Ok(StagePlan {
            label: &stage.label,
            plan,
            backend: stage.effective_backend(requested),
            unroll,
            datapath: self.datapath,
            kernel,
        })
    }

    /// Resolves every stage's [`StagePlan`] — the per-stage window,
    /// backend, and sweep shape a run would execute — without running
    /// anything. Pipeline order.
    ///
    /// # Errors
    ///
    /// [`EngineError::Config`] for stages missing a kernel or with an
    /// invalid sweep shape, plus the window checker's error when a
    /// compiled kernel does not fit its stage plan.
    pub fn stage_plans(&self) -> Result<Vec<StagePlan<'_>>, EngineError> {
        self.stages.iter().map(|s| self.resolve(s)).collect()
    }

    /// The planned chained residency bound under streaming: the sum
    /// over stages of each stage's one-band halo window (Sec. 2.3),
    /// for the band schedule `chunk_rows` would produce.
    ///
    /// # Errors
    ///
    /// [`EngineError::Plan`] if a stage's band schedule cannot be
    /// derived.
    pub fn planned_residency_bound(&self, chunk_rows: Option<u64>) -> Result<u64, EngineError> {
        let mut total = 0u64;
        for stage in &self.stages {
            let plan = stage.plan.get();
            let tile_plan = match chunk_rows {
                Some(n) => plan.tile_plan_chunked(n)?,
                None => plan.tile_plan_from_streams()?,
            };
            total += plan.planned_residency_bound(&tile_plan)?;
        }
        Ok(total)
    }

    /// Band count for an in-core stage under the session mode.
    fn bands_for(&self, plan: &MemorySystemPlan) -> usize {
        match self.mode {
            ExecMode::Tiled { tiles } => tiles.max(1),
            _ => plan.offchip_streams().max(1),
        }
    }

    /// Executes the pipeline over an in-memory input grid and returns
    /// the final stage's outputs. Under [`ExecMode::Streaming`] the
    /// input buffer is streamed row by row and outputs are collected
    /// from the sink, so results are identical across modes.
    ///
    /// # Errors
    ///
    /// [`EngineError::Config`] for sessions missing a kernel, plus the
    /// executor's own errors: plan/index failures, input size
    /// mismatches, kernel window mismatches, and worker panics.
    pub fn run(&self, input: &InputGrid<'_>) -> Result<SessionRun, EngineError> {
        match self.mode {
            ExecMode::InCore | ExecMode::Tiled { .. } => self.run_incore(input),
            ExecMode::Streaming { chunk_rows } => {
                let declared = self.stages[0]
                    .plan
                    .get()
                    .input_domain()
                    .count()
                    .map_err(|e| EngineError::Plan(e.into()))?;
                if input.index().len() != declared {
                    return Err(EngineError::InputSizeMismatch {
                        expected: declared,
                        got: input.index().len(),
                    });
                }
                let mut source = SliceSource::new(input.values());
                let mut sink = VecSink::new();
                let report = self.stream_into(&mut source, &mut sink, chunk_rows)?;
                Ok(SessionRun {
                    outputs: sink.values,
                    report,
                })
            }
        }
    }

    /// Executes the pipeline between a row source and a row sink. Under
    /// the in-core modes the input is materialized from the source
    /// first and the final outputs pushed row by row afterwards; under
    /// [`ExecMode::Streaming`] the stages run as coupled halo windows
    /// and only the chained reuse windows stay resident.
    ///
    /// # Errors
    ///
    /// As [`Session::run`], plus [`EngineError::Source`] /
    /// [`EngineError::Sink`] when the endpoints fail.
    pub fn run_streaming(
        &self,
        source: &mut dyn RowSource,
        sink: &mut dyn RowSink,
    ) -> Result<SessionReport, EngineError> {
        match self.mode {
            ExecMode::Streaming { chunk_rows } => self.stream_into(source, sink, chunk_rows),
            ExecMode::InCore | ExecMode::Tiled { .. } => {
                // Materialize the input, run in core, stream the result
                // out — mode stays orthogonal to the endpoints. A
                // mapped source skips materialization entirely: the
                // mapped payload *is* the input grid's value buffer.
                let plan = self.stages[0].plan.get();
                let in_idx = plan
                    .input_domain()
                    .index()
                    .map_err(|e| EngineError::Plan(e.into()))?;
                let mapped = source.mapped();
                let (run, mut grid_io) = if let Some(grid) = &mapped {
                    let input = InputGrid::new(&in_idx, grid.values())?;
                    let run = self.run_incore(&input)?;
                    let io = GridIoReport {
                        bytes_mapped: grid.bytes_mapped(),
                        values_mapped: grid.values().len() as u64,
                        values_copied: 0,
                        output_values: 0,
                        sink_finalized: false,
                    };
                    (run, io)
                } else {
                    let mut vals = Vec::new();
                    for row in in_idx.rows() {
                        let len = usize::try_from(row.len())
                            .map_err(|_| EngineError::DomainTooLarge { points: row.len() })?;
                        let before = vals.len();
                        source.fill_row(len, &mut vals)?;
                        if vals.len() - before != len {
                            return Err(EngineError::Source {
                                detail: format!(
                                    "source produced {} of {len} requested values",
                                    vals.len() - before
                                ),
                            });
                        }
                    }
                    let io = GridIoReport {
                        bytes_mapped: 0,
                        values_mapped: 0,
                        values_copied: vals.len() as u64,
                        output_values: 0,
                        sink_finalized: false,
                    };
                    let input = InputGrid::new(&in_idx, &vals)?;
                    (self.run_incore(&input)?, io)
                };
                let out_plan = self.last_stage()?.plan.get();
                let out_idx = out_plan
                    .iteration_domain()
                    .index()
                    .map_err(|e| EngineError::Plan(e.into()))?;
                for row in out_idx.rows() {
                    let start = usize::try_from(row.base)
                        .map_err(|_| EngineError::DomainTooLarge { points: row.base })?;
                    let len = usize::try_from(row.len())
                        .map_err(|_| EngineError::DomainTooLarge { points: row.len() })?;
                    let slice = run.outputs.get(start..start + len).ok_or_else(|| {
                        EngineError::InconsistentIndex {
                            detail: format!(
                                "output row at {} exceeds the output buffer",
                                row.prefix
                            ),
                        }
                    })?;
                    sink.push_row(slice)?;
                    grid_io.output_values += slice.len() as u64;
                }
                sink.finish()?;
                grid_io.sink_finalized = true;
                let mut report = run.report;
                report.grid_io = Some(grid_io);
                Ok(report)
            }
        }
    }

    /// Sequential in-core execution: each stage runs through the shared
    /// tiled executor, its output buffer becoming the next stage's
    /// input grid.
    fn run_incore(&self, input: &InputGrid<'_>) -> Result<SessionRun, EngineError> {
        let started = Instant::now();
        let built_before = self.tiles_built.get();
        let mut stage_reports = Vec::with_capacity(self.stages.len());
        let mut cur: Vec<f64> = Vec::new();
        let mut peak = 0u64;
        let mut stage_peaks = Vec::with_capacity(self.stages.len());
        let mut threads_used = 1usize;
        for (i, stage) in self.stages.iter().enumerate() {
            let sp = self.resolve(stage)?;
            let plan = sp.plan;
            let tp_owned;
            let tile_plan = match (i, self.tile_plan) {
                (0, Some(tp)) => tp,
                _ => {
                    tp_owned = stage.tiles(
                        TileKey::Bands(self.bands_for(plan)),
                        Some(&self.tiles_built),
                    )?;
                    &tp_owned
                }
            };
            // In core, a stage's whole input grid is resident.
            let stage_peak = plan
                .input_domain()
                .count()
                .map_err(|e| EngineError::Plan(e.into()))?;
            peak += stage_peak;
            stage_peaks.push(stage_peak);
            let (outputs, report) = if i == 0 {
                execute_tiled(
                    plan,
                    tile_plan,
                    input,
                    &*sp.kernel,
                    self.threads,
                    sp.backend,
                )?
            } else {
                let idx = plan
                    .input_domain()
                    .index()
                    .map_err(|e| EngineError::Plan(e.into()))?;
                let grid = InputGrid::new(&idx, &cur)?;
                execute_tiled(
                    plan,
                    tile_plan,
                    &grid,
                    &*sp.kernel,
                    self.threads,
                    sp.backend,
                )?
            };
            threads_used = threads_used.max(report.threads);
            stage_reports.push(StageReport {
                label: stage.label.clone(),
                backend: sp.backend,
                window_taps: sp.window_taps(),
                window_rows: sp.window_rows(),
                resident_bound: stage_peak,
                engine: Some(report),
                stream: None,
            });
            cur = outputs;
        }
        Ok(SessionRun {
            outputs: cur,
            report: SessionReport {
                label: self.label.clone(),
                mode: self.mode,
                threads: threads_used,
                stages: stage_reports,
                peak_resident: peak,
                resident_bound: peak,
                elapsed: started.elapsed(),
                tile_plans_built: self.tiles_built.get() - built_before,
                iterate: self.fixed_iterate_report(&stage_peaks, peak, peak),
                grid_io: None,
            },
        })
    }

    /// The [`IterateReport`] of a fixed-count [`Session::iterate`] run,
    /// or `None` for plain/chained sessions. Fixed-count runs never
    /// test convergence, so `converged` is `false` and the epsilon
    /// fields are zero.
    fn fixed_iterate_report(
        &self,
        stage_peaks: &[u64],
        observed_peak: u64,
        planned_peak: u64,
    ) -> Option<IterateReport> {
        let steps = self.iterate_steps? as u64;
        Some(IterateReport {
            steps,
            max_steps: steps,
            converged: false,
            epsilon: 0.0,
            final_delta: 0.0,
            step_peaks: stage_peaks.to_vec(),
            planned_peak,
            observed_peak,
        })
    }

    /// Chained streaming execution: one [`StreamStage`] per kernel,
    /// pumped back to front so upstream rows are produced on demand.
    fn stream_into(
        &self,
        source: &mut dyn RowSource,
        sink: &mut dyn RowSink,
        chunk_rows: Option<u64>,
    ) -> Result<SessionReport, EngineError> {
        let started = Instant::now();
        let built_before = self.tiles_built.get();
        let mut machines: Vec<StreamStage<'_>> = Vec::with_capacity(self.stages.len());
        let mut stage_shapes = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let sp = self.resolve(stage)?;
            let tile_plan = stage.tiles(TileKey::Chunk(chunk_rows), Some(&self.tiles_built))?;
            stage_shapes.push((sp.backend, sp.window_taps(), sp.window_rows()));
            machines.push(StreamStage::new(
                sp.plan,
                tile_plan,
                sp.kernel,
                sp.backend,
                chunk_rows,
                self.threads,
            )?);
        }

        // A mapped source puts the whole payload logically resident in
        // the first stage: bands execute as slices of the mapped pages
        // and no value is ever copied into the halo window.
        let mut bytes_mapped = 0u64;
        if let Some(grid) = source.mapped() {
            bytes_mapped = grid.bytes_mapped();
            machines[0].attach_mapped(grid)?;
        }

        let mut buf = Vec::new();
        let mut output_values = 0u64;
        while let Some(row) = pump_chain(&mut machines, source, &mut buf)? {
            output_values += row.len() as u64;
            sink.push_row(&row)?;
        }
        sink.finish()?;

        let elapsed = started.elapsed();
        let mut peak = 0u64;
        let mut bound = 0u64;
        let mut stage_peaks = Vec::with_capacity(machines.len());
        let mut threads_used = 1usize;
        let mut stage_reports = Vec::with_capacity(machines.len());
        for ((stage, m), &(backend, window_taps, window_rows)) in
            self.stages.iter().zip(&machines).zip(&stage_shapes)
        {
            peak += m.peak_resident();
            bound += m.runtime_bound();
            stage_peaks.push(m.peak_resident());
            let r = m.report(elapsed);
            threads_used = threads_used.max(r.threads);
            stage_reports.push(StageReport {
                label: stage.label.clone(),
                backend,
                window_taps,
                window_rows,
                resident_bound: m.runtime_bound(),
                engine: None,
                stream: Some(r),
            });
        }
        let (values_mapped, values_copied) = if machines[0].is_mapped() {
            (machines[0].values_in(), 0)
        } else {
            (0, machines[0].values_in())
        };
        Ok(SessionReport {
            label: self.label.clone(),
            mode: self.mode,
            threads: threads_used,
            stages: stage_reports,
            peak_resident: peak,
            resident_bound: bound,
            elapsed,
            tile_plans_built: self.tiles_built.get() - built_before,
            iterate: self.fixed_iterate_report(&stage_peaks, peak, bound),
            grid_io: Some(GridIoReport {
                bytes_mapped,
                values_mapped,
                values_copied,
                output_values,
                sink_finalized: true,
            }),
        })
    }

    /// Time-steps the single-stage session until the per-step update
    /// falls to `epsilon` or `max_steps` is reached, whichever comes
    /// first. Steps run sequentially in core, each step's plan derived
    /// from the previous by self-chaining ([`Session::iterate`]'s
    /// ring, unrolled lazily so unneeded steps are never planned);
    /// after each step a row-aligned max-abs-delta reduction compares
    /// the step's output against its input over the step's iteration
    /// domain. Because closure and compiled backends produce
    /// bit-identical outputs by construction, the measured deltas — and
    /// therefore the step count — are identical across backends.
    ///
    /// Steps execute strictly one at a time (the early exit requires
    /// each step to finish before the next is planned), so the reported
    /// peak residency is the *maximum* per-step input grid, not a sum,
    /// and the report's mode is [`ExecMode::InCore`] regardless of the
    /// configured mode.
    ///
    /// # Errors
    ///
    /// * [`EngineError::Config`] if the session is not single-stage, or
    ///   `epsilon` is negative/non-finite, or `max_steps` is zero.
    /// * [`EngineError::Plan`] if the domain erodes away before either
    ///   exit condition fires.
    /// * Everything [`Session::run`] reports.
    pub fn iterate_until(
        &self,
        input: &InputGrid<'_>,
        epsilon: f64,
        max_steps: usize,
    ) -> Result<SessionRun, EngineError> {
        if self.stages.len() != 1 {
            return Err(EngineError::Config {
                detail: format!(
                    "iterate_until requires a single-stage session; this one has {} stages",
                    self.stages.len()
                ),
            });
        }
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(EngineError::Config {
                detail: format!("epsilon must be finite and non-negative, got {epsilon}"),
            });
        }
        if max_steps == 0 {
            return Err(EngineError::Config {
                detail: "max_steps must be at least 1".into(),
            });
        }
        let started = Instant::now();
        let built_before = self.tiles_built.get();
        let stage = &self.stages[0];
        let base_plan = stage.plan.get();
        let sp = self.resolve(stage)?;
        let (backend, window_taps, window_rows) = (sp.backend, sp.window_taps(), sp.window_rows());
        let kernel = sp.kernel;
        let window = plan_offsets(base_plan);
        let name = base_plan.name().to_string();

        let mut derived: Option<MemorySystemPlan> = None;
        let mut cur_vals: Vec<f64> = Vec::new();
        let mut stage_reports = Vec::new();
        let mut step_peaks: Vec<u64> = Vec::new();
        let mut converged = false;
        let mut final_delta = 0.0f64;
        let mut steps = 0u64;
        let mut threads_used = 1usize;

        for k in 1..=max_steps {
            let plan = derived.as_ref().unwrap_or(base_plan);
            let tp_owned: TilePlan;
            let tile_plan: &TilePlan = match (k, self.tile_plan) {
                (1, Some(tp)) => tp,
                (1, None) => {
                    tp_owned = stage.tiles(
                        TileKey::Bands(self.bands_for(plan)),
                        Some(&self.tiles_built),
                    )?;
                    &tp_owned
                }
                _ => {
                    // Derived step plans are fresh objects; their band
                    // schedules are inherently built per executed step.
                    self.tiles_built.set(self.tiles_built.get() + 1);
                    tp_owned = plan.tile_plan(self.bands_for(plan))?;
                    &tp_owned
                }
            };
            let in_idx = plan
                .input_domain()
                .index()
                .map_err(|e| EngineError::Plan(e.into()))?;
            let (outputs, report) = if k == 1 {
                execute_tiled(plan, tile_plan, input, &*kernel, self.threads, backend)?
            } else {
                let grid = InputGrid::new(&in_idx, &cur_vals)?;
                execute_tiled(plan, tile_plan, &grid, &*kernel, self.threads, backend)?
            };
            let out_idx = plan
                .iteration_domain()
                .index()
                .map_err(|e| EngineError::Plan(e.into()))?;
            let (prev_idx, prev_vals): (&DomainIndex, &[f64]) = if k == 1 {
                (input.index(), input.values())
            } else {
                (&in_idx, &cur_vals)
            };
            let delta = max_abs_delta(&out_idx, &outputs, prev_idx, prev_vals)?;
            steps += 1;
            threads_used = threads_used.max(report.threads);
            let step_peak = plan
                .input_domain()
                .count()
                .map_err(|e| EngineError::Plan(e.into()))?;
            step_peaks.push(step_peak);
            stage_reports.push(StageReport {
                label: if k == 1 {
                    name.clone()
                } else {
                    format!("{name}@t{k}")
                },
                backend,
                window_taps,
                window_rows,
                resident_bound: step_peak,
                engine: Some(report),
                stream: None,
            });
            cur_vals = outputs;
            final_delta = delta;
            if delta <= epsilon {
                converged = true;
                break;
            }
            if k == max_steps {
                break;
            }
            derived = Some(plan.chain_next(format!("{name}@t{}", k + 1), &window)?);
        }

        let peak = step_peaks.iter().copied().max().unwrap_or(0);
        Ok(SessionRun {
            outputs: cur_vals,
            report: SessionReport {
                label: self.label.clone(),
                mode: ExecMode::InCore,
                threads: threads_used,
                stages: stage_reports,
                peak_resident: peak,
                resident_bound: peak,
                elapsed: started.elapsed(),
                tile_plans_built: self.tiles_built.get() - built_before,
                iterate: Some(IterateReport {
                    steps,
                    max_steps: max_steps as u64,
                    converged,
                    epsilon,
                    final_delta,
                    step_peaks,
                    planned_peak: peak,
                    observed_peak: peak,
                }),
                grid_io: None,
            },
        })
    }
}

/// Row-aligned max-abs-delta reduction between a time step's outputs
/// (over `out_idx`, the step's iteration domain) and the values the
/// step consumed (over `in_idx`, a superset domain): the convergence
/// figure [`Session::iterate_until`] tests against epsilon after every
/// step. Both indices are lexicographically row-sorted, so the inputs
/// are walked with a single forward cursor — one fused pass, no point
/// lookups.
fn max_abs_delta(
    out_idx: &DomainIndex,
    outs: &[f64],
    in_idx: &DomainIndex,
    ins: &[f64],
) -> Result<f64, EngineError> {
    let in_rows = in_idx.rows();
    let mut j = 0usize;
    let mut delta = 0.0f64;
    for row in out_idx.rows() {
        while j < in_rows.len() && lex_cmp(&in_rows[j].prefix, &row.prefix) == Ordering::Less {
            j += 1;
        }
        let irow = in_rows
            .get(j)
            .filter(|r| r.prefix == row.prefix && r.lo <= row.lo && row.hi <= r.hi)
            .ok_or_else(|| EngineError::InconsistentIndex {
                detail: format!("step output row at {} has no aligned input row", row.prefix),
            })?;
        let olen = usize::try_from(row.len())
            .map_err(|_| EngineError::DomainTooLarge { points: row.len() })?;
        let ostart = usize::try_from(row.base)
            .map_err(|_| EngineError::DomainTooLarge { points: row.base })?;
        let skip = u64::try_from(row.lo - irow.lo).expect("checked lo <= row.lo");
        let istart =
            usize::try_from(irow.base + skip).map_err(|_| EngineError::DomainTooLarge {
                points: irow.base + skip,
            })?;
        let (o, i) = match (
            outs.get(ostart..ostart + olen),
            ins.get(istart..istart + olen),
        ) {
            (Some(o), Some(i)) => (o, i),
            _ => {
                return Err(EngineError::InconsistentIndex {
                    detail: format!("step delta row at {} exceeds a value buffer", row.prefix),
                })
            }
        };
        for (a, b) in o.iter().zip(i) {
            delta = delta.max((a - b).abs());
        }
    }
    Ok(delta)
}

/// The result of [`Session::run`].
#[derive(Debug, Clone)]
pub struct SessionRun {
    /// Final-stage output values in lexicographic iteration order.
    pub outputs: Vec<f64>,
    /// Per-stage and pipeline-level statistics.
    pub report: SessionReport,
}

/// Statistics of one pipeline stage within a [`SessionReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// The stage's kernel/plan name.
    pub label: String,
    /// The backend this stage resolved to — per-stage, so a
    /// heterogeneous chain reports e.g. compiled, closure, compiled.
    pub backend: KernelBackend,
    /// Number of taps in this stage's window.
    pub window_taps: u64,
    /// The window's outermost-dimension span in rows (this stage's
    /// halo reach).
    pub window_rows: u64,
    /// This stage's own planned residency ceiling: its halo-window
    /// bound under streaming, its whole input grid in core.
    pub resident_bound: u64,
    /// In-core statistics, when the stage ran through the tiled
    /// executor.
    pub engine: Option<RunReport>,
    /// Streaming statistics, when the stage ran as a halo window.
    pub stream: Option<StreamReport>,
}

/// Statistics of one [`Session`] execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The session's telemetry label, if one was set.
    pub label: Option<String>,
    /// The mode the session executed under.
    pub mode: ExecMode,
    /// Worker threads actually used (max across stages).
    pub threads: usize,
    /// Per-stage statistics, pipeline order.
    pub stages: Vec<StageReport>,
    /// Peak resident input values, summed across stages. Streaming
    /// sums the per-stage halo-window high-water marks (the windows
    /// coexist); in core it is the sum of whole stage input grids.
    pub peak_resident: u64,
    /// The residency bound the run was expected to honor, summed the
    /// same way.
    pub resident_bound: u64,
    /// End-to-end wall-clock time across all stages.
    pub elapsed: Duration,
    /// Band/chunk schedules built *during this run*. After
    /// [`Session::then`] or [`Session::iterate`] hoisted the schedules
    /// at construction, a run whose mode is unchanged reports zero.
    pub tile_plans_built: u64,
    /// Time-stepping statistics, present only for [`Session::iterate`]
    /// and [`Session::iterate_until`] runs.
    pub iterate: Option<IterateReport>,
    /// Grid I/O accounting (bytes mapped vs values copied), present for
    /// runs driven through [`Session::run_streaming`]'s endpoints.
    pub grid_io: Option<crate::report::GridIoReport>,
}

/// Time-stepping statistics of a [`Session::iterate`] or
/// [`Session::iterate_until`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct IterateReport {
    /// Time steps actually executed.
    pub steps: u64,
    /// The configured step ceiling (equals `steps` for fixed-count
    /// [`Session::iterate`] runs).
    pub max_steps: u64,
    /// Whether the max-abs-delta reduction fell to `epsilon` before
    /// `max_steps`. Always `false` for fixed-count runs, which do not
    /// measure deltas.
    pub converged: bool,
    /// The convergence threshold (zero for fixed-count runs).
    pub epsilon: f64,
    /// The last measured per-step max-abs-delta (zero for fixed-count
    /// runs).
    pub final_delta: f64,
    /// Per-step peak resident input values, step order.
    pub step_peaks: Vec<u64>,
    /// The planned residency ceiling: the summed T×halo bound when the
    /// ring streams, the summed (sequential: maximum) step grids in
    /// core.
    pub planned_peak: u64,
    /// The observed peak residency the bound is checked against.
    pub observed_peak: u64,
}

impl SessionReport {
    /// Final-stage outputs produced.
    #[must_use]
    pub fn outputs(&self) -> u64 {
        self.stages.last().map_or(0, |s| {
            s.engine
                .as_ref()
                .map(|r| r.outputs)
                .or_else(|| s.stream.as_ref().map(|r| r.outputs))
                .unwrap_or(0)
        })
    }

    /// Final-stage outputs per wall-clock second; `0.0` below timer
    /// resolution, as [`RunReport::throughput`].
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.outputs() as f64 / secs
        } else {
            0.0
        }
    }

    /// True when the measured peak residency honored the chained bound.
    #[must_use]
    pub fn within_residency_bound(&self) -> bool {
        self.peak_resident <= self.resident_bound
    }

    /// The session's counters in the `stencil-telemetry` wire schema,
    /// ready for JSON serialization and [`stencil_telemetry::validate`]
    /// report-level validation (the `ChainResidency` rule re-checks the
    /// chained Sec. 2.3 bound from the serialized figures alone).
    #[must_use]
    pub fn metrics(&self) -> stencil_telemetry::SessionMetrics {
        stencil_telemetry::SessionMetrics {
            mode: self.mode.as_str().to_string(),
            threads: self.threads,
            outputs: self.outputs(),
            peak_resident: self.peak_resident,
            resident_bound: self.resident_bound,
            elapsed_ns: crate::report::duration_ns(self.elapsed),
            throughput: self.throughput(),
            stages: self
                .stages
                .iter()
                .map(|s| stencil_telemetry::StageMetrics {
                    label: s.label.clone(),
                    backend: s.backend.as_str().to_string(),
                    window_taps: s.window_taps,
                    window_rows: s.window_rows,
                    resident_bound: s.resident_bound,
                    engine: s.engine.as_ref().map(RunReport::metrics),
                    stream: s.stream.as_ref().map(StreamReport::metrics),
                })
                .collect(),
            tile_plans_built: self.tile_plans_built,
            iterate: self
                .iterate
                .as_ref()
                .map(|it| stencil_telemetry::IterateMetrics {
                    steps: it.steps,
                    max_steps: it.max_steps,
                    converged: it.converged,
                    epsilon: it.epsilon,
                    final_delta: it.final_delta,
                    step_peaks: it.step_peaks.clone(),
                    planned_peak: it.planned_peak,
                    observed_peak: it.observed_peak,
                }),
            grid_io: self
                .grid_io
                .as_ref()
                .map(crate::report::GridIoReport::metrics),
        }
    }
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "session [{}]: {} stage(s), {} outputs x {} thread(s) in {:?} ({:.1} Melem/s)",
            self.mode.as_str(),
            self.stages.len(),
            self.outputs(),
            self.threads,
            self.elapsed,
            self.throughput() / 1e6
        )?;
        writeln!(
            f,
            "  resident: peak {} values (bound {})",
            self.peak_resident, self.resident_bound
        )?;
        if self.stages.len() > 1 {
            let desc: Vec<String> = self
                .stages
                .iter()
                .map(|s| {
                    format!(
                        "{}[{} {}-tap/{}-row <= {}]",
                        s.label, s.backend, s.window_taps, s.window_rows, s.resident_bound
                    )
                })
                .collect();
            writeln!(f, "  pipeline: {}", desc.join(" -> "))?;
        }
        if let Some(it) = &self.iterate {
            writeln!(
                f,
                "  iterate: {} / {} step(s), {}, peak {} (planned {})",
                it.steps,
                it.max_steps,
                if it.converged {
                    format!(
                        "converged (delta {:.3e} <= eps {:.3e})",
                        it.final_delta, it.epsilon
                    )
                } else {
                    "not converged".to_string()
                },
                it.observed_peak,
                it.planned_peak
            )?;
        }
        for s in &self.stages {
            if let Some(r) = &s.engine {
                write!(f, "  stage '{}': {r}", s.label)?;
            }
            if let Some(r) = &s.stream {
                write!(f, "  stage '{}': {r}", s.label)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{FnSource, SliceSource, VecSink};
    use stencil_core::StencilSpec;
    use stencil_kernels::{KernelExpr, KernelStage};
    use stencil_polyhedral::{Point, Polyhedron};

    fn plan_5pt(rows: i64, cols: i64) -> MemorySystemPlan {
        let spec = StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, rows - 2), (1, cols - 2)]),
            window_5pt(),
        )
        .unwrap();
        MemorySystemPlan::generate(&spec).unwrap()
    }

    fn window_5pt() -> Vec<Point> {
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ]
    }

    fn ramp(len: u64) -> Vec<f64> {
        (0..len).map(|r| (r % 97) as f64 * 0.5 - 11.0).collect()
    }

    fn compute(w: &[f64]) -> f64 {
        w[2] + 0.25 * (w[0] + w[1] + w[3] + w[4] - 4.0 * w[2])
    }

    fn expr_5pt() -> KernelExpr {
        let [t0, t1, t2, t3, t4] = KernelExpr::taps::<5>();
        t2.clone() + 0.25 * (t0 + t1 + t3 + t4 - 4.0 * t2)
    }

    fn compiled_5pt() -> CompiledKernel {
        CompiledKernel::compile_checked(&expr_5pt(), 5, &compute).unwrap()
    }

    #[test]
    fn session_matches_direct_loop() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();

        let run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .mode(ExecMode::Tiled { tiles: 3 })
            .run(&input)
            .unwrap();

        // Direct nested-loop reference in user offset order:
        // (-1,0), (0,-1), (0,0), (0,1), (1,0).
        let iter_idx = plan.iteration_domain().index().unwrap();
        let mut c = iter_idx.cursor();
        let mut expect = Vec::new();
        while let Some(p) = c.point(&iter_idx) {
            let at = |dr: i64, dc: i64| {
                input
                    .value_at(&Point::new(&[p[0] + dr, p[1] + dc]))
                    .unwrap()
            };
            expect.push(compute(&[
                at(-1, 0),
                at(0, -1),
                at(0, 0),
                at(0, 1),
                at(1, 0),
            ]));
            c.advance(&iter_idx);
        }
        assert_eq!(run.outputs, expect);
        assert_eq!(run.report.outputs(), 18 * 22);
        let engine = run.report.stages[0].engine.as_ref().unwrap();
        assert_eq!(engine.tiles, 3);
        assert_eq!(engine.backend, KernelBackend::Closure);
    }

    #[test]
    fn tile_counts_and_threads_do_not_change_results() {
        let plan = plan_5pt(17, 13);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let sum = |w: &[f64]| w.iter().sum::<f64>() * 0.2;
        let reference = Session::new(&plan)
            .kernel(SessionKernel::Closure(&sum))
            .mode(ExecMode::Tiled { tiles: 1 })
            .run(&input)
            .unwrap()
            .outputs;
        for tiles in [2usize, 3, 5, 8, 100] {
            for threads in [1usize, 2, 4] {
                let run = Session::new(&plan)
                    .kernel(SessionKernel::Closure(&sum))
                    .mode(ExecMode::Tiled { tiles })
                    .threads(threads)
                    .run(&input)
                    .unwrap();
                assert_eq!(run.outputs, reference, "tiles={tiles} threads={threads}");
            }
        }
    }

    #[test]
    fn compiled_backend_sweeps_and_matches_the_closure() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let kernel = compiled_5pt();

        let reference = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .mode(ExecMode::Tiled { tiles: 3 })
            .run(&input)
            .unwrap();
        let compiled = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .mode(ExecMode::Tiled { tiles: 3 })
            .run(&input)
            .unwrap();
        assert_eq!(compiled.outputs, reference.outputs);
        let report = compiled.report.stages[0].engine.as_ref().unwrap();
        assert_eq!(report.backend, KernelBackend::Compiled);
        // Every interior row swept; the closure run swept none.
        let sweep: u64 = report.per_tile.iter().map(|t| t.sweep_rows).sum();
        let fast: u64 = report.per_tile.iter().map(|t| t.fast_rows).sum();
        assert_eq!(sweep, 18);
        assert_eq!(fast, 0);
        let ref_report = reference.report.stages[0].engine.as_ref().unwrap();
        assert_eq!(
            ref_report
                .per_tile
                .iter()
                .map(|t| t.sweep_rows)
                .sum::<u64>(),
            0
        );

        // Forcing the Closure backend routes the same bytecode through
        // the per-element path — identical values, zero sweeps.
        let scalar = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .backend(KernelBackend::Closure)
            .mode(ExecMode::Tiled { tiles: 3 })
            .run(&input)
            .unwrap();
        assert_eq!(scalar.outputs, reference.outputs);
        let report = scalar.report.stages[0].engine.as_ref().unwrap();
        assert_eq!(report.backend, KernelBackend::Closure);
        assert_eq!(report.per_tile.iter().map(|t| t.sweep_rows).sum::<u64>(), 0);
    }

    #[test]
    fn unrolled_sweeps_are_bit_identical_across_modes_and_factors() {
        let plan = plan_5pt(23, 29);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let kernel = compiled_5pt();

        let reference = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .run(&input)
            .unwrap();
        assert_eq!(
            reference.report.stages[0].engine.as_ref().unwrap().unroll,
            1
        );

        for unroll in [2usize, 4, 8] {
            for mode in [
                ExecMode::InCore,
                ExecMode::Tiled { tiles: 3 },
                ExecMode::Streaming { chunk_rows: None },
                ExecMode::Streaming {
                    chunk_rows: Some(3),
                },
            ] {
                let run = Session::new(&plan)
                    .kernel(SessionKernel::Compiled(&kernel))
                    .mode(mode)
                    .unroll(unroll)
                    .run(&input)
                    .unwrap();
                assert_eq!(run.outputs, reference.outputs, "unroll={unroll} {mode:?}");
                let stage = &run.report.stages[0];
                let (got_unroll, got_dp) = match (&stage.engine, &stage.stream) {
                    (Some(e), _) => (e.unroll, e.datapath),
                    (None, Some(s)) => (s.unroll, s.datapath),
                    _ => panic!("stage carried no report"),
                };
                assert_eq!(got_unroll, unroll);
                assert_eq!(got_dp, Datapath::F64);
            }
        }
    }

    #[test]
    fn f32_datapath_is_tolerance_close_and_chunking_invariant() {
        let plan = plan_5pt(21, 27);
        let in_idx = plan.input_domain().index().unwrap();
        // 0.1 steps are not exactly representable in f32, so the
        // narrowed datapath must perturb at least one output.
        let vals: Vec<f64> = (0..in_idx.len())
            .map(|r| (r % 97) as f64 * 0.1 - 3.3)
            .collect();
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let kernel = compiled_5pt();

        let f64_run = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .run(&input)
            .unwrap();
        let f32_run = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .datapath(Datapath::F32)
            .unroll(4)
            .run(&input)
            .unwrap();
        let err = crate::unroll::max_rel_error(&f32_run.outputs, &f64_run.outputs);
        assert!(err < 1e-6, "f32 drifted {err:e} from the f64 reference");
        assert!(
            f32_run.outputs != f64_run.outputs,
            "f32 narrowing should perturb at least one value on this input"
        );
        let engine = f32_run.report.stages[0].engine.as_ref().unwrap();
        assert_eq!(engine.datapath, Datapath::F32);

        // Chunking must not change f32 results: the unrolled register
        // program is bit-deterministic per output row, so streaming at
        // any granularity reproduces the in-core f32 bits exactly.
        for chunk_rows in [1u64, 3, 64] {
            let streamed = Session::new(&plan)
                .kernel(SessionKernel::Compiled(&kernel))
                .datapath(Datapath::F32)
                .unroll(4)
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(chunk_rows),
                })
                .run(&input)
                .unwrap();
            assert_eq!(streamed.outputs, f32_run.outputs, "chunk_rows={chunk_rows}");
        }

        // The scalar f32 bytecode path (Closure backend) agrees with
        // the unrolled f32 lanes bit for bit: both narrow taps and
        // constants identically and evaluate in the same order.
        let scalar32 = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .backend(KernelBackend::Closure)
            .datapath(Datapath::F32)
            .run(&input)
            .unwrap();
        assert_eq!(scalar32.outputs, f32_run.outputs);
    }

    #[test]
    fn f32_requires_a_compiled_kernel() {
        let plan = plan_5pt(12, 12);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let e = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .datapath(Datapath::F32)
            .run(&input)
            .unwrap_err();
        match e {
            EngineError::Config { detail } => {
                assert!(detail.contains("f32"), "{detail}");
                assert!(detail.contains("compiled"), "{detail}");
            }
            other => panic!("expected Config, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_unroll_is_a_config_error() {
        let plan = plan_5pt(12, 12);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let kernel = compiled_5pt();
        for unroll in [0usize, 17] {
            let e = Session::new(&plan)
                .kernel(SessionKernel::Compiled(&kernel))
                .unroll(unroll)
                .run(&input)
                .unwrap_err();
            assert!(matches!(e, EngineError::Config { .. }), "unroll={unroll}");
        }
    }

    #[test]
    fn compiled_kernel_window_is_validated_against_the_plan() {
        let plan = plan_5pt(12, 12);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let three_tap = CompiledKernel::compile(&KernelExpr::window_sum(3), 3).unwrap();
        for mode in [ExecMode::InCore, ExecMode::Streaming { chunk_rows: None }] {
            let e = Session::new(&plan)
                .kernel(SessionKernel::Compiled(&three_tap))
                .mode(mode)
                .run(&input)
                .unwrap_err();
            match e {
                EngineError::KernelCompile { detail } => {
                    assert!(detail.contains("3 taps"), "{detail}");
                    assert!(detail.contains("5 points"), "{detail}");
                }
                other => panic!("expected KernelCompile, got {other:?}"),
            }
        }
    }

    #[test]
    fn input_size_is_validated_in_every_mode() {
        let plan = plan_5pt(10, 10);
        let other = Polyhedron::grid(&[4, 4]).index().unwrap();
        let vals = ramp(other.len());
        let input = InputGrid::new(&other, &vals).unwrap();
        let id = |w: &[f64]| w[0];
        for mode in [ExecMode::InCore, ExecMode::Streaming { chunk_rows: None }] {
            let e = Session::new(&plan)
                .kernel(SessionKernel::Closure(&id))
                .mode(mode)
                .run(&input)
                .unwrap_err();
            assert!(matches!(e, EngineError::InputSizeMismatch { .. }));
        }
    }

    #[test]
    fn missing_kernel_is_a_config_error() {
        let plan = plan_5pt(10, 10);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let e = Session::new(&plan).run(&input).unwrap_err();
        match e {
            EngineError::Config { detail } => assert!(detail.contains("no kernel"), "{detail}"),
            other => panic!("expected Config, got {other:?}"),
        }
    }

    #[test]
    fn default_mode_follows_stream_count() {
        let plan = plan_5pt(12, 12).with_offchip_streams(2).unwrap();
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let center = |w: &[f64]| w[2];
        let run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&center))
            .run(&input)
            .unwrap();
        assert_eq!(run.report.stages[0].engine.as_ref().unwrap().tiles, 2);
    }

    #[test]
    fn worker_panic_is_reported_in_every_mode() {
        let plan = plan_5pt(10, 10);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let boom = |_: &[f64]| -> f64 { panic!("datapath bug") };
        for mode in [
            ExecMode::InCore,
            ExecMode::Streaming {
                chunk_rows: Some(3),
            },
        ] {
            for threads in [1usize, 4] {
                let e = Session::new(&plan)
                    .kernel(SessionKernel::Closure(&boom))
                    .mode(mode)
                    .threads(threads)
                    .run(&input)
                    .unwrap_err();
                assert_eq!(
                    e,
                    EngineError::WorkerPanic,
                    "mode={mode:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn scrambled_input_index_reports_missing_point() {
        use stencil_polyhedral::DomainIndex;
        // An input index whose prefix-5 row is shifted left by one:
        // same point count (so the size check passes), broken coverage.
        // Output rows reading (5, 9) cannot batch; the gather fallback
        // must name the exact missing point instead of reading garbage.
        let plan = plan_5pt(10, 10);
        let mut rows = plan.input_domain().index().unwrap().rows().to_vec();
        assert_eq!((rows[5].lo, rows[5].hi), (0, 9));
        rows[5].lo = -1;
        rows[5].hi = 8;
        let idx = DomainIndex::from_rows(2, rows);
        let vals = ramp(idx.len());
        let input = InputGrid::new(&idx, &vals).unwrap();
        let center = |w: &[f64]| w[2];
        let e = Session::new(&plan)
            .kernel(SessionKernel::Closure(&center))
            .mode(ExecMode::Tiled { tiles: 1 })
            .run(&input)
            .unwrap_err();
        match e {
            EngineError::MissingInput { point } => assert_eq!(point, "(5, 9)"),
            other => panic!("expected MissingInput, got {other:?}"),
        }
    }

    #[test]
    fn report_accounts_all_rows_fast_for_rect_grids() {
        let plan = plan_5pt(16, 16);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let center = |w: &[f64]| w[2];
        let run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&center))
            .mode(ExecMode::Tiled { tiles: 2 })
            .run(&input)
            .unwrap();
        let report = run.report.stages[0].engine.as_ref().unwrap();
        let fast: u64 = report.per_tile.iter().map(|t| t.fast_rows).sum();
        let gather: u64 = report.per_tile.iter().map(|t| t.gather_rows).sum();
        assert_eq!(fast, 14);
        assert_eq!(gather, 0);
        assert!(report.halo_elements > in_idx.len());
    }

    #[test]
    fn streaming_matches_in_core_at_every_chunk_size() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let reference = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .run(&input)
            .unwrap()
            .outputs;
        for chunk in [1u64, 3, 18, 100] {
            for threads in [1usize, 3] {
                let run = Session::new(&plan)
                    .kernel(SessionKernel::Closure(&compute))
                    .mode(ExecMode::Streaming {
                        chunk_rows: Some(chunk),
                    })
                    .threads(threads)
                    .run(&input)
                    .unwrap();
                assert_eq!(run.outputs, reference, "chunk={chunk} threads={threads}");
                let report = run.report.stages[0].stream.as_ref().unwrap();
                assert_eq!(report.outputs, 18 * 22);
                assert_eq!(report.backend, KernelBackend::Closure);
                assert_eq!(report.sweep_rows, 0);
                assert!(run.report.within_residency_bound());
            }
        }
    }

    #[test]
    fn alternating_modes_keep_every_band_schedule_warm() {
        // Regression test for the single-slot tile-plan cache: a
        // session alternating in-core and streaming execution (the CLI
        // crosscheck shape) used to evict one band schedule with the
        // other and rebuild on every switch. The cache is keyed now, so
        // after one cold call per mode every later call reports
        // `tile_plans_built == 0`.
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let streaming = ExecMode::Streaming {
            chunk_rows: Some(4),
        };
        let mut session = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .mode(streaming);
        // Cold calls: one build per distinct band-schedule key.
        let warm_stream = session.run(&input).unwrap();
        assert_eq!(warm_stream.report.tile_plans_built, 1);
        session = session.mode(ExecMode::InCore);
        let warm_core = session.run(&input).unwrap();
        assert_eq!(warm_core.report.tile_plans_built, 1);
        assert_eq!(warm_core.outputs, warm_stream.outputs);
        // Alternate run() / run_streaming() across both modes: every
        // schedule stays cached, nothing is rebuilt.
        for _ in 0..3 {
            session = session.mode(streaming);
            let run = session.run(&input).unwrap();
            assert_eq!(run.report.tile_plans_built, 0);
            assert_eq!(run.outputs, warm_core.outputs);
            let mut source = SliceSource::new(&vals);
            let mut sink = VecSink::new();
            let report = session.run_streaming(&mut source, &mut sink).unwrap();
            assert_eq!(report.tile_plans_built, 0);
            assert_eq!(sink.values, warm_core.outputs);
            session = session.mode(ExecMode::InCore);
            let run = session.run(&input).unwrap();
            assert_eq!(run.report.tile_plans_built, 0);
            assert_eq!(run.outputs, warm_core.outputs);
        }
    }

    #[test]
    fn compiled_streaming_sweeps_and_matches_closure_streaming() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let kernel = compiled_5pt();
        for chunk in [1u64, 3, 18] {
            let closure = Session::new(&plan)
                .kernel(SessionKernel::Closure(&compute))
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(chunk),
                })
                .run(&input)
                .unwrap();
            let compiled = Session::new(&plan)
                .kernel(SessionKernel::Compiled(&kernel))
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(chunk),
                })
                .run(&input)
                .unwrap();
            assert_eq!(compiled.outputs, closure.outputs, "chunk={chunk}");
            let report = compiled.report.stages[0].stream.as_ref().unwrap();
            assert_eq!(report.backend, KernelBackend::Compiled);
            // Rectangular grid: every output row sweeps.
            assert_eq!(report.sweep_rows, 18, "chunk={chunk}");
            assert_eq!(report.fast_rows, 0);
            assert_eq!(report.gather_rows, 0);

            let scalar = Session::new(&plan)
                .kernel(SessionKernel::Compiled(&kernel))
                .backend(KernelBackend::Closure)
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(chunk),
                })
                .run(&input)
                .unwrap();
            assert_eq!(scalar.outputs, closure.outputs);
            let report = scalar.report.stages[0].stream.as_ref().unwrap();
            assert_eq!(report.backend, KernelBackend::Closure);
            assert_eq!(report.sweep_rows, 0);
        }
    }

    #[test]
    fn residency_stays_at_one_halo_window() {
        // 18 output rows in 1-row bands: halo = 3 input rows of 24.
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .mode(ExecMode::Streaming {
                chunk_rows: Some(1),
            })
            .run(&input)
            .unwrap();
        let report = run.report.stages[0].stream.as_ref().unwrap();
        assert_eq!(report.peak_resident, 3 * 24);
        assert_eq!(report.resident_bound, 3 * 24);
        assert_eq!(report.bands, 18);
        // Every input value crosses the window exactly once.
        assert_eq!(report.values_in, in_idx.len());
        assert_eq!(report.rows_in, 20);
        assert_eq!(report.rows_out, 18);
        assert_eq!(run.report.peak_resident, 3 * 24);
        assert_eq!(run.report.resident_bound, 3 * 24);
    }

    #[test]
    fn streaming_endpoints_work_in_every_mode() {
        // run_streaming(source, sink) is mode-orthogonal: in-core modes
        // materialize the input and stream the result out.
        let plan = plan_5pt(30, 16);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let reference = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .run(&input)
            .unwrap()
            .outputs;
        for mode in [
            ExecMode::InCore,
            ExecMode::Tiled { tiles: 4 },
            ExecMode::Streaming {
                chunk_rows: Some(4),
            },
        ] {
            let mut source = FnSource::new(|r| (r % 97) as f64 * 0.5 - 11.0);
            let mut sink = VecSink::new();
            let report = Session::new(&plan)
                .kernel(SessionKernel::Closure(&compute))
                .mode(mode)
                .run_streaming(&mut source, &mut sink)
                .unwrap();
            assert_eq!(sink.values, reference, "mode={mode:?}");
            assert_eq!(report.mode, mode);
            assert_eq!(report.outputs(), 28 * 14);
        }
    }

    #[test]
    fn exhausted_source_is_an_error_not_a_panic() {
        let plan = plan_5pt(12, 12);
        let short = ramp(10);
        let mut source = SliceSource::new(&short);
        let mut sink = VecSink::new();
        let e = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .mode(ExecMode::Streaming { chunk_rows: None })
            .run_streaming(&mut source, &mut sink)
            .unwrap_err();
        assert!(matches!(e, EngineError::Source { .. }), "{e}");
    }

    #[test]
    fn failing_sink_is_an_error_not_a_panic() {
        struct FullSink;
        impl crate::stream::RowSink for FullSink {
            fn push_row(&mut self, _row: &[f64]) -> Result<(), EngineError> {
                Err(EngineError::Sink {
                    detail: "disk full".into(),
                })
            }
        }
        let plan = plan_5pt(12, 12);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let mut source = SliceSource::new(&vals);
        let e = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .mode(ExecMode::Streaming { chunk_rows: None })
            .run_streaming(&mut source, &mut FullSink)
            .unwrap_err();
        assert_eq!(
            e,
            EngineError::Sink {
                detail: "disk full".into()
            }
        );
    }

    #[test]
    fn one_dimensional_stream() {
        let spec = StencilSpec::new(
            "blur1d",
            Polyhedron::rect(&[(1, 40)]),
            vec![Point::new(&[-1]), Point::new(&[0]), Point::new(&[1])],
        )
        .unwrap();
        let plan = MemorySystemPlan::generate(&spec).unwrap();
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let blur = |w: &[f64]| (w[0] + w[1] + w[2]) / 3.0;
        let reference = Session::new(&plan)
            .kernel(SessionKernel::Closure(&blur))
            .run(&input)
            .unwrap()
            .outputs;
        let run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&blur))
            .mode(ExecMode::Streaming {
                chunk_rows: Some(8),
            })
            .run(&input)
            .unwrap();
        assert_eq!(run.outputs, reference);
        // A 1D domain is one index row: the whole grid is the window.
        let report = run.report.stages[0].stream.as_ref().unwrap();
        assert_eq!(report.peak_resident, in_idx.len());
        assert!(run.report.within_residency_bound());
    }

    // ---- temporal chaining ----

    fn stage_5pt(name: &str) -> KernelStage {
        KernelStage::new(name, window_5pt(), compute)
    }

    /// Sequential reference: run stage 2 as its own session over stage
    /// 1's materialized output grid.
    fn sequential_two_stage(plan1: &MemorySystemPlan, vals: &[f64]) -> Vec<f64> {
        let in_idx = plan1.input_domain().index().unwrap();
        let input = InputGrid::new(&in_idx, vals).unwrap();
        let out1 = Session::new(plan1)
            .kernel(SessionKernel::Closure(&compute))
            .run(&input)
            .unwrap()
            .outputs;
        let plan2 = plan1.chain_next("stage2", &window_5pt()).unwrap();
        let mid_idx = plan2.input_domain().index().unwrap();
        let mid = InputGrid::new(&mid_idx, &out1).unwrap();
        Session::new(&plan2)
            .kernel(SessionKernel::Closure(&compute))
            .run(&mid)
            .unwrap()
            .outputs
    }

    #[test]
    fn chained_incore_matches_sequential_stages() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let expect = sequential_two_stage(&plan, &vals);

        let session = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .then(&stage_5pt("stage2"))
            .unwrap();
        assert_eq!(session.stage_count(), 2);
        let run = session.run(&input).unwrap();
        assert_eq!(run.outputs, expect);
        // 20x24 grid -> 18x22 after stage 1 -> 16x20 after stage 2.
        assert_eq!(run.outputs.len(), 16 * 20);
        assert_eq!(run.report.stages.len(), 2);
        assert_eq!(run.report.stages[1].label, "stage2");
    }

    #[test]
    fn chained_streaming_is_bit_identical_and_residency_bounded() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let expect = sequential_two_stage(&plan, &vals);

        for chunk in [1u64, 3, 9] {
            let session = Session::new(&plan)
                .kernel(SessionKernel::Closure(&compute))
                .then(&stage_5pt("stage2"))
                .unwrap()
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(chunk),
                });
            let planned = session.planned_residency_bound(Some(chunk)).unwrap();
            let run = session.run(&input).unwrap();
            assert_eq!(run.outputs, expect, "chunk={chunk}");
            // The chained peak is the sum of the per-stage windows and
            // honors both the runtime and the planned bound.
            let stage_peaks: u64 = run
                .report
                .stages
                .iter()
                .map(|s| s.stream.as_ref().unwrap().peak_resident)
                .sum();
            assert_eq!(run.report.peak_resident, stage_peaks);
            assert!(run.report.within_residency_bound());
            assert!(
                run.report.peak_resident <= planned,
                "chunk={chunk}: peak {} > planned {planned}",
                run.report.peak_resident
            );
        }

        // At 1-row bands, two coupled halo windows stay resident:
        // 3 input rows of 24 plus 3 intermediate rows of 22 — far below
        // the 18x22 intermediate grid a sequential run materializes.
        let run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .then(&stage_5pt("stage2"))
            .unwrap()
            .mode(ExecMode::Streaming {
                chunk_rows: Some(1),
            })
            .run(&input)
            .unwrap();
        assert_eq!(run.report.peak_resident, 3 * 24 + 3 * 22);
        assert!(run.report.peak_resident < 18 * 22);
    }

    #[test]
    fn session_metrics_serialize_and_validate_clean() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();

        let run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .then(&stage_5pt("stage2"))
            .unwrap()
            .mode(ExecMode::Streaming {
                chunk_rows: Some(1),
            })
            .run(&input)
            .unwrap();
        let metrics = run.report.metrics();
        assert_eq!(metrics.mode, "streaming");
        assert_eq!(metrics.outputs, 16 * 20);
        assert_eq!(metrics.peak_resident, run.report.peak_resident);
        assert_eq!(metrics.stages.len(), 2);
        assert_eq!(metrics.stages[0].label, "denoise");
        assert_eq!(metrics.stages[1].label, "stage2");
        assert!(metrics.stages.iter().all(|s| s.stream.is_some()));
        // Every stage-1 output value flows into stage 2 — the
        // hand-off figure the ChainResidency validator rule re-checks.
        assert_eq!(
            metrics.stages[1].stream.as_ref().unwrap().values_in,
            metrics.stages[0].stream.as_ref().unwrap().outputs
        );

        // The wire form round-trips and passes report validation,
        // including the chained-residency rule.
        let mut report = stencil_telemetry::MetricsReport::new("denoise-chain");
        report.session = Some(metrics);
        let text = report.to_json();
        let back = stencil_telemetry::MetricsReport::parse(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(stencil_telemetry::validate_report(&back), Vec::new());

        // In-core chained runs serialize engine-stage metrics instead.
        let run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .then(&stage_5pt("stage2"))
            .unwrap()
            .run(&input)
            .unwrap();
        let metrics = run.report.metrics();
        assert_eq!(metrics.mode, "incore");
        assert!(metrics.stages.iter().all(|s| s.engine.is_some()));
        let mut report = stencil_telemetry::MetricsReport::new("denoise-chain");
        report.session = Some(metrics);
        assert_eq!(stencil_telemetry::validate_report(&report), Vec::new());
    }

    #[test]
    fn three_stage_chain_matches_iterated_sequential() {
        let plan = plan_5pt(22, 20);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();

        // Sequential: fold the grid through three planned stages.
        let mut cur_plan = MemorySystemPlan::generate(
            &StencilSpec::new("denoise", plan.iteration_domain().clone(), window_5pt()).unwrap(),
        )
        .unwrap();
        let mut cur = {
            let input = InputGrid::new(&in_idx, &vals).unwrap();
            Session::new(&plan)
                .kernel(SessionKernel::Closure(&compute))
                .run(&input)
                .unwrap()
                .outputs
        };
        for name in ["s2", "s3"] {
            let next = cur_plan.chain_next(name, &window_5pt()).unwrap();
            let idx = next.input_domain().index().unwrap();
            let grid = InputGrid::new(&idx, &cur).unwrap();
            cur = Session::new(&next)
                .kernel(SessionKernel::Closure(&compute))
                .run(&grid)
                .unwrap()
                .outputs;
            cur_plan = next;
        }

        for mode in [
            ExecMode::InCore,
            ExecMode::Streaming {
                chunk_rows: Some(2),
            },
        ] {
            let run = Session::new(&plan)
                .kernel(SessionKernel::Closure(&compute))
                .then(&stage_5pt("s2"))
                .unwrap()
                .then(&stage_5pt("s3"))
                .unwrap()
                .mode(mode)
                .run(&input)
                .unwrap();
            assert_eq!(run.outputs, cur, "mode={mode:?}");
            assert_eq!(run.report.stages.len(), 3);
        }
    }

    #[test]
    fn chained_stage_with_expr_compiles_and_sweeps() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let expect = sequential_two_stage(&plan, &vals);
        let kernel = compiled_5pt();

        let stage = stage_5pt("stage2").with_expr(expr_5pt());
        let run = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .then(&stage)
            .unwrap()
            .mode(ExecMode::Streaming {
                chunk_rows: Some(3),
            })
            .run(&input)
            .unwrap();
        assert_eq!(run.outputs, expect);
        // Both stages row-sweep their full rectangular iteration space.
        let s1 = run.report.stages[0].stream.as_ref().unwrap();
        let s2 = run.report.stages[1].stream.as_ref().unwrap();
        assert_eq!(s1.backend, KernelBackend::Compiled);
        assert_eq!(s2.backend, KernelBackend::Compiled);
        assert_eq!(s1.sweep_rows, 18);
        assert_eq!(s2.sweep_rows, 16);
    }

    #[test]
    fn chain_rejects_windows_that_consume_the_grid() {
        let plan = plan_5pt(8, 8); // 6x6 iteration domain
        let tall = KernelStage::new(
            "tall",
            vec![
                Point::new(&[-3, 0]),
                Point::new(&[0, 0]),
                Point::new(&[3, 0]),
            ],
            compute,
        );
        let session = Session::new(&plan).kernel(SessionKernel::Closure(&compute));
        // 6 rows erode to nothing under a 7-row vertical window. This is
        // a configuration mistake the caller can act on, not a planner
        // failure, so it surfaces as the typed `Config` variant with the
        // stage, its upstream, and the offending window extent named.
        let e = session.then(&tall).unwrap_err();
        match e {
            EngineError::Config { ref detail } => {
                assert!(detail.contains("'tall'"), "{detail}");
                assert!(detail.contains("'denoise'"), "{detail}");
                assert!(detail.contains("7-row window"), "{detail}");
                assert!(detail.contains("zero rows"), "{detail}");
            }
            other => panic!("expected EngineError::Config, got {other}"),
        }
    }

    #[test]
    fn session_report_displays_the_pipeline() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .then(&stage_5pt("stage2"))
            .unwrap()
            .mode(ExecMode::Streaming {
                chunk_rows: Some(3),
            })
            .telemetry("denoise-x2")
            .run(&input)
            .unwrap();
        assert_eq!(run.report.label.as_deref(), Some("denoise-x2"));
        let s = run.report.to_string();
        assert!(s.contains("session [streaming]"), "{s}");
        assert!(s.contains("2 stage(s)"), "{s}");
        assert!(s.contains("stage 'stage2'"), "{s}");
        assert!(run.report.throughput() >= 0.0);
        // With >1 stage the report also renders the per-stage pipeline
        // shape: backend, window taps/rows, and the residency bound.
        assert!(s.contains("pipeline:"), "{s}");
        assert!(s.contains("5-tap/3-row"), "{s}");
    }

    #[test]
    fn stage_plans_resolve_per_stage_backends_and_overrides() {
        let plan = plan_5pt(20, 24);
        let ck = compiled_5pt();
        let stage2 = stage_5pt("s2").with_expr(expr_5pt());
        let stage3 = stage_5pt("s3"); // closure-only, no expression
        let session = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&ck))
            .unroll(2)
            .then(&stage2)
            .unwrap()
            .stage_unroll(4)
            .then(&stage3)
            .unwrap()
            // Requesting the compiled backend on an expression-less
            // stage resolves to the closure fallback, per stage.
            .stage_backend(KernelBackend::Compiled);
        let plans = session.stage_plans().unwrap();
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[0].backend, KernelBackend::Compiled);
        assert_eq!(plans[0].unroll, 2);
        assert_eq!(plans[1].backend, KernelBackend::Compiled);
        assert_eq!(plans[1].unroll, 4);
        assert_eq!(plans[2].backend, KernelBackend::Closure);
        assert!(plans.iter().all(|p| p.window_taps() == 5));
        assert!(plans.iter().all(|p| p.window_rows() == 3));
        assert_eq!(plans[1].label, "s2");
        assert_eq!(plans[2].plan.name(), "s3");

        // The resolved mixed-backend pipeline still executes
        // bit-identically to the all-closure chain.
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let run = session.run(&input).unwrap();
        assert_eq!(run.report.stages[0].backend, KernelBackend::Compiled);
        assert_eq!(run.report.stages[1].backend, KernelBackend::Compiled);
        assert_eq!(run.report.stages[2].backend, KernelBackend::Closure);
        let golden = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .then(&stage2)
            .unwrap()
            .stage_backend(KernelBackend::Closure)
            .then(&stage3)
            .unwrap()
            .run(&input)
            .unwrap()
            .outputs;
        assert_eq!(run.outputs, golden);
    }

    // ---- iterative time-stepping ----

    /// Sequential reference: T materialized runs of the same kernel,
    /// each re-planned over the previous step's output grid.
    fn sequential_steps(plan: &MemorySystemPlan, vals: &[f64], steps: usize) -> Vec<f64> {
        let in_idx = plan.input_domain().index().unwrap();
        let input = InputGrid::new(&in_idx, vals).unwrap();
        let mut cur = Session::new(plan)
            .kernel(SessionKernel::Closure(&compute))
            .run(&input)
            .unwrap()
            .outputs;
        let mut cur_plan = plan.clone();
        for k in 1..steps {
            let next = cur_plan
                .chain_next(format!("t{}", k + 1), &window_5pt())
                .unwrap();
            let idx = next.input_domain().index().unwrap();
            let grid = InputGrid::new(&idx, &cur).unwrap();
            cur = Session::new(&next)
                .kernel(SessionKernel::Closure(&compute))
                .run(&grid)
                .unwrap()
                .outputs;
            cur_plan = next;
        }
        cur
    }

    #[test]
    fn iterate_matches_sequential_steps_in_both_modes() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        let expect = sequential_steps(&plan, &vals, 3);

        let incore = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .iterate(3)
            .unwrap();
        assert_eq!(incore.stage_count(), 3);
        let run = incore.run(&input).unwrap();
        assert_eq!(run.outputs, expect);
        // 18x22 iteration domain erodes one ring per step: t3 is 14x18.
        assert_eq!(run.outputs.len(), 14 * 18);
        assert_eq!(run.report.stages[1].label, "denoise@t2");
        let it = run.report.iterate.as_ref().unwrap();
        assert_eq!(it.steps, 3);
        assert_eq!(it.max_steps, 3);
        assert!(!it.converged);
        assert_eq!(it.step_peaks.len(), 3);
        assert_eq!(it.observed_peak, run.report.peak_resident);
        assert!(it.observed_peak <= it.planned_peak);

        for chunk in [1u64, 3] {
            let session = Session::new(&plan)
                .kernel(SessionKernel::Closure(&compute))
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(chunk),
                })
                .iterate(3)
                .unwrap();
            let planned = session.planned_residency_bound(Some(chunk)).unwrap();
            let run = session.run(&input).unwrap();
            assert_eq!(run.outputs, expect, "chunk={chunk}");
            assert!(run.report.within_residency_bound());
            let it = run.report.iterate.as_ref().unwrap();
            assert_eq!(it.steps, 3);
            assert_eq!(it.planned_peak, run.report.resident_bound);
            assert!(it.observed_peak <= planned, "chunk={chunk}");
        }

        // At 1-row bands, three coupled step windows stay resident —
        // far below even one materialized intermediate grid.
        let run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .mode(ExecMode::Streaming {
                chunk_rows: Some(1),
            })
            .iterate(3)
            .unwrap()
            .run(&input)
            .unwrap();
        assert_eq!(run.report.peak_resident, 3 * 24 + 3 * 22 + 3 * 20);
        assert!(run.report.peak_resident < 18 * 22);

        // The iterate metrics serialize and validate clean, including
        // the IterateResidency rule.
        let mut report = stencil_telemetry::MetricsReport::new("denoise-iterate");
        report.session = Some(run.report.metrics());
        let back = stencil_telemetry::MetricsReport::parse(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert_eq!(stencil_telemetry::validate_report(&back), Vec::new());
    }

    #[test]
    fn iterate_rejects_bad_configs() {
        let plan = plan_5pt(20, 24);
        let e = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .iterate(0)
            .unwrap_err();
        assert!(matches!(e, EngineError::Config { .. }), "{e}");

        let e = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .then(&stage_5pt("stage2"))
            .unwrap()
            .iterate(2)
            .unwrap_err();
        match e {
            EngineError::Config { detail } => assert!(detail.contains("single-stage"), "{detail}"),
            other => panic!("expected Config, got {other:?}"),
        }

        let e = Session::new(&plan).iterate(2).unwrap_err();
        match e {
            EngineError::Config { detail } => assert!(detail.contains("kernel"), "{detail}"),
            other => panic!("expected Config, got {other:?}"),
        }

        // A 6x6 iteration domain erodes away before step 4.
        let small = plan_5pt(8, 8);
        let e = Session::new(&small)
            .kernel(SessionKernel::Closure(&compute))
            .iterate(4)
            .unwrap_err();
        assert!(matches!(e, EngineError::Plan(_)), "{e}");
    }

    #[test]
    fn iterate_builds_tile_plans_once_per_mode() {
        let plan = plan_5pt(20, 24);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();

        // Mode fixed before iterate: construction hoists every step's
        // band schedule, so runs never build one.
        let session = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .mode(ExecMode::Streaming {
                chunk_rows: Some(3),
            })
            .iterate(3)
            .unwrap();
        let first = session.run(&input).unwrap();
        assert_eq!(first.report.tile_plans_built, 0);
        let second = session.run(&input).unwrap();
        assert_eq!(second.report.tile_plans_built, 0);
        assert_eq!(first.outputs, second.outputs);

        // Mode changed after construction: the first run re-tiles each
        // stage once (counted), the second hits the warm cache.
        let session = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .iterate(3)
            .unwrap()
            .mode(ExecMode::Streaming {
                chunk_rows: Some(3),
            });
        let first = session.run(&input).unwrap();
        assert_eq!(first.report.tile_plans_built, 3);
        let second = session.run(&input).unwrap();
        assert_eq!(second.report.tile_plans_built, 0);
    }

    #[test]
    fn iterate_until_converges_identically_across_backends() {
        let plan = plan_5pt(40, 40);
        let in_idx = plan.input_domain().index().unwrap();
        let vals = ramp(in_idx.len());
        let input = InputGrid::new(&in_idx, &vals).unwrap();
        // Contractive relaxation: total tap weight 0.4, so values (and
        // the per-step delta) shrink geometrically toward zero.
        let relax = |w: &[f64]| 0.2 * w[2] + 0.05 * (w[0] + w[1] + w[3] + w[4]);
        let [t0, t1, t2, t3, t4] = KernelExpr::taps::<5>();
        let expr = 0.2 * t2 + 0.05 * (t0 + t1 + t3 + t4);
        let kernel = CompiledKernel::compile_checked(&expr, 5, &relax).unwrap();

        let closure_run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&relax))
            .iterate_until(&input, 1e-2, 18)
            .unwrap();
        let it = closure_run.report.iterate.as_ref().unwrap();
        assert!(it.converged);
        assert!(it.steps >= 2, "converged suspiciously fast: {}", it.steps);
        assert!(it.steps < 18, "no early exit: {} steps", it.steps);
        assert!(it.final_delta <= 1e-2);
        assert_eq!(it.step_peaks.len(), usize::try_from(it.steps).unwrap());
        assert_eq!(
            closure_run.report.stages.len(),
            usize::try_from(it.steps).unwrap()
        );
        // Steps run one at a time: the peak is the largest step grid,
        // not a sum.
        assert_eq!(
            closure_run.report.peak_resident,
            it.step_peaks.iter().copied().max().unwrap()
        );

        // The compiled backend measures bit-identical deltas, so it
        // exits after the same number of steps with the same values.
        let compiled_run = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .iterate_until(&input, 1e-2, 18)
            .unwrap();
        let it2 = compiled_run.report.iterate.as_ref().unwrap();
        assert_eq!(it2.steps, it.steps);
        assert_eq!(it2.final_delta, it.final_delta);
        assert_eq!(compiled_run.outputs, closure_run.outputs);

        // Convergence metrics serialize and validate clean.
        let mut report = stencil_telemetry::MetricsReport::new("relax-converge");
        report.session = Some(closure_run.report.metrics());
        assert_eq!(stencil_telemetry::validate_report(&report), Vec::new());

        // Epsilon no run can reach: steps == max_steps, not converged.
        let capped = Session::new(&plan)
            .kernel(SessionKernel::Closure(&relax))
            .iterate_until(&input, 0.0, 3)
            .unwrap();
        let it3 = capped.report.iterate.as_ref().unwrap();
        assert!(!it3.converged);
        assert_eq!(it3.steps, 3);
        assert_eq!(it3.max_steps, 3);

        // Bad arguments are config errors.
        for (eps, max) in [(-1.0, 4usize), (f64::NAN, 4), (0.1, 0)] {
            let e = Session::new(&plan)
                .kernel(SessionKernel::Closure(&relax))
                .iterate_until(&input, eps, max)
                .unwrap_err();
            assert!(matches!(e, EngineError::Config { .. }), "{e}");
        }
    }
}
