//! The pump-driven streaming stage machine behind [`crate::Session`].
//!
//! A monolithic streaming loop drives a single kernel from inside one
//! function: it owns the control flow, pulling from the source and
//! pushing to the sink. Temporal chaining inverts that: each stage
//! becomes a [`StreamStage`] state machine that is *pumped* for output
//! rows and *fed* input rows, so stage `k`'s output rows can flow
//! straight into stage `k + 1`'s halo window without an intermediate
//! grid. [`pump_chain`] wires the stages: it pumps the last stage, and
//! whenever a stage reports [`StagePump::Need`], the demand recurses
//! upstream until it reaches the real [`RowSource`].
//!
//! The same machinery serves both spatial pipelines (`Session::then`,
//! distinct kernels) and iterative time-stepping (`Session::iterate`,
//! one kernel self-chained T times): either way each stage holds one
//! halo window, so T coupled steps stay within a T×halo residency
//! budget instead of materializing T intermediate grids. Band
//! schedules are built once at session construction and handed in
//! prebuilt, so a T-step ring pays plan validation once, not per step.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use stencil_core::{row_outer_span, MemorySystemPlan, TilePlan};
use stencil_polyhedral::{DomainIndex, Point, Row};
use stencil_telemetry::HighWater;

use crate::compile::KernelBackend;
use crate::error::EngineError;
use crate::format::MappedGrid;
use crate::report::StreamReport;
use crate::rowexec::{
    execute_band_parallel, execute_rows, plan_offsets, threads_for, RankWindow, RowKernel, RowStats,
};
use crate::stream::RowSource;

/// What a [`StreamStage::pump`] call produced.
pub(crate) enum StagePump {
    /// The stage needs the next input row (of this many values) fed via
    /// [`StreamStage::feed`] before it can make progress.
    Need(usize),
    /// One finished output row, in lexicographic rank order.
    Row(Vec<f64>),
    /// Every band has executed and every output row has been emitted.
    Done,
}

/// A row pull the stage has announced but not yet received.
struct PendingPull {
    /// Number of values the next [`StreamStage::feed`] must deliver.
    len: usize,
    /// The row precedes the first band's halo: honor stream order by
    /// consuming it, but never make it resident.
    discard: bool,
}

/// One kernel stage of a streaming pipeline, as an incremental state
/// machine over the band schedule of its [`TilePlan`].
pub(crate) struct StreamStage<'k> {
    tile_plan: TilePlan,
    in_idx: DomainIndex,
    dims: usize,
    offsets: Vec<Point>,
    kernel: Box<dyn RowKernel + 'k>,
    backend: KernelBackend,
    chunk_rows: u64,
    worker_count: usize,
    // Rolling halo window state. With `mapped` set the whole input is
    // resident in mapped pages, `window` stays empty, and the resident
    // range alone tracks the logical halo window (rank == map offset,
    // guaranteed by the contiguity check in `new`).
    mapped: Option<MappedGrid>,
    window: Vec<f64>,
    resident: Range<usize>,
    cursor: usize,
    evicted: bool,
    pending: Option<PendingPull>,
    out_rows: VecDeque<Vec<f64>>,
    // Telemetry.
    gauge: HighWater,
    resident_bound: u64,
    rows_in: u64,
    values_in: u64,
    rows_out: u64,
    stats: RowStats,
}

impl std::fmt::Debug for StreamStage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamStage")
            .field("bands", &self.tile_plan.tile_count())
            .field("cursor", &self.cursor)
            .field("resident", &self.resident)
            .finish_non_exhaustive()
    }
}

impl<'k> StreamStage<'k> {
    /// Adopts a prebuilt band schedule (validated once at session
    /// construction) and checks that the stage's input index is in
    /// contiguous stream order.
    pub(crate) fn new(
        plan: &MemorySystemPlan,
        tile_plan: TilePlan,
        kernel: Box<dyn RowKernel + 'k>,
        backend: KernelBackend,
        chunk_rows: Option<u64>,
        threads: usize,
    ) -> Result<Self, EngineError> {
        let in_idx = plan
            .input_domain()
            .index()
            .map_err(|e| EngineError::Plan(e.into()))?;

        // Streaming addresses residents by rank offset from the window
        // base, which requires the input stream to be exactly the rows
        // in order — i.e. contiguous monotone bases.
        let mut expect_base = 0u64;
        for row in in_idx.rows() {
            if row.base != expect_base {
                return Err(EngineError::InconsistentIndex {
                    detail: format!(
                        "input row at {} has base {} but the stream is at rank {expect_base}; \
                         streaming requires contiguous rank order",
                        row.prefix, row.base
                    ),
                });
            }
            expect_base += row.len();
        }

        Ok(Self {
            dims: in_idx.dims(),
            offsets: plan_offsets(plan),
            kernel,
            backend,
            chunk_rows: chunk_rows.unwrap_or(0),
            worker_count: threads_for(threads, usize::MAX),
            mapped: None,
            window: Vec::new(),
            resident: 0..0,
            cursor: 0,
            evicted: false,
            pending: None,
            out_rows: VecDeque::new(),
            gauge: HighWater::new(),
            resident_bound: 0,
            rows_in: 0,
            values_in: 0,
            rows_out: 0,
            stats: RowStats::default(),
            tile_plan,
            in_idx,
        })
    }

    /// Attaches a memory-mapped input covering the whole stream: bands
    /// execute as slices of the mapped payload and the stage never
    /// reports [`StagePump::Need`] — zero copies into the halo window.
    ///
    /// Only valid on a fresh stage (nothing pulled yet) whose input
    /// domain matches the mapped element count exactly.
    pub(crate) fn attach_mapped(&mut self, grid: MappedGrid) -> Result<(), EngineError> {
        if self.rows_in > 0 || self.pending.is_some() {
            return Err(EngineError::InconsistentIndex {
                detail: "mapped input attached to a stage that already pulled rows".into(),
            });
        }
        let expected: u64 = self.in_idx.rows().iter().map(Row::len).sum();
        let got = grid.values().len() as u64;
        if got != expected {
            return Err(EngineError::InputSizeMismatch { expected, got });
        }
        self.mapped = Some(grid);
        Ok(())
    }

    /// Whether a mapped input is attached (the zero-copy path).
    pub(crate) fn is_mapped(&self) -> bool {
        self.mapped.is_some()
    }

    /// Values pulled into (or logically admitted to) the halo window.
    pub(crate) fn values_in(&self) -> u64 {
        self.values_in
    }

    /// Advances the stage until it emits a row, needs input, or
    /// finishes. Emitted rows drain before the next band pulls, so a
    /// downstream consumer is never more than one band behind.
    pub(crate) fn pump(&mut self) -> Result<StagePump, EngineError> {
        loop {
            if let Some(row) = self.out_rows.pop_front() {
                self.rows_out += 1;
                return Ok(StagePump::Row(row));
            }
            if let Some(p) = &self.pending {
                // Announced but unfed pull: re-announce rather than
                // desynchronize the stream.
                return Ok(StagePump::Need(p.len));
            }
            if self.cursor >= self.tile_plan.tile_count() {
                return Ok(StagePump::Done);
            }
            if !self.evicted {
                self.evict_below_halo()?;
                self.evicted = true;
            }
            if let Some(need) = self.next_pull()? {
                if self.mapped.is_some() {
                    // The row is already resident in the mapping:
                    // admit it logically instead of asking upstream.
                    self.absorb(&need);
                    continue;
                }
                let len = need.len;
                self.pending = Some(need);
                return Ok(StagePump::Need(len));
            }
            self.execute_band()?;
            self.cursor += 1;
            self.evicted = false;
        }
    }

    /// Delivers the row announced by the last [`StagePump::Need`].
    pub(crate) fn feed(&mut self, row: &[f64]) -> Result<(), EngineError> {
        let Some(p) = self.pending.take() else {
            return Err(EngineError::InconsistentIndex {
                detail: "stage fed a row it did not request".into(),
            });
        };
        if row.len() != p.len {
            return Err(EngineError::Source {
                detail: format!(
                    "source produced {} of {} requested values",
                    row.len(),
                    p.len
                ),
            });
        }
        if p.discard {
            // Consumed for stream order only; never resident.
            self.resident.start = self.resident.end + 1;
        } else {
            self.window.extend_from_slice(row);
        }
        self.resident.end += 1;
        self.rows_in += 1;
        self.values_in += p.len as u64;
        Ok(())
    }

    /// Mapped-mode twin of [`feed`](Self::feed): the row's values are
    /// already resident in the mapping, so only the window bookkeeping
    /// advances — nothing is copied.
    fn absorb(&mut self, p: &PendingPull) {
        if p.discard {
            self.resident.start = self.resident.end + 1;
        }
        self.resident.end += 1;
        self.rows_in += 1;
        self.values_in += p.len as u64;
    }

    /// The logical halo-window length in values: the owned buffer's
    /// length on the copying path, the resident rows' rank span on the
    /// mapped path (both identical by the contiguity invariant).
    fn window_len(&self) -> Result<usize, EngineError> {
        if self.mapped.is_none() {
            return Ok(self.window.len());
        }
        if self.resident.is_empty() {
            return Ok(0);
        }
        let rows = self.in_idx.rows();
        let first = &rows[self.resident.start];
        let last = &rows[self.resident.end - 1];
        let span = last.base + last.len() - first.base;
        usize::try_from(span).map_err(|_| EngineError::DomainTooLarge { points: span })
    }

    /// Evicts rows entirely below the current band's halo. Evicting
    /// before pulling keeps the peak at one band's halo window.
    fn evict_below_halo(&mut self) -> Result<(), EngineError> {
        let tile = &self.tile_plan.tiles()[self.cursor];
        let rows = self.in_idx.rows();
        while self.resident.start < self.resident.end
            && tile.row_below_halo(row_outer_span(&rows[self.resident.start], self.dims))
        {
            if self.mapped.is_none() {
                let n = usize::try_from(rows[self.resident.start].len()).map_err(|_| {
                    EngineError::DomainTooLarge {
                        points: rows[self.resident.start].len(),
                    }
                })?;
                self.window.drain(0..n);
            }
            self.resident.start += 1;
        }
        Ok(())
    }

    /// The next pull the current band still needs, if any.
    fn next_pull(&self) -> Result<Option<PendingPull>, EngineError> {
        let tile = &self.tile_plan.tiles()[self.cursor];
        let rows = self.in_idx.rows();
        if self.resident.end >= rows.len() {
            return Ok(None);
        }
        let row = &rows[self.resident.end];
        let span = row_outer_span(row, self.dims);
        if tile.row_above_halo(span) {
            return Ok(None);
        }
        let len = usize::try_from(row.len())
            .map_err(|_| EngineError::DomainTooLarge { points: row.len() })?;
        Ok(Some(PendingPull {
            len,
            discard: tile.row_below_halo(span),
        }))
    }

    /// Runs the current band through the shared sweep/fast/gather
    /// executor and queues its output rows.
    fn execute_band(&mut self) -> Result<(), EngineError> {
        let tile = &self.tile_plan.tiles()[self.cursor];
        let rows = self.in_idx.rows();

        let window_len = self.window_len()?;
        self.gauge.observe(window_len as u64);
        let widest = rows[self.resident.clone()]
            .iter()
            .map(Row::len)
            .max()
            .unwrap_or(0);
        self.resident_bound = self.resident_bound.max(self.resident.len() as u64 * widest);

        let band_idx = tile
            .iter_domain
            .index()
            .map_err(|e| EngineError::Plan(e.into()))?;
        let band_len = usize::try_from(tile.len)
            .map_err(|_| EngineError::DomainTooLarge { points: tile.len })?;
        let mut out_buf = vec![0.0f64; band_len];
        let base = rows.get(self.resident.start).map_or(0, |r| r.base);
        // Mapped path: the "window" is a borrowed slice of the mapped
        // payload (rank == offset by the contiguity invariant); nothing
        // was ever copied in. Copying path: the owned rolling buffer.
        let vals: &[f64] = match &self.mapped {
            Some(grid) => {
                let start = usize::try_from(base)
                    .map_err(|_| EngineError::DomainTooLarge { points: base })?;
                start
                    .checked_add(window_len)
                    .and_then(|end| grid.values().get(start..end))
                    .ok_or_else(|| EngineError::InconsistentIndex {
                        detail: format!(
                            "band {} window [{base}, +{window_len}) exceeds the mapped payload",
                            tile.id
                        ),
                    })?
            }
            None => &self.window,
        };
        let win = RankWindow {
            idx: &self.in_idx,
            vals,
            base,
        };
        let band_rows = band_idx.rows();
        let workers = threads_for(self.worker_count, band_rows.len());
        let kernel: &dyn RowKernel = &*self.kernel;
        let band_stats = if workers <= 1 {
            catch_unwind(AssertUnwindSafe(|| {
                execute_rows(band_rows, 0, &self.offsets, &win, kernel, &mut out_buf)
            }))
            .map_err(|_| EngineError::WorkerPanic)??
        } else {
            execute_band_parallel(
                band_rows,
                &self.offsets,
                &win,
                kernel,
                &mut out_buf,
                workers,
            )?
        };
        self.stats.merge(band_stats);

        for row in band_rows {
            let start = usize::try_from(row.base)
                .map_err(|_| EngineError::DomainTooLarge { points: row.base })?;
            let len = usize::try_from(row.len())
                .map_err(|_| EngineError::DomainTooLarge { points: row.len() })?;
            let slice = out_buf
                .get(start..)
                .and_then(|s| s.get(..len))
                .ok_or_else(|| EngineError::InconsistentIndex {
                    detail: format!(
                        "band {} output row at {} exceeds the band buffer",
                        tile.id, row.prefix
                    ),
                })?;
            self.out_rows.push_back(slice.to_vec());
        }
        Ok(())
    }

    /// The stage's peak halo-window residency so far, in values.
    pub(crate) fn peak_resident(&self) -> u64 {
        self.gauge.get()
    }

    /// The stage's running halo-window bound, in values.
    pub(crate) fn runtime_bound(&self) -> u64 {
        self.resident_bound
    }

    /// The finished stage's report, with the legacy field semantics.
    pub(crate) fn report(&self, elapsed: std::time::Duration) -> StreamReport {
        StreamReport {
            outputs: self.tile_plan.total_outputs(),
            bands: self.tile_plan.tile_count(),
            threads: self.worker_count,
            backend: self.backend,
            unroll: self
                .kernel
                .unrolled()
                .map_or(1, crate::unroll::UnrolledProgram::unroll),
            datapath: self.kernel.datapath(),
            chunk_rows: self.chunk_rows,
            rows_in: self.rows_in,
            values_in: self.values_in,
            rows_out: self.rows_out,
            peak_resident: self.gauge.get(),
            resident_bound: self.resident_bound,
            sweep_rows: self.stats.sweep,
            fast_rows: self.stats.fast,
            gather_rows: self.stats.gather,
            elapsed,
        }
    }
}

/// Pumps the last stage of `stages` for one output row, recursively
/// satisfying upstream demand; the first stage pulls from `source`.
/// Returns `None` when the pipeline is exhausted.
pub(crate) fn pump_chain(
    stages: &mut [StreamStage<'_>],
    source: &mut dyn RowSource,
    buf: &mut Vec<f64>,
) -> Result<Option<Vec<f64>>, EngineError> {
    let (upstream, last) = stages.split_at_mut(stages.len() - 1);
    let last = &mut last[0];
    loop {
        match last.pump()? {
            StagePump::Row(row) => return Ok(Some(row)),
            StagePump::Done => return Ok(None),
            StagePump::Need(len) => {
                if upstream.is_empty() {
                    buf.clear();
                    source.fill_row(len, buf)?;
                    last.feed(buf)?;
                } else {
                    // An upstream stage emits one row per *band* row. In
                    // 1-D domains bands subdivide the single index row,
                    // so accumulate emissions (they arrive in rank
                    // order) until the downstream request is whole.
                    let mut row: Vec<f64> = Vec::new();
                    while row.len() < len {
                        match pump_chain(upstream, source, buf)? {
                            Some(part) if row.is_empty() => row = part,
                            Some(part) => row.extend_from_slice(&part),
                            None => {
                                return Err(EngineError::Source {
                                    detail: format!(
                                        "upstream stage exhausted while {} more input values \
                                         were required",
                                        len - row.len()
                                    ),
                                })
                            }
                        }
                    }
                    last.feed(&row)?;
                }
            }
        }
    }
}
