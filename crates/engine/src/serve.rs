//! Sharded multi-grid serving front-end.
//!
//! The paper's bounded reuse buffers make per-run memory exactly
//! predictable ([`MemorySystemPlan::planned_residency_bound`]), which
//! is precisely the property a serving layer needs for *admission
//! control*: a job is admitted only when the sum of admitted bounds
//! still fits a configured memory budget. [`ServiceFront`] builds on
//! that:
//!
//! * many independent grid jobs are dispatched across a worker pool of
//!   [`Session`]s (the SASA shape — duplicated PEs behind one queue —
//!   in software);
//! * an oversized grid is auto-sharded into halo-overlapped row bands
//!   along the outermost dimension (Zohouri-style spatial blocking) and
//!   the band outputs merged back in row order, bit-identical to the
//!   unsharded run for [shard-stable](stencil_kernels::Benchmark::shard_stable)
//!   kernels;
//! * a shared **plan cache** keyed by `(benchmark, extents, mode,
//!   chunk)` takes [`MemorySystemPlan`]/[`stencil_core::TilePlan`]
//!   construction off the hot path — shard sessions are seeded with the
//!   cached band schedule, so steady-state runs report
//!   `tile_plans_built == 0`;
//! * the pending-task queue is **bounded**: when the pool saturates,
//!   submission rejects with a retry-after hint instead of buffering
//!   without limit;
//! * per-shard telemetry aggregates into one validated
//!   [`stencil_telemetry::ServiceMetrics`] block, checked by the
//!   `ServiceResidency` validator rule (aggregate peak resident ≤ the
//!   sum of admitted bounds; shard merge conserves every output).

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stencil_core::{MemorySystemPlan, TilePlan};
use stencil_kernels::{Benchmark, KernelStage};
use stencil_telemetry::{MetricsReport, ServiceMetrics};

use crate::compile::CompiledKernel;
use crate::error::EngineError;
use crate::format::MappedGrid;
use crate::input::InputGrid;
use crate::session::{ExecMode, Session, SessionKernel};

/// Locks without poisoning semantics: a panicked worker is already
/// surfaced through its job's error slot, so the shared state (guarded
/// collections, counters) is recovered as-is.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Configuration of a [`ServiceFront`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker pool size (each worker runs one shard session at a time).
    pub workers: usize,
    /// Bounded-queue capacity in pending shard tasks; submissions that
    /// would overflow it are rejected with a retry-after hint.
    pub queue_depth: usize,
    /// Admission budget in resident f64 elements: a job is admitted
    /// only while the sum of admitted jobs' planned residency bounds
    /// stays within it. `0` disables the budget (queue-bounded only).
    pub memory_budget: u64,
    /// Worker threads *inside* each shard session (1 keeps parallelism
    /// at the pool level, which is what a saturated service wants).
    pub session_threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            memory_budget: 0,
            session_threads: 1,
        }
    }
}

/// How a job should be split into row-band shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Run the grid whole, in one session.
    Whole,
    /// Split into exactly this many halo-overlapped row bands (clamped
    /// to the number of output slabs).
    Fixed(usize),
    /// Split to the pool width (`min(workers, output slabs)`) when the
    /// kernel is shard-stable; run whole otherwise.
    Auto,
}

/// A job's row-major input values: either an in-memory vector or a
/// memory-mapped `.sgrid` payload. Both are cheaply cloneable shared
/// handles, so shard tasks fan out without duplicating the grid.
#[derive(Debug, Clone)]
pub enum JobInput {
    /// Values held in an owned, shared vector.
    InMemory(Arc<Vec<f64>>),
    /// Values borrowed straight from a mapped `.sgrid` file — no parse,
    /// no copy; shards slice the mapped payload.
    Mapped(MappedGrid),
}

impl JobInput {
    /// The full row-major value slice.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        match self {
            JobInput::InMemory(v) => v,
            JobInput::Mapped(g) => g.values(),
        }
    }

    /// Total values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values().len()
    }

    /// Whether the input holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values().is_empty()
    }
}

impl From<Arc<Vec<f64>>> for JobInput {
    fn from(v: Arc<Vec<f64>>) -> Self {
        JobInput::InMemory(v)
    }
}

impl From<Vec<f64>> for JobInput {
    fn from(v: Vec<f64>) -> Self {
        JobInput::InMemory(Arc::new(v))
    }
}

impl From<MappedGrid> for JobInput {
    fn from(g: MappedGrid) -> Self {
        JobInput::Mapped(g)
    }
}

/// One grid job offered to the front-end.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The kernel to run (window, datapath, compilable expression).
    pub benchmark: Benchmark,
    /// Grid extents; `None` uses the benchmark's paper problem size.
    pub extents: Option<Vec<i64>>,
    /// Execution mode for every shard session of this job.
    pub mode: ExecMode,
    /// Sharding policy.
    pub shards: ShardPolicy,
    /// Row-major input values over the full grid.
    pub input: JobInput,
}

impl JobRequest {
    /// A whole-grid job over the benchmark's paper problem size.
    #[must_use]
    pub fn new(benchmark: Benchmark, mode: ExecMode, input: impl Into<JobInput>) -> Self {
        Self {
            benchmark,
            extents: None,
            mode,
            shards: ShardPolicy::Whole,
            input: input.into(),
        }
    }
}

/// Identifier of an admitted job, index into
/// [`ServiceOutcome::jobs`].
pub type JobId = usize;

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded pending-task queue cannot take the job's shards.
    QueueFull,
    /// Admitting the job would push the summed residency bounds past
    /// the memory budget.
    BudgetExhausted,
}

/// A backpressure rejection: try again after the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// What admission control objected to.
    pub reason: RejectReason,
    /// Estimated wait until capacity frees up (derived from the
    /// observed per-shard service time; a floor of 1 ms before any
    /// shard has completed).
    pub retry_after: Duration,
}

/// The outcome of offering a job to the front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submission {
    /// The job was admitted and its shards queued.
    Admitted(JobId),
    /// The job was rejected under backpressure; resubmit later.
    Rejected(Rejection),
}

/// A completed job's merged result.
#[derive(Debug)]
pub struct JobResult {
    /// `benchmark` (whole) or `benchmark×S` (sharded) label.
    pub label: String,
    /// Merged outputs in full-grid row order (empty if the job failed).
    pub outputs: Vec<f64>,
    /// Row-band shards the job ran as.
    pub shards: usize,
    /// The first typed error any shard reported, if the job failed.
    pub error: Option<EngineError>,
}

/// Everything a served batch produced: per-job results plus the
/// aggregated, validator-checkable service telemetry.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// Per-job results, in admission order ([`JobId`] indexes this).
    pub jobs: Vec<JobResult>,
    /// Aggregated service counters.
    pub metrics: ServiceMetrics,
}

impl ServiceOutcome {
    /// Wraps the service counters into a named [`MetricsReport`] for
    /// validation and emission.
    #[must_use]
    pub fn report(&self, name: impl Into<String>) -> MetricsReport {
        let mut report = MetricsReport::new(name);
        report.service = Some(self.metrics.clone());
        report
    }
}

/// Key of the shared plan cache: one entry per distinct
/// `(benchmark, extents, mode, chunk)` a shard geometry resolves to.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct PlanKey {
    bench: String,
    extents: Vec<i64>,
    mode: ModeSlot,
}

/// Hashable image of [`ExecMode`] (band count / chunk height included,
/// since they select different band schedules).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum ModeSlot {
    InCore,
    Tiled(usize),
    Streaming(Option<u64>),
}

impl From<ExecMode> for ModeSlot {
    fn from(mode: ExecMode) -> Self {
        match mode {
            ExecMode::InCore => ModeSlot::InCore,
            ExecMode::Tiled { tiles } => ModeSlot::Tiled(tiles),
            ExecMode::Streaming { chunk_rows } => ModeSlot::Streaming(chunk_rows),
        }
    }
}

/// One shared cache entry: everything expensive about a shard geometry,
/// built once and reused by every session over the same key.
struct CachedPlan {
    plan: MemorySystemPlan,
    /// The input-domain index, built once per geometry: constructing it
    /// walks the whole domain, which would otherwise dominate small
    /// shard runs.
    index: stencil_polyhedral::DomainIndex,
    /// The band schedule the session's mode key would build.
    tile: TilePlan,
    /// Pre-compiled checked bytecode, when the benchmark has an
    /// expression.
    kernel: Option<CompiledKernel>,
    /// Stage metadata for the closure fallback ([`Session::build`]).
    stage: KernelStage,
    /// Admission bound in resident f64 elements: the full input grid
    /// in core, the Sec. 2.3 halo-window bound when streaming.
    bound: u64,
    /// Output elements the geometry promises.
    outputs: u64,
}

impl CachedPlan {
    fn build(bench: &Benchmark, extents: &[i64], mode: ExecMode) -> Result<Self, EngineError> {
        let spec = bench.spec_for(extents)?;
        let plan = MemorySystemPlan::generate(&spec)?;
        let index = plan
            .input_domain()
            .index()
            .map_err(|e| EngineError::Plan(e.into()))?;
        let tile = match mode {
            ExecMode::InCore => plan.tile_plan(plan.offchip_streams().max(1))?,
            ExecMode::Tiled { tiles } => plan.tile_plan(tiles.max(1))?,
            ExecMode::Streaming {
                chunk_rows: Some(n),
            } => plan.tile_plan_chunked(n)?,
            ExecMode::Streaming { chunk_rows: None } => plan.tile_plan_from_streams()?,
        };
        let bound = match mode {
            ExecMode::Streaming { .. } => plan.planned_residency_bound(&tile)?,
            _ => index.len(),
        };
        let outputs = plan
            .iteration_domain()
            .count()
            .map_err(|e| EngineError::Plan(e.into()))?;
        let kernel = CompiledKernel::for_benchmark(bench)?;
        Ok(Self {
            plan,
            index,
            tile,
            kernel,
            stage: bench.stage(),
            bound,
            outputs,
        })
    }
}

/// One queued unit of work: a row-band shard of an admitted job.
struct ShardTask {
    job: JobId,
    shard: usize,
    cached: Arc<CachedPlan>,
    input: JobInput,
    /// Element offset of the shard's input band in the job input.
    input_offset: usize,
    mode: ExecMode,
    threads: usize,
    label: String,
}

/// Book-keeping of one admitted job.
struct JobSlot {
    label: String,
    /// Per-shard outputs, merged in shard order at finish.
    shard_outputs: Vec<Option<Vec<f64>>>,
    remaining: usize,
    error: Option<EngineError>,
    /// The job's admitted residency bound (sum of shard bounds),
    /// released when the job completes.
    bound: u64,
    done: bool,
}

/// Monotonic counters of the batch.
#[derive(Default)]
struct Counters {
    jobs_submitted: u64,
    jobs_admitted: u64,
    jobs_rejected: u64,
    jobs_failed: u64,
    shards_executed: u64,
    shards_over_bound: u64,
    outputs_expected: u64,
    outputs_produced: u64,
    tile_plans_built: u64,
    cache_hits: u64,
    cache_misses: u64,
    shard_ns_total: u64,
}

/// Residency gauges with high-water tracking.
#[derive(Default)]
struct Gauges {
    /// Σ bounds of shards currently executing.
    resident_now: u64,
    resident_peak: u64,
    /// Σ bounds of admitted, not-yet-completed jobs.
    admitted_now: u64,
    admitted_peak: u64,
}

struct QueueState {
    tasks: VecDeque<ShardTask>,
    shutdown: bool,
}

struct Inner {
    cfg: ServiceConfig,
    queue: Mutex<QueueState>,
    task_ready: Condvar,
    job_done: Condvar,
    jobs: Mutex<Vec<JobSlot>>,
    plan_cache: Mutex<HashMap<PlanKey, Arc<CachedPlan>>>,
    counters: Mutex<Counters>,
    gauges: Mutex<Gauges>,
}

impl Inner {
    /// Looks a shard geometry up in the shared plan cache, building and
    /// inserting it on miss.
    fn cached_plan(
        &self,
        bench: &Benchmark,
        extents: &[i64],
        mode: ExecMode,
    ) -> Result<Arc<CachedPlan>, EngineError> {
        let key = PlanKey {
            bench: bench.name().to_string(),
            extents: extents.to_vec(),
            mode: mode.into(),
        };
        if let Some(hit) = lock(&self.plan_cache).get(&key) {
            lock(&self.counters).cache_hits += 1;
            return Ok(Arc::clone(hit));
        }
        // Build outside the cache lock: plan generation is the
        // expensive part this cache exists to amortize.
        let built = Arc::new(CachedPlan::build(bench, extents, mode)?);
        let mut cache = lock(&self.plan_cache);
        if let Some(racer) = cache.get(&key) {
            lock(&self.counters).cache_hits += 1;
            return Ok(Arc::clone(racer));
        }
        lock(&self.counters).cache_misses += 1;
        cache.insert(key, Arc::clone(&built));
        Ok(built)
    }

    /// Runs one shard task through a warm session and returns its
    /// merged-order outputs.
    fn run_shard(&self, task: &ShardTask) -> Result<Vec<f64>, EngineError> {
        let cached = &task.cached;
        let in_idx = &cached.index;
        let len = usize::try_from(in_idx.len()).map_err(|_| EngineError::DomainTooLarge {
            points: in_idx.len(),
        })?;
        let band = task
            .input
            .values()
            .get(task.input_offset..task.input_offset + len)
            .ok_or_else(|| EngineError::InputSizeMismatch {
                expected: (task.input_offset as u64) + in_idx.len(),
                got: task.input.len() as u64,
            })?;
        let grid = InputGrid::new(in_idx, band)?;
        let session = match &cached.kernel {
            Some(ck) => Session::new(&cached.plan).kernel(SessionKernel::Compiled(ck)),
            None => Session::build(&cached.plan, &cached.stage)?,
        }
        .mode(task.mode)
        .threads(task.threads)
        .telemetry(task.label.clone());
        session.seed_tiles(cached.tile.clone());

        let started = Instant::now();
        {
            let mut g = lock(&self.gauges);
            g.resident_now += cached.bound;
            g.resident_peak = g.resident_peak.max(g.resident_now);
        }
        let run = session.run(&grid);
        {
            let mut g = lock(&self.gauges);
            g.resident_now = g.resident_now.saturating_sub(cached.bound);
        }
        let run = run?;
        let mut c = lock(&self.counters);
        c.shards_executed += 1;
        c.shard_ns_total += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        c.tile_plans_built += run.report.tile_plans_built;
        c.outputs_produced += run.outputs.len() as u64;
        if run.report.peak_resident > cached.bound {
            c.shards_over_bound += 1;
        }
        Ok(run.outputs)
    }

    /// The worker loop: pull shard tasks until shutdown drains the
    /// queue.
    fn work(&self) {
        loop {
            let task = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(t) = q.tasks.pop_front() {
                        break t;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self
                        .task_ready
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let result = self.run_shard(&task);
            let mut jobs = lock(&self.jobs);
            let slot = &mut jobs[task.job];
            match result {
                Ok(outputs) => slot.shard_outputs[task.shard] = Some(outputs),
                Err(e) => {
                    if slot.error.is_none() {
                        slot.error = Some(e);
                        lock(&self.counters).jobs_failed += 1;
                    }
                }
            }
            slot.remaining -= 1;
            if slot.remaining == 0 {
                slot.done = true;
                let released = slot.bound;
                drop(jobs);
                let mut g = lock(&self.gauges);
                g.admitted_now = g.admitted_now.saturating_sub(released);
                drop(g);
                self.job_done.notify_all();
            }
        }
    }
}

/// The serving front-end: a bounded queue, admission control, and a
/// worker pool of sessions (see the module docs).
#[derive(Debug)]
pub struct ServiceFront {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
    started: Instant,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner").finish_non_exhaustive()
    }
}

impl ServiceFront {
    /// Starts the worker pool. Zero `workers`/`queue_depth` are clamped
    /// to 1.
    #[must_use]
    pub fn new(mut cfg: ServiceConfig) -> Self {
        cfg.workers = cfg.workers.max(1);
        cfg.queue_depth = cfg.queue_depth.max(1);
        let inner = Arc::new(Inner {
            cfg: cfg.clone(),
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            task_ready: Condvar::new(),
            job_done: Condvar::new(),
            jobs: Mutex::new(Vec::new()),
            plan_cache: Mutex::new(HashMap::new()),
            counters: Mutex::new(Counters::default()),
            gauges: Mutex::new(Gauges::default()),
        });
        let handles = (0..cfg.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || inner.work())
            })
            .collect();
        Self {
            inner,
            handles,
            started: Instant::now(),
        }
    }

    /// The retry hint for a rejected submission: pending work divided
    /// across the pool at the observed per-shard service time.
    fn retry_after(&self, pending: usize) -> Duration {
        let c = lock(&self.inner.counters);
        let avg_ns = c
            .shard_ns_total
            .checked_div(c.shards_executed)
            .unwrap_or(1_000_000); // 1 ms floor before any observation
        drop(c);
        let per_worker = (pending as u64 + 1).div_ceil(self.inner.cfg.workers as u64);
        Duration::from_nanos((per_worker * avg_ns).max(1_000_000))
    }

    /// Offers a job. Admission checks run in order: geometry and plan
    /// validation (typed errors), then the memory budget, then queue
    /// capacity; budget and queue failures are *not* errors but
    /// [`Submission::Rejected`] backpressure with a retry hint.
    ///
    /// # Errors
    ///
    /// * [`EngineError::Plan`] if the grid/shard geometry is invalid.
    /// * [`EngineError::InputSizeMismatch`] if `input` does not cover
    ///   the grid.
    /// * [`EngineError::KernelCompile`] / [`EngineError::KernelMismatch`]
    ///   if the benchmark's expression fails checked compilation.
    pub fn submit(&self, req: &JobRequest) -> Result<Submission, EngineError> {
        let bench = &req.benchmark;
        let extents = req
            .extents
            .clone()
            .unwrap_or_else(|| bench.extents().to_vec());
        let geom = ShardGeometry::plan(bench, &extents, req.shards, self.inner.cfg.workers)?;
        if req.input.len() as u64 != geom.input_elements {
            return Err(EngineError::InputSizeMismatch {
                expected: geom.input_elements,
                got: req.input.len() as u64,
            });
        }

        // Resolve every shard's cached plan first: typed errors must
        // surface before any admission state changes. Only well-formed
        // jobs count as submissions, which keeps the admission
        // arithmetic (`admitted + rejected == submitted`) exact.
        let mut cached: Vec<Arc<CachedPlan>> = Vec::with_capacity(geom.bands.len());
        for band in &geom.bands {
            cached.push(self.inner.cached_plan(bench, &band.extents, req.mode)?);
        }
        let job_bound: u64 = cached.iter().map(|c| c.bound).sum();
        let expected: u64 = cached.iter().map(|c| c.outputs).sum();
        lock(&self.inner.counters).jobs_submitted += 1;

        // Admission control: budget first, then queue capacity.
        let budget = self.inner.cfg.memory_budget;
        if budget > 0 {
            let mut g = lock(&self.inner.gauges);
            if g.admitted_now + job_bound > budget {
                drop(g);
                let pending = lock(&self.inner.queue).tasks.len();
                lock(&self.inner.counters).jobs_rejected += 1;
                return Ok(Submission::Rejected(Rejection {
                    reason: RejectReason::BudgetExhausted,
                    retry_after: self.retry_after(pending),
                }));
            }
            g.admitted_now += job_bound;
            g.admitted_peak = g.admitted_peak.max(g.admitted_now);
        }

        let mut q = lock(&self.inner.queue);
        if q.tasks.len() + geom.bands.len() > self.inner.cfg.queue_depth {
            let pending = q.tasks.len();
            drop(q);
            if budget > 0 {
                let mut g = lock(&self.inner.gauges);
                g.admitted_now = g.admitted_now.saturating_sub(job_bound);
            }
            lock(&self.inner.counters).jobs_rejected += 1;
            return Ok(Submission::Rejected(Rejection {
                reason: RejectReason::QueueFull,
                retry_after: self.retry_after(pending),
            }));
        }

        // Admitted: register the job slot and enqueue its shards.
        if budget == 0 {
            let mut g = lock(&self.inner.gauges);
            g.admitted_now += job_bound;
            g.admitted_peak = g.admitted_peak.max(g.admitted_now);
        }
        let label = if geom.bands.len() > 1 {
            format!("{}×{}", bench.name(), geom.bands.len())
        } else {
            bench.name().to_string()
        };
        let job_id = {
            let mut jobs = lock(&self.inner.jobs);
            jobs.push(JobSlot {
                label: label.clone(),
                shard_outputs: vec![None; geom.bands.len()],
                remaining: geom.bands.len(),
                error: None,
                bound: job_bound,
                done: false,
            });
            jobs.len() - 1
        };
        {
            let mut c = lock(&self.inner.counters);
            c.jobs_admitted += 1;
            c.outputs_expected += expected;
        }
        for (shard, (band, cp)) in geom.bands.iter().zip(cached).enumerate() {
            q.tasks.push_back(ShardTask {
                job: job_id,
                shard,
                cached: cp,
                input: req.input.clone(),
                input_offset: band.input_offset,
                mode: req.mode,
                threads: self.inner.cfg.session_threads,
                label: format!("{label}/shard{shard}"),
            });
        }
        drop(q);
        self.task_ready_notify(geom.bands.len());
        Ok(Submission::Admitted(job_id))
    }

    fn task_ready_notify(&self, tasks: usize) {
        if tasks > 1 {
            self.inner.task_ready.notify_all();
        } else {
            self.inner.task_ready.notify_one();
        }
    }

    /// Blocks until every admitted job has completed.
    pub fn wait_idle(&self) {
        let mut jobs = lock(&self.inner.jobs);
        while jobs.iter().any(|j| !j.done) {
            jobs = self
                .inner
                .job_done
                .wait(jobs)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Waits for all admitted jobs, stops the pool, and returns the
    /// merged per-job results plus aggregated service telemetry.
    #[must_use]
    pub fn finish(mut self) -> ServiceOutcome {
        self.wait_idle();
        {
            let mut q = lock(&self.inner.queue);
            q.shutdown = true;
        }
        self.inner.task_ready.notify_all();
        for h in self.handles.drain(..) {
            // A worker that panicked outside a job is already accounted
            // for by its job's error slot; nothing to propagate here.
            let _ = h.join();
        }
        let elapsed = self.started.elapsed();
        let jobs: Vec<JobResult> = lock(&self.inner.jobs)
            .drain(..)
            .map(|slot| {
                let shards = slot.shard_outputs.len();
                let outputs = if slot.error.is_none() {
                    let mut merged = Vec::new();
                    for piece in slot.shard_outputs.into_iter().flatten() {
                        merged.extend_from_slice(&piece);
                    }
                    merged
                } else {
                    Vec::new()
                };
                JobResult {
                    label: slot.label,
                    outputs,
                    shards,
                    error: slot.error,
                }
            })
            .collect();
        let c = lock(&self.inner.counters);
        let g = lock(&self.inner.gauges);
        let elapsed_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let metrics = ServiceMetrics {
            workers: self.inner.cfg.workers as u64,
            queue_depth: self.inner.cfg.queue_depth as u64,
            memory_budget: self.inner.cfg.memory_budget,
            jobs_submitted: c.jobs_submitted,
            jobs_admitted: c.jobs_admitted,
            jobs_rejected: c.jobs_rejected,
            jobs_failed: c.jobs_failed,
            shards_executed: c.shards_executed,
            admitted_bound_peak: g.admitted_peak,
            peak_resident: g.resident_peak,
            shards_over_bound: c.shards_over_bound,
            outputs_expected: c.outputs_expected,
            outputs_produced: c.outputs_produced,
            tile_plans_built: c.tile_plans_built,
            plan_cache_hits: c.cache_hits,
            plan_cache_misses: c.cache_misses,
            elapsed_ns,
            throughput: finite_throughput(c.outputs_produced, elapsed),
        };
        drop(c);
        drop(g);
        ServiceOutcome { jobs, metrics }
    }
}

impl Drop for ServiceFront {
    fn drop(&mut self) {
        // finish() drains handles; a dropped-without-finish front still
        // stops its workers instead of leaking them.
        {
            let mut q = lock(&self.inner.queue);
            q.shutdown = true;
        }
        self.inner.task_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Elements per second, clamped to 0.0 below timer resolution so the
/// figure stays finite (JSON cannot carry `inf`).
#[must_use]
pub fn finite_throughput(outputs: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 && secs.is_finite() {
        let t = (outputs as f64) / secs;
        if t.is_finite() {
            t
        } else {
            0.0
        }
    } else {
        0.0
    }
}

/// One row band of a sharded grid.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ShardBand {
    /// The band's own grid extents (output slabs + halo overlap).
    extents: Vec<i64>,
    /// Element offset of the band's first input value in the job's
    /// row-major input buffer.
    input_offset: usize,
}

/// The halo-overlapped row-band decomposition of one grid job.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ShardGeometry {
    bands: Vec<ShardBand>,
    input_elements: u64,
}

impl ShardGeometry {
    /// Splits `extents` into halo-overlapped row bands along the
    /// outermost dimension. Band `k` owns a contiguous run of output
    /// slabs; its input is that run dilated by the window's
    /// outer-dimension reach, so every band computes exactly the values
    /// the unsharded run computes for those slabs (the Zohouri spatial
    /// blocking argument, and the same halo math as
    /// [`stencil_core::TilePlan`] bands — applied here *between*
    /// independent plans rather than within one).
    fn plan(
        bench: &Benchmark,
        extents: &[i64],
        policy: ShardPolicy,
        workers: usize,
    ) -> Result<Self, EngineError> {
        if extents.is_empty() || extents.iter().any(|&e| e <= 0) {
            return Err(EngineError::Config {
                detail: format!("invalid grid extents {extents:?}"),
            });
        }
        // Overflow is a typed rejection, not a saturated count that
        // fails later as a confusing length mismatch.
        let too_large = || EngineError::JobTooLarge {
            extents: extents.to_vec(),
        };
        let mut input_elements = 1u64;
        for &e in extents {
            input_elements = input_elements.checked_mul(e as u64).ok_or_else(too_large)?;
        }
        // The elements must also be addressable as payload bytes.
        input_elements.checked_mul(8).ok_or_else(too_large)?;
        // Window reach along the outermost dimension.
        let min0 = bench.window().iter().map(|p| p[0]).min().unwrap_or(0);
        let max0 = bench.window().iter().map(|p| p[0]).max().unwrap_or(0);
        let r_lo = (-min0).max(0);
        let r_hi = max0.max(0);
        let n_out = extents[0] - r_lo - r_hi;
        if n_out < 1 {
            return Err(EngineError::Config {
                detail: format!(
                    "window reach {r_lo}+{r_hi} leaves no output slabs in extent {}",
                    extents[0]
                ),
            });
        }
        let requested = match policy {
            ShardPolicy::Whole => 1,
            ShardPolicy::Fixed(n) => n.max(1),
            ShardPolicy::Auto => workers.max(1),
        };
        let shards = if requested > 1 && !bench.shard_stable() {
            1 // unmarked kernels always run whole
        } else {
            requested.min(usize::try_from(n_out).unwrap_or(1))
        };
        let mut slab = 1u64;
        for &e in &extents[1..] {
            slab = slab.checked_mul(e as u64).ok_or_else(too_large)?;
        }
        let shards_u = shards as u64;
        let n_out_u = n_out as u64;
        let base = n_out_u / shards_u;
        let rem = n_out_u % shards_u;
        let mut bands = Vec::with_capacity(shards);
        let mut first_slab = 0u64; // first owned output slab, 0-based
        for k in 0..shards_u {
            let owned = base + u64::from(k < rem);
            let mut band_extents = extents.to_vec();
            band_extents[0] = i64::try_from(owned)
                .ok()
                .and_then(|o| o.checked_add(r_lo))
                .and_then(|o| o.checked_add(r_hi))
                .ok_or_else(too_large)?;
            let input_offset =
                usize::try_from(first_slab * slab).map_err(|_| EngineError::DomainTooLarge {
                    points: first_slab * slab,
                })?;
            bands.push(ShardBand {
                extents: band_extents,
                input_offset,
            });
            first_slab += owned;
        }
        Ok(Self {
            bands,
            input_elements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_kernels::{denoise, paper_suite, sobel};

    /// The repo's deterministic input generator (same LCG as the CLI).
    fn lcg_input(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64) / f64::from(1u32 << 31)
            })
            .collect()
    }

    fn unsharded_outputs(bench: &Benchmark, extents: &[i64], input: &[f64]) -> Vec<f64> {
        let spec = bench.spec_for(extents).unwrap();
        let plan = MemorySystemPlan::generate(&spec).unwrap();
        let idx = plan.input_domain().index().unwrap();
        let grid = InputGrid::new(&idx, input).unwrap();
        Session::build(&plan, &bench.stage())
            .unwrap()
            .run(&grid)
            .unwrap()
            .outputs
    }

    #[test]
    fn shard_geometry_covers_every_output_slab_once() {
        let bench = denoise();
        let extents = [24i64, 16];
        for shards in [1usize, 2, 3, 5, 22, 100] {
            let g = ShardGeometry::plan(&bench, &extents, ShardPolicy::Fixed(shards), 4).unwrap();
            // 5-point cross: reach 1 above and below, 22 output slabs.
            let owned: i64 = g.bands.iter().map(|b| b.extents[0] - 2).sum();
            assert_eq!(owned, 22, "shards={shards}");
            assert!(g.bands.len() <= 22);
            // Band inputs start exactly at their first owned slab minus
            // the reach (offset is in elements, slab = 16 wide).
            let mut first_owned = 0i64;
            for b in &g.bands {
                assert_eq!(b.input_offset as i64, first_owned * 16);
                first_owned += b.extents[0] - 2;
            }
        }
    }

    #[test]
    fn sharded_jobs_merge_bit_identical_to_unsharded() {
        for bench in paper_suite() {
            // Small grids keep the test fast; every benchmark keeps its
            // own dimensionality (2D and 3D both shard along dim 0).
            let extents: Vec<i64> = match bench.dims() {
                2 => vec![40, 24],
                _ => vec![20, 12, 10],
            };
            let len: i64 = extents.iter().product();
            let len = usize::try_from(len).expect("test extents fit");
            let input = Arc::new(lcg_input(len, 0x5EED_BA5E_D00D));
            let reference = unsharded_outputs(&bench, &extents, &input);

            let front = ServiceFront::new(ServiceConfig {
                workers: 3,
                ..ServiceConfig::default()
            });
            let req = JobRequest {
                benchmark: bench.clone(),
                extents: Some(extents.clone()),
                mode: ExecMode::InCore,
                shards: ShardPolicy::Fixed(3),
                input: Arc::clone(&input).into(),
            };
            let Submission::Admitted(id) = front.submit(&req).unwrap() else {
                panic!("{}: unbudgeted submit rejected", bench.name());
            };
            let outcome = front.finish();
            let job = &outcome.jobs[id];
            assert!(job.error.is_none(), "{}: {:?}", bench.name(), job.error);
            assert_eq!(job.outputs, reference, "{}", bench.name());
            assert_eq!(outcome.metrics.outputs_produced, reference.len() as u64);
            assert_eq!(outcome.metrics.outputs_expected, reference.len() as u64);
        }
    }

    #[test]
    fn streaming_shards_stay_within_admitted_bounds() {
        let bench = denoise();
        let extents = vec![64i64, 32];
        let input = Arc::new(lcg_input(64 * 32, 7));
        let reference = unsharded_outputs(&bench, &extents, &input);
        let front = ServiceFront::new(ServiceConfig {
            workers: 2,
            memory_budget: 1_000_000,
            ..ServiceConfig::default()
        });
        let req = JobRequest {
            benchmark: bench,
            extents: Some(extents),
            mode: ExecMode::Streaming {
                chunk_rows: Some(4),
            },
            shards: ShardPolicy::Fixed(4),
            input: input.into(),
        };
        let Submission::Admitted(id) = front.submit(&req).unwrap() else {
            panic!("submit rejected under a roomy budget");
        };
        let outcome = front.finish();
        assert_eq!(outcome.jobs[id].outputs, reference);
        let m = &outcome.metrics;
        assert_eq!(m.shards_executed, 4);
        assert_eq!(m.shards_over_bound, 0);
        assert!(m.peak_resident <= m.admitted_bound_peak);
        assert!(m.admitted_bound_peak <= m.memory_budget);
        // The cached band schedules were seeded into every session.
        assert_eq!(m.tile_plans_built, 0);
        let report = outcome.report("serve");
        assert_eq!(stencil_telemetry::validate_report(&report), vec![]);
    }

    #[test]
    fn plan_cache_hits_repeat_geometries() {
        let bench = denoise();
        let extents = vec![20i64, 12];
        let input = Arc::new(lcg_input(20 * 12, 3));
        let front = ServiceFront::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let req = JobRequest {
            benchmark: bench,
            extents: Some(extents),
            mode: ExecMode::InCore,
            shards: ShardPolicy::Whole,
            input: input.into(),
        };
        for _ in 0..5 {
            let s = front.submit(&req).unwrap();
            assert!(matches!(s, Submission::Admitted(_)));
        }
        let outcome = front.finish();
        let m = &outcome.metrics;
        assert_eq!(m.plan_cache_misses, 1);
        assert_eq!(m.plan_cache_hits, 4);
        assert_eq!(m.tile_plans_built, 0);
        // All five runs produced the same outputs.
        let first = &outcome.jobs[0].outputs;
        assert!(outcome.jobs.iter().all(|j| &j.outputs == first));
    }

    #[test]
    fn budget_admission_rejects_with_retry_hint() {
        let bench = denoise();
        let extents = vec![20i64, 12];
        let input = Arc::new(lcg_input(20 * 12, 3));
        // Budget below one job's in-core bound (20×12 = 240 elements).
        let front = ServiceFront::new(ServiceConfig {
            workers: 1,
            memory_budget: 100,
            ..ServiceConfig::default()
        });
        let req = JobRequest {
            benchmark: bench,
            extents: Some(extents),
            mode: ExecMode::InCore,
            shards: ShardPolicy::Whole,
            input: input.into(),
        };
        let s = front.submit(&req).unwrap();
        let Submission::Rejected(r) = s else {
            panic!("a 240-element job passed a 100-element budget");
        };
        assert_eq!(r.reason, RejectReason::BudgetExhausted);
        assert!(r.retry_after > Duration::ZERO);
        let outcome = front.finish();
        let m = &outcome.metrics;
        assert_eq!(m.jobs_submitted, 1);
        assert_eq!(m.jobs_rejected, 1);
        assert_eq!(m.jobs_admitted, 0);
        assert_eq!(
            stencil_telemetry::validate_report(&outcome.report("serve")),
            vec![]
        );
    }

    #[test]
    fn queue_backpressure_rejects_when_saturated() {
        let bench = denoise();
        let extents = vec![128i64, 64];
        let input = Arc::new(lcg_input(128 * 64, 9));
        let front = ServiceFront::new(ServiceConfig {
            workers: 1,
            queue_depth: 2,
            ..ServiceConfig::default()
        });
        let req = JobRequest {
            benchmark: bench,
            extents: Some(extents),
            mode: ExecMode::InCore,
            shards: ShardPolicy::Whole,
            input: input.into(),
        };
        // Flood: with a depth-2 queue and one worker, some of a burst
        // of submissions must be rejected with QueueFull.
        let mut rejected = 0;
        for _ in 0..32 {
            match front.submit(&req).unwrap() {
                Submission::Rejected(r) => {
                    assert_eq!(r.reason, RejectReason::QueueFull);
                    assert!(r.retry_after > Duration::ZERO);
                    rejected += 1;
                }
                Submission::Admitted(_) => {}
            }
        }
        assert!(
            rejected > 0,
            "a depth-2 queue absorbed 32 instant submissions"
        );
        let outcome = front.finish();
        let m = &outcome.metrics;
        assert_eq!(m.jobs_rejected, rejected);
        assert_eq!(m.jobs_admitted + m.jobs_rejected, m.jobs_submitted);
        assert_eq!(
            stencil_telemetry::validate_report(&outcome.report("serve")),
            vec![]
        );
    }

    #[test]
    fn auto_policy_shards_to_pool_width_only_when_stable() {
        let stable = sobel();
        assert!(stable.shard_stable());
        let g = ShardGeometry::plan(&stable, &[40, 24], ShardPolicy::Auto, 4).unwrap();
        assert_eq!(g.bands.len(), 4);
        // An unmarked kernel never shards.
        let unstable = Benchmark::new(
            "UNMARKED",
            vec![40, 24],
            stable.window().to_vec(),
            stencil_kernels::KernelOps::default(),
            |v| v.iter().sum(),
        );
        let g = ShardGeometry::plan(&unstable, &[40, 24], ShardPolicy::Auto, 4).unwrap();
        assert_eq!(g.bands.len(), 1);
        let g = ShardGeometry::plan(&unstable, &[40, 24], ShardPolicy::Fixed(8), 4).unwrap();
        assert_eq!(g.bands.len(), 1);
    }

    #[test]
    fn overflowing_extents_are_a_typed_job_too_large() {
        // Element count (and byte count) of these extents overflows
        // u64 multiplication; the planner must reject with a typed
        // error instead of saturating into a bogus geometry.
        let extents = vec![i64::MAX / 2, 8, 8];
        let e = ShardGeometry::plan(&denoise(), &extents, ShardPolicy::Whole, 1).unwrap_err();
        match e {
            EngineError::JobTooLarge { extents: got } => assert_eq!(got, extents),
            other => panic!("expected JobTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn input_size_mismatch_is_a_typed_error() {
        let front = ServiceFront::new(ServiceConfig::default());
        let req = JobRequest {
            benchmark: denoise(),
            extents: Some(vec![20, 12]),
            mode: ExecMode::InCore,
            shards: ShardPolicy::Whole,
            input: Arc::new(vec![0.0; 7]).into(),
        };
        let e = front.submit(&req).unwrap_err();
        assert!(matches!(e, EngineError::InputSizeMismatch { .. }));
        let outcome = front.finish();
        assert_eq!(outcome.metrics.jobs_submitted, 0);
    }
}
