//! Property-based validation of the `.stencil` format: render/parse
//! round-trips and parser robustness over randomized specifications.

use proptest::prelude::*;

// The spec-file module is private to the binary crate; exercise it
// through a thin re-declaration of the same source file.
#[path = "../src/spec_file.rs"]
mod spec_file;

use spec_file::SpecFile;
use stencil_polyhedral::{Constraint, Point};

fn random_spec() -> impl Strategy<Value = SpecFile> {
    (
        "[a-z][a-z0-9_]{0,12}",
        prop::collection::vec(2i64..64, 1..=3),
        prop::collection::btree_set(((-3i64..=3), (-3i64..=3), (-3i64..=3)), 1..8),
        prop::sample::select(vec![8u32, 16, 32, 64]),
    )
        .prop_map(|(name, grid, offs, element_bits)| {
            let dims = grid.len();
            let offsets: Vec<Point> = offs
                .into_iter()
                .map(|(a, b, c)| Point::new(&[a, b, c][..dims]))
                .collect();
            SpecFile {
                name,
                grid,
                offsets,
                element_bits,
                constraints: Vec::new(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// render ∘ parse is the identity on well-formed specs.
    #[test]
    fn render_parse_roundtrip(spec in random_spec()) {
        let text = spec.render();
        let parsed = SpecFile::parse(&text).expect("rendered specs parse");
        prop_assert_eq!(parsed, spec);
    }

    /// The parser never panics on arbitrary input — it either parses or
    /// reports a line-numbered error.
    #[test]
    fn parser_is_total(garbage in "[ -~\n]{0,256}") {
        let _ = SpecFile::parse(&garbage);
    }

    /// Whitespace and comments never change the parse.
    #[test]
    fn comments_are_transparent(spec in random_spec()) {
        let text = spec.render();
        let noisy: String = text
            .lines()
            .flat_map(|l| [format!("  {l}   # trailing"), "# full comment".to_owned()])
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = SpecFile::parse(&noisy).expect("noisy but well-formed");
        prop_assert_eq!(parsed, spec);
    }

    /// parse ∘ render preserves the *validated* specification too: the
    /// reparsed file builds a `StencilSpec` identical to the original's
    /// (same name, iteration domain, window, element width).
    #[test]
    fn roundtrip_preserves_stencil_spec(spec in buildable_spec()) {
        let direct = spec.to_spec().expect("buildable by construction");
        let reparsed = SpecFile::parse(&spec.render()).expect("rendered specs parse");
        let rebuilt = reparsed.to_spec().expect("roundtripped specs build");
        prop_assert_eq!(rebuilt, direct);
    }

    /// Explicit `constraint` lines (skewed iteration domains) survive
    /// the round-trip, both at the file level and the spec level.
    #[test]
    fn constraint_lines_roundtrip(spec in constrained_spec()) {
        let reparsed = SpecFile::parse(&spec.render()).expect("rendered specs parse");
        prop_assert_eq!(&reparsed, &spec);
        let direct = spec.to_spec().expect("box domains build");
        let rebuilt = reparsed.to_spec().expect("roundtripped specs build");
        prop_assert_eq!(rebuilt, direct);
    }
}

/// Specs whose window always fits the grid, so `to_spec` succeeds.
fn buildable_spec() -> impl Strategy<Value = SpecFile> {
    (
        "[a-z][a-z0-9_]{0,12}",
        prop::collection::vec(8i64..64, 1..=3),
        prop::collection::btree_set(((-3i64..=3), (-3i64..=3), (-3i64..=3)), 1..8),
        prop::sample::select(vec![8u32, 16, 32, 64]),
    )
        .prop_map(|(name, grid, offs, element_bits)| {
            let dims = grid.len();
            // Projecting 3-tuples to fewer dims can collide; dedup so
            // the window stays a set (a `StencilSpec` requirement).
            let offsets: Vec<Point> = offs
                .into_iter()
                .map(|(a, b, c)| [a, b, c][..dims].to_vec())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .map(|v| Point::new(&v))
                .collect();
            SpecFile {
                name,
                grid,
                offsets,
                element_bits,
                constraints: Vec::new(),
            }
        })
}

/// Specs with an explicit box iteration domain given as `constraint`
/// lines (`x_d - lo >= 0` and `-x_d + hi >= 0` per dimension).
fn constrained_spec() -> impl Strategy<Value = SpecFile> {
    (
        "[a-z][a-z0-9_]{0,8}",
        prop::collection::vec((2i64..8, 0i64..8), 1..=3),
        prop::collection::btree_set(((-2i64..=2), (-2i64..=2), (-2i64..=2)), 1..6),
    )
        .prop_map(|(name, boxes, offs)| {
            let dims = boxes.len();
            let offsets: Vec<Point> = offs
                .into_iter()
                .map(|(a, b, c)| [a, b, c][..dims].to_vec())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .map(|v| Point::new(&v))
                .collect();
            let mut constraints = Vec::with_capacity(2 * dims);
            let mut grid = Vec::with_capacity(dims);
            for (d, &(extent, lo)) in boxes.iter().enumerate() {
                let hi = lo + extent - 1;
                let mut unit = vec![0i64; dims];
                unit[d] = 1;
                constraints.push(Constraint::new(&unit, -lo));
                unit[d] = -1;
                constraints.push(Constraint::new(&unit, hi));
                grid.push(hi + 4);
            }
            SpecFile {
                name,
                grid,
                offsets,
                element_bits: 32,
                constraints,
            }
        })
}
