//! Property-based validation of the `.stencil` format: render/parse
//! round-trips and parser robustness over randomized specifications.

use proptest::prelude::*;

// The spec-file module is private to the binary crate; exercise it
// through a thin re-declaration of the same source file.
#[path = "../src/spec_file.rs"]
mod spec_file;

use spec_file::SpecFile;
use stencil_polyhedral::Point;

fn random_spec() -> impl Strategy<Value = SpecFile> {
    (
        "[a-z][a-z0-9_]{0,12}",
        prop::collection::vec(2i64..64, 1..=3),
        prop::collection::btree_set(((-3i64..=3), (-3i64..=3), (-3i64..=3)), 1..8),
        prop::sample::select(vec![8u32, 16, 32, 64]),
    )
        .prop_map(|(name, grid, offs, element_bits)| {
            let dims = grid.len();
            let offsets: Vec<Point> = offs
                .into_iter()
                .map(|(a, b, c)| Point::new(&[a, b, c][..dims]))
                .collect();
            SpecFile {
                name,
                grid,
                offsets,
                element_bits,
                constraints: Vec::new(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// render ∘ parse is the identity on well-formed specs.
    #[test]
    fn render_parse_roundtrip(spec in random_spec()) {
        let text = spec.render();
        let parsed = SpecFile::parse(&text).expect("rendered specs parse");
        prop_assert_eq!(parsed, spec);
    }

    /// The parser never panics on arbitrary input — it either parses or
    /// reports a line-numbered error.
    #[test]
    fn parser_is_total(garbage in "[ -~\n]{0,256}") {
        let _ = SpecFile::parse(&garbage);
    }

    /// Whitespace and comments never change the parse.
    #[test]
    fn comments_are_transparent(spec in random_spec()) {
        let text = spec.render();
        let noisy: String = text
            .lines()
            .flat_map(|l| [format!("  {l}   # trailing"), "# full comment".to_owned()])
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = SpecFile::parse(&noisy).expect("noisy but well-formed");
        prop_assert_eq!(parsed, spec);
    }
}
