//! `stencil` — command-line front end for the DAC'14 non-uniform
//! reuse-buffer accelerator flow.
//!
//! ```text
//! stencil plan     <spec.stencil>                 plan + verify optimality
//! stencil simulate <spec.stencil> [--streams K] [--metrics-out M.json]
//!                                 [--vcd OUT.vcd [--cycles N]]
//! stencil engine   <spec.stencil> [--streams K] [--tiles N] [--threads T]
//!                                 [--kernel compiled|closure] [--crosscheck]
//!                                 [--unroll U] [--datapath f64|f32]
//!                                 [--streaming [--chunk-rows N]] [--chain s2,s3,...]
//!                                 [--iterate T [--epsilon E]] [--metrics-out M.json]
//! stencil rtl      <spec.stencil> [--out DIR]     generate Verilog
//! stencil compare  <spec.stencil>                 vs best uniform partitioning
//! stencil report   <spec.stencil>                 full markdown design report
//! stencil suite                                   paper benchmark suite summary
//! stencil serve    <jobs.manifest> [--workers N] [--queue-depth N]
//!                                  [--memory-budget ELEMS] [--metrics-out M.json]
//! stencil fmt      <spec.stencil>                 canonicalize a spec file
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

mod commands;
mod spec_file;

use commands::{
    cmd_compare, cmd_engine, cmd_plan, cmd_report, cmd_rtl, cmd_serve, cmd_simulate, cmd_suite,
};
use spec_file::SpecFile;

fn usage() -> &'static str {
    "usage:\n  stencil plan     <spec.stencil>\n  stencil simulate <spec.stencil> \
     [--streams K] [--metrics-out M.json] [--vcd OUT.vcd [--cycles N]]\n  \
     stencil engine   <spec.stencil> [--streams K] [--tiles N] [--threads T] \
     [--kernel compiled|closure] [--crosscheck] \
     [--unroll U] [--datapath f64|f32] \
     [--streaming [--chunk-rows N]] [--chain NAME,NAME,... (suite benchmarks chain \
     their own windows)] \
     [--iterate T [--epsilon E]] [--input-grid F.sgrid] [--output-grid F.sgrid] \
     [--metrics-out M.json]\n  \
     stencil rtl      <spec.stencil> \
     [--out DIR]\n  stencil compare  <spec.stencil>\n  stencil report   <spec.stencil>\n  \
     stencil grid     pack <out.sgrid> --extents E0xE1[x...] [--seed N] | \
     inspect <file.sgrid>\n  \
     stencil serve    <jobs.manifest> [--workers N] [--queue-depth N] \
     [--memory-budget ELEMS] [--metrics-out M.json]\n\
     \nsimulate/engine/serve exit non-zero when the runtime bound validator reports\n\
     violations; pass --no-fail-on-violation to report them but exit 0."
}

/// What [`run`] hands back to `main`: the text to print plus the
/// runtime-bound validator's outcome, which decides the exit code.
struct RunOutput {
    text: String,
    violations: usize,
    fail_on_violation: bool,
}

impl From<String> for RunOutput {
    fn from(text: String) -> Self {
        RunOutput {
            text,
            violations: 0,
            fail_on_violation: true,
        }
    }
}

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(out) => {
            print!("{}", out.text);
            if out.violations > 0 && out.fail_on_violation {
                eprintln!(
                    "stencil: {} runtime bound violation(s); \
                     pass --no-fail-on-violation to downgrade",
                    out.violations
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stencil: {e}");
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<RunOutput, commands::CmdError> {
    let mut it = args.into_iter();
    let cmd = it.next().ok_or("missing subcommand")?;
    if cmd == "suite" {
        return cmd_suite().map(RunOutput::from);
    }
    if cmd == "serve" {
        return run_serve(it);
    }
    if cmd == "grid" {
        return run_grid(it);
    }
    let spec_path = it.next().ok_or("missing spec file")?;
    let text =
        std::fs::read_to_string(&spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let file = SpecFile::parse(&text).map_err(|e| format!("{spec_path}: {e}"))?;
    let spec = file.to_spec()?;

    // Trailing options.
    let mut streams = 1usize;
    let mut vcd_path: Option<PathBuf> = None;
    let mut cycles = 256usize;
    let mut out_dir = PathBuf::from("rtl_out");
    let mut tiles: Option<usize> = None;
    let mut threads = 0usize;
    let mut metrics_out: Option<PathBuf> = None;
    let mut streaming = false;
    let mut chunk_rows: Option<u64> = None;
    let mut backend = stencil_engine::KernelBackend::default();
    let mut unroll = 1usize;
    let mut datapath = stencil_engine::Datapath::default();
    let mut crosscheck = false;
    let mut chain: Vec<String> = Vec::new();
    let mut iterate: Option<usize> = None;
    let mut epsilon: Option<f64> = None;
    let mut input_grid: Option<PathBuf> = None;
    let mut output_grid: Option<PathBuf> = None;
    let mut fail_on_violation = true;
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--streams" => {
                streams = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--streams needs a count")?;
            }
            "--tiles" => {
                tiles = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--tiles needs a count")?,
                );
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads needs a count")?;
            }
            "--vcd" => {
                vcd_path = Some(PathBuf::from(it.next().ok_or("--vcd needs a path")?));
            }
            "--cycles" => {
                cycles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--cycles needs a count")?;
            }
            "--out" => {
                out_dir = PathBuf::from(it.next().ok_or("--out needs a directory")?);
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    it.next().ok_or("--metrics-out needs a path")?,
                ));
            }
            "--streaming" => streaming = true,
            "--kernel" => {
                backend = it
                    .next()
                    .ok_or("--kernel needs `compiled` or `closure`")?
                    .parse()?;
            }
            "--crosscheck" => crosscheck = true,
            "--unroll" => {
                unroll = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&u: &usize| u > 0)
                    .ok_or("--unroll needs a positive output-per-dispatch count")?;
            }
            "--datapath" => {
                datapath = it
                    .next()
                    .ok_or("--datapath needs `f64` or `f32`")?
                    .parse()?;
            }
            "--chain" => {
                let names = it
                    .next()
                    .ok_or("--chain needs comma-separated stage names")?;
                chain = names
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
                if chain.is_empty() {
                    return Err("--chain needs comma-separated stage names".into());
                }
            }
            "--chunk-rows" => {
                chunk_rows = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--chunk-rows needs a row count")?,
                );
            }
            "--iterate" => {
                iterate = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .ok_or("--iterate needs a positive time-step count")?,
                );
            }
            "--epsilon" => {
                epsilon = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|e: &f64| e.is_finite() && *e >= 0.0)
                        .ok_or("--epsilon needs a finite non-negative threshold")?,
                );
            }
            "--input-grid" => {
                input_grid = Some(PathBuf::from(
                    it.next().ok_or("--input-grid needs a .sgrid path")?,
                ));
            }
            "--output-grid" => {
                output_grid = Some(PathBuf::from(
                    it.next().ok_or("--output-grid needs a .sgrid path")?,
                ));
            }
            "--no-fail-on-violation" => fail_on_violation = false,
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }

    match cmd.as_str() {
        "plan" => cmd_plan(&spec).map(RunOutput::from),
        "simulate" => {
            let trace = if vcd_path.is_some() { cycles } else { 0 };
            let (mut out, vcd, metrics, violations) = cmd_simulate(&spec, streams, trace)?;
            if let Some(path) = &metrics_out {
                out.push_str(&write_metrics(path, &metrics)?);
            }
            if let (Some(path), Some(vcd)) = (&vcd_path, vcd) {
                std::fs::write(path, vcd)
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                out.push_str(&format!("VCD written to {}\n", path.display()));
            }
            Ok(RunOutput {
                text: out,
                violations,
                fail_on_violation,
            })
        }
        "engine" => {
            if epsilon.is_some() && iterate.is_none() {
                return Err("--epsilon needs --iterate to bound the step count".into());
            }
            let (mut out, metrics, violations) = cmd_engine(
                &spec,
                streams,
                tiles,
                threads,
                streaming,
                chunk_rows,
                backend,
                unroll,
                datapath,
                crosscheck,
                &chain,
                iterate,
                epsilon,
                input_grid.as_deref(),
                output_grid.as_deref(),
            )?;
            if let Some(path) = &metrics_out {
                out.push_str(&write_metrics(path, &metrics)?);
            }
            Ok(RunOutput {
                text: out,
                violations,
                fail_on_violation,
            })
        }
        "rtl" => {
            let bundle = cmd_rtl(&spec)?;
            bundle
                .write_to_dir(&out_dir)
                .map_err(|e| format!("cannot write {}: {e}", out_dir.display()))?;
            Ok(RunOutput::from(format!(
                "wrote {} Verilog files to {}\n",
                bundle.files().len(),
                out_dir.display()
            )))
        }
        "compare" => cmd_compare(&spec, &file.grid).map(RunOutput::from),
        "report" => cmd_report(&spec, &file.grid).map(RunOutput::from),
        "fmt" => Ok(RunOutput::from(file.render())),
        other => Err(format!("unknown subcommand `{other}`").into()),
    }
}

/// `stencil serve <jobs.manifest> [--workers N] [--queue-depth N]
/// [--memory-budget ELEMS] [--metrics-out M.json]
/// [--no-fail-on-violation]` — parses its own trailing options because,
/// unlike the spec-file subcommands, its positional argument is a job
/// manifest (one benchmark job per line).
fn run_serve(mut it: std::vec::IntoIter<String>) -> Result<RunOutput, commands::CmdError> {
    let manifest_path = it.next().ok_or("missing job manifest")?;
    let mut workers = 4usize;
    let mut queue_depth = 64usize;
    let mut memory_budget = 0u64;
    let mut metrics_out: Option<PathBuf> = None;
    let mut fail_on_violation = true;
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--workers needs a positive count")?;
            }
            "--queue-depth" => {
                queue_depth = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--queue-depth needs a positive count")?;
            }
            "--memory-budget" => {
                memory_budget = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--memory-budget needs an element count")?;
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    it.next().ok_or("--metrics-out needs a path")?,
                ));
            }
            "--no-fail-on-violation" => fail_on_violation = false,
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }
    let manifest = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {manifest_path}: {e}"))?;
    let (mut out, metrics, violations) = cmd_serve(&manifest, workers, queue_depth, memory_budget)?;
    if let Some(path) = &metrics_out {
        out.push_str(&write_metrics(path, &metrics)?);
    }
    Ok(RunOutput {
        text: out,
        violations,
        fail_on_violation,
    })
}

/// `stencil grid pack <out.sgrid> --extents E0xE1[x...] [--seed N]` /
/// `stencil grid inspect <file.sgrid>` — pack a deterministic grid
/// into the binary `.sgrid` format, or decode and summarize one.
fn run_grid(mut it: std::vec::IntoIter<String>) -> Result<RunOutput, commands::CmdError> {
    let action = it.next().ok_or("grid needs `pack` or `inspect`")?;
    match action.as_str() {
        "pack" => {
            let path = PathBuf::from(it.next().ok_or("grid pack needs an output path")?);
            let mut extents: Vec<u64> = Vec::new();
            let mut seed = 0x5EED_BA5E_D00Du64;
            while let Some(opt) = it.next() {
                match opt.as_str() {
                    "--extents" => {
                        let spec = it.next().ok_or("--extents needs E0xE1[x...]")?;
                        extents = spec
                            .split('x')
                            .map(|t| t.trim().parse::<u64>())
                            .collect::<Result<_, _>>()
                            .map_err(|_| format!("bad extents `{spec}`; expected E0xE1[x...]"))?;
                        if extents.contains(&0) {
                            return Err(format!("bad extents `{spec}`; zero extent").into());
                        }
                    }
                    "--seed" => {
                        seed = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--seed needs an integer")?;
                    }
                    other => return Err(format!("unknown option `{other}`").into()),
                }
            }
            if extents.is_empty() {
                return Err("grid pack needs --extents E0xE1[x...]".into());
            }
            commands::cmd_grid_pack(&path, &extents, seed).map(RunOutput::from)
        }
        "inspect" => {
            let path = PathBuf::from(it.next().ok_or("grid inspect needs a .sgrid path")?);
            commands::cmd_grid_inspect(&path).map(RunOutput::from)
        }
        other => Err(format!("unknown grid action `{other}`; use pack or inspect").into()),
    }
}

/// Writes a telemetry JSON report to `path`, returning the
/// confirmation line for the command output.
fn write_metrics(path: &std::path::Path, json: &str) -> Result<String, commands::CmdError> {
    std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(format!("metrics written to {}\n", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn write_spec(dir: &std::path::Path) -> PathBuf {
        let p = dir.join("denoise.stencil");
        fs::write(
            &p,
            "name denoise\ngrid 32 48\nelement_bits 16\noffset -1 0\noffset 0 -1\n\
             offset 0 0\noffset 0 1\noffset 1 0\n",
        )
        .unwrap();
        p
    }

    #[test]
    fn end_to_end_plan_and_simulate() {
        let dir = std::env::temp_dir().join("stencil_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let spec = write_spec(&dir);
        let out = run(vec!["plan".into(), spec.display().to_string()])
            .unwrap()
            .text;
        assert!(out.contains("OPTIMAL"), "{out}");

        let out = run(vec![
            "simulate".into(),
            spec.display().to_string(),
            "--streams".into(),
            "2".into(),
        ])
        .unwrap();
        assert!(out.text.contains("bandwidth-limited: true"), "{}", out.text);
        assert_eq!(out.violations, 0);
        assert!(out.fail_on_violation);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_runs_and_verifies() {
        let dir = std::env::temp_dir().join("stencil_cli_engine_test");
        fs::create_dir_all(&dir).unwrap();
        let spec = write_spec(&dir);
        let out = run(vec![
            "engine".into(),
            spec.display().to_string(),
            "--streams".into(),
            "2".into(),
            "--threads".into(),
            "2".into(),
        ])
        .unwrap()
        .text;
        assert!(out.contains("2 band(s)"), "{out}");
        assert!(out.contains("[compiled kernel]"), "{out}");
        assert!(out.contains("verified against direct loop"), "{out}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_kernel_flag_selects_backend_and_crosschecks() {
        let dir = std::env::temp_dir().join("stencil_cli_kernel_flag_test");
        fs::create_dir_all(&dir).unwrap();
        let spec = write_spec(&dir);
        let out = run(vec![
            "engine".into(),
            spec.display().to_string(),
            "--kernel".into(),
            "closure".into(),
            "--crosscheck".into(),
        ])
        .unwrap()
        .text;
        assert!(out.contains("[closure kernel]"), "{out}");
        assert!(out.contains("cross-check compiled vs closure"), "{out}");
        // An unknown backend is an argument error.
        assert!(run(vec![
            "engine".into(),
            spec.display().to_string(),
            "--kernel".into(),
            "simd".into(),
        ])
        .is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_streaming_flags_run_the_streaming_path() {
        let dir = std::env::temp_dir().join("stencil_cli_streaming_test");
        fs::create_dir_all(&dir).unwrap();
        let spec = write_spec(&dir);
        let out = run(vec![
            "engine".into(),
            spec.display().to_string(),
            "--streaming".into(),
            "--chunk-rows".into(),
            "3".into(),
        ])
        .unwrap();
        assert!(out.text.contains("streaming run:"), "{}", out.text);
        assert!(
            out.text.contains("verified streaming against in-core"),
            "{}",
            out.text
        );
        assert_eq!(out.violations, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_chain_flag_runs_a_pipeline() {
        let dir = std::env::temp_dir().join("stencil_cli_chain_test");
        fs::create_dir_all(&dir).unwrap();
        let spec = write_spec(&dir);
        let out = run(vec![
            "engine".into(),
            spec.display().to_string(),
            "--streaming".into(),
            "--chunk-rows".into(),
            "1".into(),
            "--chain".into(),
            "s2,s3".into(),
        ])
        .unwrap();
        assert!(
            out.text.contains("session [streaming]: 3 stage(s)"),
            "{}",
            out.text
        );
        assert!(
            out.text
                .contains("verified chained pipeline against sequential stages"),
            "{}",
            out.text
        );
        assert_eq!(out.violations, 0);
        // A bare --chain with no names is an argument error.
        assert!(run(vec![
            "engine".into(),
            spec.display().to_string(),
            "--chain".into(),
        ])
        .is_err());
        assert!(run(vec![
            "engine".into(),
            spec.display().to_string(),
            "--chain".into(),
            ",".into(),
        ])
        .is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_chain_flag_accepts_benchmark_stages() {
        let dir = std::env::temp_dir().join("stencil_cli_hetero_chain_test");
        fs::create_dir_all(&dir).unwrap();
        let spec = write_spec(&dir);
        // `blur3x3` names a suite benchmark, so the chained stage gets
        // the 9-tap 3x3 window instead of the spec's 5-point cross.
        let out = run(vec![
            "engine".into(),
            spec.display().to_string(),
            "--streaming".into(),
            "--chunk-rows".into(),
            "1".into(),
            "--chain".into(),
            "blur3x3".into(),
        ])
        .unwrap();
        assert!(
            out.text.contains("session [streaming]: 2 stage(s)"),
            "{}",
            out.text
        );
        assert!(
            out.text
                .contains("stage backends: denoise=compiled -> BLUR3X3=compiled"),
            "{}",
            out.text
        );
        assert!(out.text.contains("9-tap/3-row"), "{}", out.text);
        assert!(
            out.text
                .contains("verified chained pipeline against sequential stages"),
            "{}",
            out.text
        );
        assert_eq!(out.violations, 0);
        // A benchmark stage whose window erodes the remaining rows to
        // nothing is a clean configuration error, not a panic.
        let tiny = dir.join("tiny.stencil");
        fs::write(
            &tiny,
            "name tiny\ngrid 4 8\nelement_bits 16\noffset -1 0\noffset 0 0\noffset 1 0\n",
        )
        .unwrap();
        let e = match run(vec![
            "engine".into(),
            tiny.display().to_string(),
            "--chain".into(),
            "blur3x3,blur3x3".into(),
        ]) {
            Err(e) => e,
            Ok(_) => panic!("an over-eroding chain must be rejected"),
        };
        assert!(e.to_string().contains("zero rows"), "{e}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_iterate_flag_runs_the_time_step_ring() {
        let dir = std::env::temp_dir().join("stencil_cli_iterate_test");
        fs::create_dir_all(&dir).unwrap();
        let spec = write_spec(&dir);
        let out = run(vec![
            "engine".into(),
            spec.display().to_string(),
            "--streaming".into(),
            "--chunk-rows".into(),
            "2".into(),
            "--iterate".into(),
            "3".into(),
        ])
        .unwrap();
        assert!(
            out.text.contains("session [streaming]: 3 stage(s)"),
            "{}",
            out.text
        );
        assert!(
            out.text
                .contains("verified iterate(3) against sequential time steps"),
            "{}",
            out.text
        );
        assert_eq!(out.violations, 0);

        // Convergence mode piggybacks on --iterate as the step budget.
        let out = run(vec![
            "engine".into(),
            spec.display().to_string(),
            "--iterate".into(),
            "2".into(),
            "--epsilon".into(),
            "1e-9".into(),
        ])
        .unwrap();
        assert!(
            out.text
                .contains("convergence: NOT reached after 2 of 2 step(s)"),
            "{}",
            out.text
        );

        // Argument errors: zero steps, bare flags, epsilon without a
        // budget, NaN thresholds.
        let s = spec.display().to_string();
        assert!(run(vec![
            "engine".into(),
            s.clone(),
            "--iterate".into(),
            "0".into()
        ])
        .is_err());
        assert!(run(vec!["engine".into(), s.clone(), "--iterate".into()]).is_err());
        assert!(run(vec![
            "engine".into(),
            s.clone(),
            "--iterate".into(),
            "2".into(),
            "--epsilon".into(),
            "NaN".into(),
        ])
        .is_err());
        assert!(run(vec!["engine".into(), s, "--epsilon".into(), "0.5".into()]).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_fail_on_violation_downgrades_exit_semantics() {
        let dir = std::env::temp_dir().join("stencil_cli_violation_flag_test");
        fs::create_dir_all(&dir).unwrap();
        let spec = write_spec(&dir);
        let out = run(vec![
            "simulate".into(),
            spec.display().to_string(),
            "--no-fail-on-violation".into(),
        ])
        .unwrap();
        assert!(!out.fail_on_violation);
        // Missing operand for --chunk-rows is still an argument error.
        assert!(run(vec![
            "engine".into(),
            spec.display().to_string(),
            "--chunk-rows".into(),
        ])
        .is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_out_writes_valid_reports() {
        let dir = std::env::temp_dir().join("stencil_cli_metrics_test");
        fs::create_dir_all(&dir).unwrap();
        let spec = write_spec(&dir);

        let sim_json = dir.join("sim_metrics.json");
        let out = run(vec![
            "simulate".into(),
            spec.display().to_string(),
            "--streams".into(),
            "2".into(),
            "--metrics-out".into(),
            sim_json.display().to_string(),
        ])
        .unwrap()
        .text;
        assert!(out.contains("metrics written to"), "{out}");
        let report =
            stencil_telemetry::MetricsReport::parse(&fs::read_to_string(&sim_json).unwrap())
                .unwrap();
        assert_eq!(report.name, "denoise");
        let machine = report.machine.as_ref().unwrap();
        assert_eq!(machine.offchip_streams, 2);
        assert_eq!(stencil_telemetry::validate_report(&report), Vec::new());

        let eng_json = dir.join("engine_metrics.json");
        let out = run(vec![
            "engine".into(),
            spec.display().to_string(),
            "--streaming".into(),
            "--metrics-out".into(),
            eng_json.display().to_string(),
        ])
        .unwrap()
        .text;
        assert!(out.contains("metrics written to"), "{out}");
        let report =
            stencil_telemetry::MetricsReport::parse(&fs::read_to_string(&eng_json).unwrap())
                .unwrap();
        assert!(report.engine.as_ref().unwrap().throughput.is_finite());
        let stream = report.stream.as_ref().unwrap();
        assert!(stream.peak_resident <= stream.resident_bound);
        assert_eq!(stencil_telemetry::validate_report(&report), Vec::new());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rtl_writes_files() {
        let dir = std::env::temp_dir().join("stencil_cli_rtl_test");
        fs::create_dir_all(&dir).unwrap();
        let spec = write_spec(&dir);
        let out_dir = dir.join("out");
        let out = run(vec![
            "rtl".into(),
            spec.display().to_string(),
            "--out".into(),
            out_dir.display().to_string(),
        ])
        .unwrap()
        .text;
        assert!(out.contains("Verilog files"), "{out}");
        assert!(out_dir.join("denoise_mem_system.v").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fmt_canonicalizes() {
        let dir = std::env::temp_dir().join("stencil_cli_fmt_test");
        fs::create_dir_all(&dir).unwrap();
        let spec = write_spec(&dir);
        let out = run(vec!["fmt".into(), spec.display().to_string()])
            .unwrap()
            .text;
        assert!(out.starts_with("name denoise\n"), "{out}");
        assert!(out.contains("element_bits 16"), "{out}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(vec![]).is_err());
        assert!(run(vec!["plan".into()]).is_err());
        assert!(run(vec!["plan".into(), "/nonexistent.stencil".into()]).is_err());
        let dir = std::env::temp_dir().join("stencil_cli_err_test");
        fs::create_dir_all(&dir).unwrap();
        let spec = write_spec(&dir);
        assert!(run(vec!["frob".into(), spec.display().to_string()]).is_err());
        assert!(run(vec![
            "plan".into(),
            spec.display().to_string(),
            "--bogus".into()
        ])
        .is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn grid_pack_and_inspect_round_trip() {
        let dir = std::env::temp_dir().join("stencil_cli_grid_cmd_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.sgrid");
        let out = run(vec![
            "grid".into(),
            "pack".into(),
            path.display().to_string(),
            "--extents".into(),
            "6x9".into(),
            "--seed".into(),
            "42".into(),
        ])
        .unwrap()
        .text;
        assert!(out.contains("packed 54 values"), "{out}");
        let out = run(vec![
            "grid".into(),
            "inspect".into(),
            path.display().to_string(),
        ])
        .unwrap()
        .text;
        assert!(out.contains("sgrid v1"), "{out}");
        assert!(out.contains("extents [6, 9]"), "{out}");

        assert!(run(vec!["grid".into()]).is_err());
        assert!(run(vec!["grid".into(), "frob".into()]).is_err());
        assert!(run(vec![
            "grid".into(),
            "pack".into(),
            path.display().to_string(),
            "--extents".into(),
            "6x0".into(),
        ])
        .is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
