//! The `.stencil` specification file format — a minimal line-oriented
//! format, in the tradition of EDA constraint files:
//!
//! ```text
//! # DENOISE, Fig. 1 of the paper
//! name denoise
//! grid 768 1024
//! element_bits 16
//! offset -1 0
//! offset 0 -1
//! offset 0 0
//! offset 0 1
//! offset 1 0
//! # optional skewed iteration domains: constraint a0 a1 ... b  (a.x + b >= 0)
//! ```
//!
//! `grid` declares the data array extents; the iteration domain defaults
//! to the largest box whose whole window stays in bounds, unless
//! explicit `constraint` lines override it.

use std::error::Error;
use std::fmt;

use stencil_core::{PlanError, StencilSpec};
use stencil_polyhedral::{Constraint, Point, Polyhedron};

/// A parsed specification file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecFile {
    /// Kernel name.
    pub name: String,
    /// Data-grid extents.
    pub grid: Vec<i64>,
    /// Stencil window offsets.
    pub offsets: Vec<Point>,
    /// Element width in bits.
    pub element_bits: u32,
    /// Explicit iteration-domain constraints, if any.
    pub constraints: Vec<Constraint>,
}

/// Parse errors with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseSpecError {}

impl SpecFile {
    /// Parses the text of a `.stencil` file.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSpecError`] with the offending line on malformed
    /// input or missing mandatory fields.
    pub fn parse(text: &str) -> Result<Self, ParseSpecError> {
        let mut name = None;
        let mut grid: Option<Vec<i64>> = None;
        let mut offsets = Vec::new();
        let mut element_bits = StencilSpec::DEFAULT_ELEMENT_BITS;
        let mut constraints_raw: Vec<(usize, Vec<i64>)> = Vec::new();

        for (ln, raw) in text.lines().enumerate() {
            let line = ln + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut it = content.split_whitespace();
            let key = it.next().expect("non-empty line");
            let rest: Vec<&str> = it.collect();
            let ints = |line: usize, rest: &[&str]| -> Result<Vec<i64>, ParseSpecError> {
                rest.iter()
                    .map(|t| {
                        t.parse::<i64>().map_err(|_| ParseSpecError {
                            line,
                            message: format!("`{t}` is not an integer"),
                        })
                    })
                    .collect()
            };
            match key {
                "name" => {
                    if rest.len() != 1 {
                        return Err(ParseSpecError {
                            line,
                            message: "`name` takes exactly one token".into(),
                        });
                    }
                    name = Some(rest[0].to_owned());
                }
                "grid" => {
                    let v = ints(line, &rest)?;
                    if v.is_empty() || v.iter().any(|&e| e <= 0) {
                        return Err(ParseSpecError {
                            line,
                            message: "`grid` needs positive extents".into(),
                        });
                    }
                    grid = Some(v);
                }
                "offset" => {
                    let v = ints(line, &rest)?;
                    if v.is_empty() {
                        return Err(ParseSpecError {
                            line,
                            message: "`offset` needs coordinates".into(),
                        });
                    }
                    offsets.push(Point::new(&v));
                }
                "element_bits" => {
                    let v = ints(line, &rest)?;
                    match v.as_slice() {
                        [b] if (1..=64).contains(b) => element_bits = *b as u32,
                        _ => {
                            return Err(ParseSpecError {
                                line,
                                message: "`element_bits` needs one value in 1..=64".into(),
                            })
                        }
                    }
                }
                "constraint" => {
                    let v = ints(line, &rest)?;
                    if v.len() < 2 {
                        return Err(ParseSpecError {
                            line,
                            message: "`constraint` needs coefficients and a constant".into(),
                        });
                    }
                    constraints_raw.push((line, v));
                }
                other => {
                    return Err(ParseSpecError {
                        line,
                        message: format!("unknown directive `{other}`"),
                    })
                }
            }
        }

        let name = name.ok_or(ParseSpecError {
            line: 0,
            message: "missing `name`".into(),
        })?;
        let grid = grid.ok_or(ParseSpecError {
            line: 0,
            message: "missing `grid`".into(),
        })?;
        if offsets.is_empty() {
            return Err(ParseSpecError {
                line: 0,
                message: "at least one `offset` required".into(),
            });
        }
        let dims = grid.len();
        for f in &offsets {
            if f.dims() != dims {
                return Err(ParseSpecError {
                    line: 0,
                    message: format!("offset {f} does not match grid dimensionality {dims}"),
                });
            }
        }
        let mut constraints = Vec::new();
        for (line, v) in constraints_raw {
            if v.len() != dims + 1 {
                return Err(ParseSpecError {
                    line,
                    message: format!("`constraint` needs {dims} coefficients plus a constant"),
                });
            }
            constraints.push(Constraint::new(&v[..dims], v[dims]));
        }

        Ok(Self {
            name,
            grid,
            offsets,
            element_bits,
            constraints,
        })
    }

    /// Renders the specification back to `.stencil` text; parsing the
    /// result reproduces this value exactly.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "name {}", self.name);
        let grid: Vec<String> = self.grid.iter().map(ToString::to_string).collect();
        let _ = writeln!(out, "grid {}", grid.join(" "));
        let _ = writeln!(out, "element_bits {}", self.element_bits);
        for f in &self.offsets {
            let coords: Vec<String> = f.as_slice().iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "offset {}", coords.join(" "));
        }
        for c in &self.constraints {
            let mut tokens: Vec<String> = c.coeffs().iter().map(ToString::to_string).collect();
            tokens.push(c.constant().to_string());
            let _ = writeln!(out, "constraint {}", tokens.join(" "));
        }
        out
    }

    /// Builds the validated [`StencilSpec`].
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from specification validation.
    pub fn to_spec(&self) -> Result<StencilSpec, PlanError> {
        let iteration = if self.constraints.is_empty() {
            // Default: largest interior box.
            let dims = self.grid.len();
            let mut bounds = Vec::with_capacity(dims);
            for d in 0..dims {
                let min_f = self.offsets.iter().map(|f| f[d]).min().expect("non-empty");
                let max_f = self.offsets.iter().map(|f| f[d]).max().expect("non-empty");
                bounds.push((-min_f.min(0), self.grid[d] - 1 - max_f.max(0)));
            }
            Polyhedron::rect(&bounds)
        } else {
            Polyhedron::new(self.grid.len(), self.constraints.clone())
        };
        StencilSpec::with_element_bits(
            self.name.clone(),
            iteration,
            self.offsets.clone(),
            self.element_bits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DENOISE: &str = "\
# DENOISE, Fig. 1
name denoise
grid 768 1024
element_bits 16
offset -1 0
offset 0 -1
offset 0 0
offset 0 1
offset 1 0
";

    #[test]
    fn parses_denoise() {
        let f = SpecFile::parse(DENOISE).unwrap();
        assert_eq!(f.name, "denoise");
        assert_eq!(f.grid, vec![768, 1024]);
        assert_eq!(f.offsets.len(), 5);
        assert_eq!(f.element_bits, 16);
        let spec = f.to_spec().unwrap();
        assert_eq!(spec.window_size(), 5);
        assert_eq!(spec.input_domain().count().unwrap(), 768 * 1024);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let f = SpecFile::parse("name x\n\n# hi\ngrid 8 # trailing\noffset 0\n");
        // grid has trailing comment stripped -> one extent.
        let f = f.unwrap();
        assert_eq!(f.grid, vec![8]);
    }

    #[test]
    fn skewed_constraints_accepted() {
        let text = "\
name skew
grid 64 64
offset 0 0
offset 1 1
constraint 0 1 -1
constraint 0 -1 12
constraint 1 -1 -1
constraint -1 1 20
";
        let f = SpecFile::parse(text).unwrap();
        assert_eq!(f.constraints.len(), 4);
        let spec = f.to_spec().unwrap();
        assert!(spec.iteration_domain().count().unwrap() > 0);
    }

    #[test]
    fn error_reporting_with_lines() {
        let err = SpecFile::parse("name a\ngrid 4 x\noffset 0 0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("not an integer"));

        let err = SpecFile::parse("grid 4\noffset 0\n").unwrap_err();
        assert!(err.message.contains("missing `name`"));

        let err = SpecFile::parse("name a\ngrid 4\n").unwrap_err();
        assert!(err.message.contains("offset"));

        let err = SpecFile::parse("name a\ngrid 4\nfrobnicate 1\n").unwrap_err();
        assert!(err.message.contains("unknown directive"));

        let err = SpecFile::parse("name a\ngrid 4\noffset 0 0\n").unwrap_err();
        assert!(err.message.contains("dimensionality"));
    }

    #[test]
    fn render_parse_roundtrip() {
        let f = SpecFile::parse(DENOISE).unwrap();
        let again = SpecFile::parse(&f.render()).unwrap();
        assert_eq!(f, again);
        // Including constraints.
        let skew = SpecFile::parse(
            "name s
grid 32 32
offset 0 0
offset 1 1
constraint 1 -1 -1
constraint -1 1 20
",
        )
        .unwrap();
        let again = SpecFile::parse(&skew.render()).unwrap();
        assert_eq!(skew, again);
    }

    #[test]
    fn bad_element_bits_rejected() {
        let err = SpecFile::parse("name a\ngrid 4\noffset 0\nelement_bits 99\n").unwrap_err();
        assert!(err.message.contains("element_bits"));
    }

    #[test]
    fn constraint_arity_checked() {
        let err = SpecFile::parse("name a\ngrid 4 4\noffset 0 0\nconstraint 1 0\n").unwrap_err();
        assert!(err.message.contains("coefficients plus a constant"));
    }
}
